//! The search engine: index construction over the published catalog and
//! ranked top-k retrieval.
//!
//! Candidate generation uses the spatial R-tree, the temporal interval
//! index, and an inverted term index; candidates are then scored exactly.
//! Because ranking is similarity (not boolean filtering), the engine falls
//! back to scoring the whole catalog when the candidate set is too small to
//! fill `limit` confidently — and `use_indexes = false` forces the full
//! scan, which the benchmarks use as the ablation baseline.

use crate::interval::IntervalIndex;
use crate::query::{Query, SpatialTerm};
use crate::rtree::RTree;
use crate::score::{score_dataset_prepared, PreparedTerm, ScoreBreakdown};
use metamess_core::catalog::Catalog;
use metamess_core::feature::DatasetFeature;
use metamess_core::geo::GeoBBox;
use metamess_core::id::DatasetId;
use metamess_core::text::normalize_term;
use metamess_core::time::TimeInterval;
use metamess_vocab::Vocabulary;
use std::collections::{BTreeMap, BTreeSet};

/// One ranked search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Dataset id.
    pub id: DatasetId,
    /// Archive-relative path.
    pub path: String,
    /// Dataset title.
    pub title: String,
    /// Combined score in `[0, 1]`.
    pub score: f64,
    /// Per-facet explanation.
    pub breakdown: ScoreBreakdown,
}

/// The "Data Near Here" search engine.
pub struct SearchEngine {
    vocab: Vocabulary,
    datasets: Vec<DatasetFeature>,
    rtree: RTree,
    intervals: IntervalIndex,
    terms: BTreeMap<String, Vec<usize>>,
    /// Use the indexes for candidate generation (true) or score every
    /// dataset (false) — the ablation switch.
    pub use_indexes: bool,
}

impl SearchEngine {
    /// Builds the engine over a catalog snapshot.
    pub fn build(catalog: &Catalog, vocab: Vocabulary) -> SearchEngine {
        let datasets: Vec<DatasetFeature> = catalog.iter().cloned().collect();
        let mut spatial_entries = Vec::new();
        let mut time_entries = Vec::new();
        let mut terms: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (ix, d) in datasets.iter().enumerate() {
            if let Some(b) = &d.bbox {
                spatial_entries.push((*b, ix));
            }
            if let Some(t) = &d.time {
                time_entries.push((*t, ix));
            }
            for v in d.searchable_variables() {
                let mut keys: BTreeSet<String> = BTreeSet::new();
                keys.insert(normalize_term(&v.name));
                keys.insert(normalize_term(v.search_name()));
                if let Some((canon, _)) = vocab.synonyms.resolve(v.search_name()) {
                    keys.insert(normalize_term(canon));
                    // index under every hierarchy ancestor so a query for a
                    // broader concept reaches the leaf variables
                    for anc in vocab.hierarchy_of(canon) {
                        keys.insert(normalize_term(&anc));
                    }
                }
                for k in keys {
                    let posting = terms.entry(k).or_default();
                    if posting.last() != Some(&ix) {
                        posting.push(ix);
                    }
                }
            }
        }
        SearchEngine {
            vocab,
            rtree: RTree::build(spatial_entries),
            intervals: IntervalIndex::build(time_entries),
            terms,
            datasets,
            use_indexes: true,
        }
    }

    /// Number of indexed datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True when no datasets are indexed.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The vocabulary the engine expands terms with.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The dataset behind a hit (for summary rendering).
    pub fn dataset(&self, id: DatasetId) -> Option<&DatasetFeature> {
        self.datasets.iter().find(|d| d.id == id)
    }

    fn candidates(&self, query: &Query) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        let generous = (query.limit * 5).max(50);
        if let Some(spatial) = &query.spatial {
            match spatial {
                SpatialTerm::Near { point, radius_km } => {
                    for (ix, _) in self.rtree.nearest(point, generous) {
                        out.insert(ix);
                    }
                    // everything within 4 radii
                    let dlat = 4.0 * radius_km / 111.0;
                    let dlon = 4.0 * radius_km / (111.0 * point.lat.to_radians().cos().max(0.1));
                    let window = GeoBBox {
                        min_lat: (point.lat - dlat).max(-90.0),
                        max_lat: (point.lat + dlat).min(90.0),
                        min_lon: (point.lon - dlon).max(-180.0),
                        max_lon: (point.lon + dlon).min(180.0),
                    };
                    out.extend(self.rtree.intersecting(&window));
                }
                SpatialTerm::Region(region) => {
                    out.extend(self.rtree.intersecting(region));
                    // plus the nearest boxes around its centre
                    for (ix, _) in self.rtree.nearest(&region.center(), generous) {
                        out.insert(ix);
                    }
                }
            }
        }
        if let Some(window) = &query.time {
            let pad = (window.duration_secs() as i64).max(86_400);
            let expanded = TimeInterval::new(
                window.start.plus_seconds(-pad),
                window.end.plus_seconds(pad),
            );
            out.extend(self.intervals.overlapping(&expanded));
        }
        for term in &query.variables {
            let mut keys: BTreeSet<String> = BTreeSet::new();
            for e in self.vocab.expand_term(&term.name) {
                keys.insert(normalize_term(&e));
            }
            keys.insert(normalize_term(&term.name));
            // broaden through ancestors so sibling-level matches surface
            if let Some((canon, _)) = self.vocab.synonyms.resolve(&term.name) {
                for anc in self.vocab.hierarchy_of(canon) {
                    keys.insert(normalize_term(&anc));
                }
            }
            for k in keys {
                if let Some(postings) = self.terms.get(&k) {
                    out.extend(postings.iter().copied());
                }
            }
        }
        out
    }

    /// Runs a ranked search, returning at most `query.limit` hits, best
    /// first (ties broken by path for determinism).
    pub fn search(&self, query: &Query) -> Vec<SearchHit> {
        let candidate_ixs: Vec<usize> = if !self.use_indexes || query.is_empty() {
            (0..self.datasets.len()).collect()
        } else {
            let c = self.candidates(query);
            // Similarity ranking: when the candidate pool cannot comfortably
            // fill the requested k, score everything instead.
            if c.len() < query.limit * 3 {
                (0..self.datasets.len()).collect()
            } else {
                c.into_iter().collect()
            }
        };
        let prepared: Vec<PreparedTerm> =
            query.variables.iter().map(|t| PreparedTerm::prepare(t, &self.vocab)).collect();
        let mut hits: Vec<SearchHit> = candidate_ixs
            .into_iter()
            .map(|ix| {
                let d = &self.datasets[ix];
                let breakdown = score_dataset_prepared(query, &prepared, d, &self.vocab);
                SearchHit {
                    id: d.id,
                    path: d.path.clone(),
                    title: d.title.clone(),
                    score: breakdown.total,
                    breakdown,
                }
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        hits.truncate(query.limit);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_core::feature::{NameResolution, VariableFeature};
    use metamess_core::geo::GeoPoint;
    use metamess_core::time::Timestamp;

    fn make_dataset(
        path: &str,
        lat: f64,
        lon: f64,
        month: u32,
        vars: &[(&str, &str, f64, f64)],
    ) -> DatasetFeature {
        let mut d = DatasetFeature::new(path);
        d.title = path.to_string();
        d.bbox = Some(GeoBBox::point(GeoPoint::new(lat, lon).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2010, month, 1).unwrap(),
            Timestamp::from_ymd(2010, month, 28).unwrap(),
        ));
        for (name, canon, lo, hi) in vars {
            let mut v = VariableFeature::new(*name);
            if !canon.is_empty() {
                v.resolve(*canon, NameResolution::KnownTranslation);
            }
            v.summary.observe(*lo);
            v.summary.observe(*hi);
            d.variables.push(v);
        }
        d
    }

    fn engine() -> SearchEngine {
        let mut c = Catalog::new();
        // coastal station with cool temperatures in summer
        c.put(make_dataset(
            "coast.csv",
            45.50,
            -124.38,
            6,
            &[("temp", "water_temperature", 5.0, 10.0), ("sal", "salinity", 28.0, 33.0)],
        ));
        // estuary station, warmer
        c.put(make_dataset(
            "estuary.csv",
            46.18,
            -123.18,
            6,
            &[("wtemp", "water_temperature", 14.0, 20.0)],
        ));
        // winter file at the coastal site
        c.put(make_dataset(
            "coast_winter.csv",
            45.50,
            -124.38,
            1,
            &[("temp", "water_temperature", 4.0, 8.0)],
        ));
        // met station nearby
        c.put(make_dataset(
            "met.csv",
            45.52,
            -124.40,
            6,
            &[("airtmp", "air_temperature", 10.0, 22.0)],
        ));
        SearchEngine::build(&c, Vocabulary::observatory_default())
    }

    #[test]
    fn poster_query_ranks_coastal_summer_first() {
        let e = engine();
        let q = Query::parse(
            "near 45.5,-124.4 within 25km from 2010-05-01 to 2010-08-31 \
             with water_temperature between 5 and 10",
        )
        .unwrap();
        let hits = e.search(&q);
        assert_eq!(hits[0].path, "coast.csv");
        assert!(hits[0].score > 0.9, "{}", hits[0].score);
        // winter file at the same site ranks below (time mismatch)
        let winter_rank = hits.iter().position(|h| h.path == "coast_winter.csv").unwrap();
        assert!(winter_rank > 0);
        // scores strictly ordered
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn indexed_and_linear_agree_on_ranking() {
        let mut e = engine();
        let q = Query::parse("near 46.0,-123.5 with salinity limit 4").unwrap();
        let indexed = e.search(&q);
        e.use_indexes = false;
        let linear = e.search(&q);
        assert_eq!(
            indexed.iter().map(|h| &h.path).collect::<Vec<_>>(),
            linear.iter().map(|h| &h.path).collect::<Vec<_>>()
        );
        for (a, b) in indexed.iter().zip(linear.iter()) {
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn synonym_query_finds_resolved_variable() {
        let e = engine();
        // "wtemp" is a curated alternate of water_temperature
        let q = Query::parse("with wtemp").unwrap();
        let hits = e.search(&q);
        assert!(hits[0].score > 0.8);
        assert!(hits.iter().take(3).any(|h| h.path == "estuary.csv"));
    }

    #[test]
    fn limit_respected() {
        let e = engine();
        let q = Query::parse("with water_temperature limit 2").unwrap();
        assert_eq!(e.search(&q).len(), 2);
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::build(&Catalog::new(), Vocabulary::observatory_default());
        assert!(e.is_empty());
        assert!(e.search(&Query::parse("with salinity").unwrap()).is_empty());
    }

    #[test]
    fn empty_query_returns_zero_scores() {
        let e = engine();
        let hits = e.search(&Query::new());
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.score == 0.0));
    }

    #[test]
    fn breakdown_explains_facets() {
        let e = engine();
        let q = Query::parse("near 45.5,-124.4 with water_temperature").unwrap();
        let hits = e.search(&q);
        let b = &hits[0].breakdown;
        assert!(b.space.is_some());
        assert!(b.time.is_none()); // no time clause
        assert!(b.variables.is_some());
        assert_eq!(b.variable_matches.len(), 1);
        assert!(b.variable_matches[0].1.is_some());
    }

    #[test]
    fn dataset_lookup_by_hit_id() {
        let e = engine();
        let q = Query::parse("with salinity").unwrap();
        let hits = e.search(&q);
        let d = e.dataset(hits[0].id).unwrap();
        assert_eq!(d.path, hits[0].path);
    }
}
