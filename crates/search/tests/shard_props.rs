//! Property tests for the sharded engine: for random catalogs and queries,
//! sharded scatter-gather search is **bit-identical** to the unsharded
//! engine across shard counts {1, 2, 4, 8}, every partitioner (including
//! the pruning-enabled spatial/temporal layouts), empty shards (more
//! shards than datasets), datasets without bboxes or time intervals, both
//! index modes, and multiple worker counts.

use metamess_core::catalog::Catalog;
use metamess_core::feature::{DatasetFeature, NameResolution, VariableFeature};
use metamess_core::geo::{GeoBBox, GeoPoint};
use metamess_core::time::{TimeInterval, Timestamp};
use metamess_search::{Partitioner, Query, SearchEngine, ShardSpec};
use metamess_vocab::Vocabulary;
use proptest::prelude::*;

const VAR_POOL: &[&str] =
    &["water_temperature", "salinity", "dissolved_oxygen", "turbidity", "nitrate", "wind_speed"];

/// Datasets spread over two distant clusters (so spatial/temporal bounds
/// actually separate), with optional extents: a dataset may lack a bbox, a
/// time interval, or both — those must still shard and score correctly.
fn arb_dataset(ix: usize) -> impl Strategy<Value = DatasetFeature> {
    (
        prop::option::of((0usize..2, -0.5f64..0.5, -0.5f64..0.5)),
        prop::option::of((0u32..300, 1u32..200)),
        prop::collection::btree_set(0usize..VAR_POOL.len(), 0..3),
        (0.0f64..20.0, 1.0f64..15.0),
    )
        .prop_map(move |(cluster, time, vars, (lo, span))| {
            let mut d = DatasetFeature::new(format!("ds/{ix}.csv"));
            if let Some((c, dlat, dlon)) = cluster {
                let (lat, lon) = if c == 0 { (46.0, -124.0) } else { (-44.0, 150.0) };
                d.bbox = Some(GeoBBox::point(GeoPoint::new(lat + dlat, lon + dlon).unwrap()));
            }
            if let Some((day0, days)) = time {
                let start = Timestamp::from_ymd(2010, 1, 1).unwrap().plus_days(day0 as i64);
                d.time = Some(TimeInterval::new(start, start.plus_days(days as i64)));
            }
            for v in vars {
                let mut vf = VariableFeature::new(VAR_POOL[v]);
                vf.resolve(VAR_POOL[v], NameResolution::AlreadyCanonical);
                vf.summary.observe(lo);
                vf.summary.observe(lo + span);
                d.variables.push(vf);
            }
            d
        })
}

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    prop::collection::vec(Just(()), 1..40).prop_flat_map(|slots| {
        let n = slots.len();
        let strategies: Vec<_> = (0..n).map(arb_dataset).collect();
        strategies.prop_map(|datasets| {
            let mut c = Catalog::new();
            for d in datasets {
                c.put(d);
            }
            c
        })
    })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::option::of((prop::bool::ANY, 5.0f64..100.0)),
        prop::option::of((0u32..300, 1u32..120)),
        prop::collection::vec(
            (0usize..VAR_POOL.len(), prop::option::of((0.0f64..15.0, 0.1f64..10.0))),
            0..3,
        ),
        1usize..8,
    )
        .prop_map(|(spatial, time, vars, limit)| {
            let mut q = Query::new().limit(limit);
            if let Some((north, r)) = spatial {
                let (lat, lon) = if north { (46.0, -124.0) } else { (-44.0, 150.0) };
                q = q.near(lat, lon, r).unwrap();
            }
            if let Some((day0, days)) = time {
                let start = Timestamp::from_ymd(2010, 1, 1).unwrap().plus_days(day0 as i64);
                q = q.between(start, start.plus_days(days as i64));
            }
            for (v, range) in vars {
                q = q.with_variable(VAR_POOL[v], range.map(|(a, b)| (a, a + b)));
            }
            q
        })
}

fn arb_partitioner() -> impl Strategy<Value = Partitioner> {
    prop::sample::select(vec![Partitioner::Hash, Partitioner::Spatial, Partitioner::Temporal])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_search_is_bit_identical_to_unsharded(
        catalog in arb_catalog(),
        query in arb_query(),
        partitioner in arb_partitioner(),
        full_scan in proptest::bool::ANY,
    ) {
        let vocab = Vocabulary::observatory_default();
        let mut reference = SearchEngine::build(&catalog, vocab.clone());
        reference.use_indexes = !full_scan;
        let expected = reference.search_uncached(&query);
        // shard counts beyond the catalog size leave shards empty — those
        // must contribute nothing, not break the merge
        for shards in [1usize, 2, 4, 8] {
            let mut engine = SearchEngine::build_sharded(
                &catalog,
                vocab.clone(),
                ShardSpec::new(shards, partitioner),
            );
            engine.use_indexes = !full_scan;
            for workers in [1usize, 4] {
                engine.workers = workers;
                let got = engine.search_uncached(&query);
                prop_assert_eq!(
                    &got, &expected,
                    "partitioner={:?} shards={} workers={}", partitioner, shards, workers
                );
            }
        }
    }

    #[test]
    fn sharded_cached_path_equals_uncached(
        catalog in arb_catalog(),
        query in arb_query(),
        partitioner in arb_partitioner(),
    ) {
        let engine = SearchEngine::build_sharded(
            &catalog,
            Vocabulary::observatory_default(),
            ShardSpec::new(4, partitioner),
        );
        let first = engine.search(&query); // miss: fills the cache
        let cached = engine.search(&query); // hit: shares the allocation
        prop_assert_eq!(&cached, &first);
        prop_assert_eq!(&cached[..], &engine.search_uncached(&query)[..]);
    }

    #[test]
    fn explain_shard_accounting_is_consistent(
        catalog in arb_catalog(),
        query in arb_query(),
        partitioner in arb_partitioner(),
        shards in 1usize..9,
    ) {
        let engine = SearchEngine::build_sharded(
            &catalog,
            Vocabulary::observatory_default(),
            ShardSpec::new(shards, partitioner),
        );
        let (_, ex) = engine.search_explain(&query);
        prop_assert_eq!(ex.shards, shards);
        let occupied = engine.shards().iter().filter(|s| !s.is_empty()).count();
        prop_assert_eq!(ex.shards_visited + ex.shards_pruned, occupied,
            "every non-empty shard is either visited or pruned");
        if ex.full_scan {
            prop_assert_eq!(ex.shards_pruned, 0, "full scans visit every occupied shard");
        }
        prop_assert!(ex.pruned_datasets <= engine.len());
        let shard_sum: usize = engine.shards().iter().map(|s| s.len()).sum();
        prop_assert_eq!(shard_sum, engine.len(), "partitioning covers every dataset once");
    }
}
