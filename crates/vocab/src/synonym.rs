//! The synonym table: preferred terms and their alternates.
//!
//! This is the paper's "often exists as a translation table" component —
//! known transformations map harvested names onto preferred terms. Curators
//! grow it over time ("adding entries to a synonym table" is the canonical
//! process-improvement example in the poster).

use metamess_core::error::{Error, Result};
use metamess_core::text::normalize_term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One preferred term and its known alternates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermEntry {
    /// The preferred (canonical) spelling, e.g. `air_temperature`.
    pub preferred: String,
    /// Alternate spellings that translate to it, e.g. `airtemp`, `air_temperatrue`.
    pub alternates: Vec<String>,
    /// Optional human description for the dataset summary page.
    pub description: Option<String>,
}

impl TermEntry {
    /// Creates an entry with no alternates.
    pub fn new(preferred: impl Into<String>) -> TermEntry {
        TermEntry { preferred: preferred.into(), alternates: Vec::new(), description: None }
    }
}

/// How a lookup matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchKind {
    /// The queried name *is* the preferred term.
    Preferred,
    /// The queried name is a registered alternate.
    Alternate,
}

/// A case-insensitive synonym table.
///
/// Invariants: preferred terms are unique; an alternate maps to exactly one
/// preferred term; no alternate equals a preferred term of a *different*
/// entry (that would make translation ambiguous).
///
/// ```
/// use metamess_vocab::{MatchKind, SynonymTable};
///
/// let mut table = SynonymTable::new();
/// table.add_alternate("air_temperature", "airtemp").unwrap();
/// assert_eq!(
///     table.resolve("AIRTEMP"),
///     Some(("air_temperature", MatchKind::Alternate))
/// );
/// // an alternate cannot serve two preferred terms
/// assert!(table.add_alternate("water_temperature", "airtemp").is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SynonymTable {
    /// Entries keyed by normalized preferred term.
    entries: BTreeMap<String, TermEntry>,
    /// Reverse index: normalized alternate → normalized preferred term.
    #[serde(skip)]
    reverse: BTreeMap<String, String>,
}

impl SynonymTable {
    /// Creates an empty table.
    pub fn new() -> SynonymTable {
        SynonymTable::default()
    }

    /// Rebuilds the reverse index; called after deserialization.
    pub fn reindex(&mut self) {
        self.reverse.clear();
        for (key, e) in &self.entries {
            for alt in &e.alternates {
                self.reverse.insert(normalize_term(alt), key.clone());
            }
        }
    }

    /// Registers a preferred term (idempotent).
    pub fn add_preferred(&mut self, preferred: impl Into<String>) -> Result<()> {
        let preferred = preferred.into();
        let key = normalize_term(&preferred);
        if key.is_empty() {
            return Err(Error::invalid("empty preferred term"));
        }
        if let Some(owner) = self.reverse.get(&key) {
            return Err(Error::conflict(format!(
                "'{preferred}' is already an alternate of '{owner}'"
            )));
        }
        self.entries.entry(key).or_insert_with(|| TermEntry::new(preferred));
        Ok(())
    }

    /// Registers `alternate` as a synonym of `preferred`, creating the
    /// preferred entry when needed.
    pub fn add_alternate(
        &mut self,
        preferred: impl Into<String>,
        alternate: impl Into<String>,
    ) -> Result<()> {
        let preferred = preferred.into();
        let alternate = alternate.into();
        let pkey = normalize_term(&preferred);
        let akey = normalize_term(&alternate);
        if akey.is_empty() {
            return Err(Error::invalid("empty alternate term"));
        }
        if akey == pkey {
            // An alternate identical to its preferred term is a no-op.
            return self.add_preferred(preferred);
        }
        if self.entries.contains_key(&akey) {
            return Err(Error::conflict(format!(
                "'{alternate}' is already a preferred term; cannot also be an alternate of '{preferred}'"
            )));
        }
        if let Some(owner) = self.reverse.get(&akey) {
            if *owner != pkey {
                return Err(Error::conflict(format!(
                    "'{alternate}' already translates to '{owner}'"
                )));
            }
            return Ok(()); // idempotent re-add
        }
        self.add_preferred(preferred)?;
        let entry = self.entries.get_mut(&pkey).expect("just added");
        entry.alternates.push(alternate);
        self.reverse.insert(akey, pkey);
        Ok(())
    }

    /// Looks a name up: returns the preferred spelling and how it matched.
    pub fn resolve(&self, name: &str) -> Option<(&str, MatchKind)> {
        let key = normalize_term(name);
        if let Some(e) = self.entries.get(&key) {
            return Some((e.preferred.as_str(), MatchKind::Preferred));
        }
        if let Some(pkey) = self.reverse.get(&key) {
            let e = self.entries.get(pkey)?;
            return Some((e.preferred.as_str(), MatchKind::Alternate));
        }
        None
    }

    /// True when `name` occurs as preferred or alternate — the poster's
    /// validation check "all harvested variable names occur in the current
    /// synonym table as preferred or alternate terms".
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_some()
    }

    /// The entry for a preferred term.
    pub fn entry(&self, preferred: &str) -> Option<&TermEntry> {
        self.entries.get(&normalize_term(preferred))
    }

    /// Sets the description of a preferred term.
    pub fn describe(&mut self, preferred: &str, description: impl Into<String>) -> Result<()> {
        let e = self
            .entries
            .get_mut(&normalize_term(preferred))
            .ok_or_else(|| Error::not_found("preferred term", preferred))?;
        e.description = Some(description.into());
        Ok(())
    }

    /// All preferred terms, sorted.
    pub fn preferred_terms(&self) -> impl Iterator<Item = &str> {
        self.entries.values().map(|e| e.preferred.as_str())
    }

    /// All entries, sorted by preferred term.
    pub fn entries(&self) -> impl Iterator<Item = &TermEntry> {
        self.entries.values()
    }

    /// Number of preferred terms.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total alternates across all entries.
    pub fn alternate_count(&self) -> usize {
        self.reverse.len()
    }

    /// Merges `other` into `self`; conflicting alternates are reported, not
    /// applied (the curator reviews them).
    pub fn merge(&mut self, other: &SynonymTable) -> Vec<Error> {
        let mut conflicts = Vec::new();
        for e in other.entries() {
            if let Err(err) = self.add_preferred(e.preferred.clone()) {
                conflicts.push(err);
                continue;
            }
            for alt in &e.alternates {
                if let Err(err) = self.add_alternate(e.preferred.clone(), alt.clone()) {
                    conflicts.push(err);
                }
            }
        }
        conflicts
    }

    /// Parses the curator-friendly text form, one entry per line:
    ///
    /// ```text
    /// air_temperature: airtemp, air_temp, AT
    /// salinity
    /// # comments and blank lines ignored
    /// ```
    pub fn parse_text(text: &str) -> Result<SynonymTable> {
        let mut t = SynonymTable::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (pref, alts) = match line.split_once(':') {
                Some((p, a)) => (p.trim(), a),
                None => (line, ""),
            };
            if pref.is_empty() {
                return Err(Error::parse_at("synonym table", "missing preferred term", ln + 1));
            }
            t.add_preferred(pref)
                .map_err(|e| Error::parse_at("synonym table", e.to_string(), ln + 1))?;
            for alt in alts.split(',') {
                let alt = alt.trim();
                if alt.is_empty() {
                    continue;
                }
                t.add_alternate(pref, alt)
                    .map_err(|e| Error::parse_at("synonym table", e.to_string(), ln + 1))?;
            }
        }
        Ok(t)
    }

    /// Renders the curator-friendly text form (inverse of [`parse_text`]).
    ///
    /// [`parse_text`]: SynonymTable::parse_text
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in self.entries.values() {
            out.push_str(&e.preferred);
            if !e.alternates.is_empty() {
                out.push_str(": ");
                out.push_str(&e.alternates.join(", "));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SynonymTable {
        let mut t = SynonymTable::new();
        t.add_alternate("air_temperature", "airtemp").unwrap();
        t.add_alternate("air_temperature", "air_temperatrue").unwrap();
        t.add_preferred("salinity").unwrap();
        t
    }

    #[test]
    fn resolve_preferred_and_alternate() {
        let t = table();
        assert_eq!(t.resolve("air_temperature"), Some(("air_temperature", MatchKind::Preferred)));
        assert_eq!(t.resolve("airtemp"), Some(("air_temperature", MatchKind::Alternate)));
        assert_eq!(t.resolve("AIRTEMP"), Some(("air_temperature", MatchKind::Alternate)));
        assert_eq!(t.resolve("unknown"), None);
    }

    #[test]
    fn contains_is_validation_check() {
        let t = table();
        assert!(t.contains("salinity"));
        assert!(t.contains("air_temperatrue"));
        assert!(!t.contains("chlorophyll"));
    }

    #[test]
    fn alternate_cannot_serve_two_masters() {
        let mut t = table();
        let e = t.add_alternate("water_temperature", "airtemp").unwrap_err();
        assert!(matches!(e, Error::Conflict { .. }));
    }

    #[test]
    fn alternate_re_add_is_idempotent() {
        let mut t = table();
        t.add_alternate("air_temperature", "airtemp").unwrap();
        assert_eq!(t.entry("air_temperature").unwrap().alternates.len(), 2);
    }

    #[test]
    fn preferred_cannot_be_existing_alternate() {
        let mut t = table();
        assert!(t.add_preferred("airtemp").is_err());
    }

    #[test]
    fn alternate_cannot_be_existing_preferred() {
        let mut t = table();
        assert!(t.add_alternate("air_temperature", "salinity").is_err());
    }

    #[test]
    fn alternate_equal_to_preferred_is_noop() {
        let mut t = SynonymTable::new();
        t.add_alternate("depth", "DEPTH").unwrap();
        assert_eq!(t.alternate_count(), 0);
        assert!(t.contains("depth"));
    }

    #[test]
    fn empty_terms_rejected() {
        let mut t = SynonymTable::new();
        assert!(t.add_preferred("  ").is_err());
        assert!(t.add_alternate("x", "").is_err());
    }

    #[test]
    fn text_round_trip() {
        let t = table();
        let text = t.to_text();
        let mut back = SynonymTable::parse_text(&text).unwrap();
        back.reindex();
        assert_eq!(back.len(), t.len());
        assert_eq!(
            back.resolve("airtemp").map(|(p, _)| p.to_string()),
            Some("air_temperature".to_string())
        );
    }

    #[test]
    fn parse_text_with_comments() {
        let t = SynonymTable::parse_text(
            "# header\n\nwater_temperature: wtemp, watertemp\nsalinity: sal\n",
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve("sal").unwrap().0, "salinity");
    }

    #[test]
    fn parse_text_conflict_reports_line() {
        let e = SynonymTable::parse_text("a: x\nb: x\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn merge_reports_conflicts() {
        let mut a = table();
        let mut b = SynonymTable::new();
        b.add_alternate("water_temperature", "airtemp").unwrap(); // conflicts with a
        b.add_alternate("turbidity", "turb").unwrap();
        let conflicts = a.merge(&b);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(a.resolve("turb").unwrap().0, "turbidity");
        assert_eq!(a.resolve("airtemp").unwrap().0, "air_temperature");
    }

    #[test]
    fn serde_round_trip_with_reindex() {
        let t = table();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: SynonymTable = serde_json::from_str(&json).unwrap();
        back.reindex();
        assert_eq!(back.resolve("air_temperatrue").unwrap().0, "air_temperature");
        assert_eq!(back, t);
    }

    #[test]
    fn describe_preferred() {
        let mut t = table();
        t.describe("salinity", "practical salinity, PSU").unwrap();
        assert_eq!(
            t.entry("salinity").unwrap().description.as_deref(),
            Some("practical salinity, PSU")
        );
        assert!(t.describe("nope", "x").is_err());
    }
}
