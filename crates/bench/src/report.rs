//! Machine-readable bench output.
//!
//! The `exp*` binaries print human-readable tables; with `--json [path]`
//! they additionally write a flat, schema-stable JSON report
//! (`BENCH_search.json`, `BENCH_wrangle.json`, ...) that CI and plotting
//! scripts can diff across commits without scraping stdout.
//!
//! The schema is deliberately a flat `metrics` map of dotted keys to
//! numbers: keys are stable identifiers, values are `u64` or `f64`
//! (rendered with a fixed number of decimals so byte-level diffs are
//! meaningful), and the map is sorted. Latency distributions are summarized
//! as `count`/`mean`/`p50`/`p95`/`p99`/`max`, either from exact samples or
//! from a telemetry [`HistogramSnapshot`].

use metamess_telemetry::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Schema identifier embedded in every report.
pub const SCHEMA: &str = "metamess-bench/1";

#[derive(Debug, Clone, PartialEq)]
enum Value {
    U64(u64),
    F64(f64),
}

/// A flat metric report, rendered as stable JSON.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    experiment: String,
    metrics: BTreeMap<String, Value>,
}

impl BenchReport {
    /// Creates an empty report for a named experiment (`"search"`,
    /// `"wrangle"`, ...).
    pub fn new(experiment: &str) -> BenchReport {
        BenchReport { experiment: experiment.to_string(), metrics: BTreeMap::new() }
    }

    /// Sets an integer metric.
    pub fn set(&mut self, key: &str, v: u64) {
        self.metrics.insert(key.to_string(), Value::U64(v));
    }

    /// Sets a float metric. Non-finite values are stored as 0 so the
    /// rendered schema never contains `NaN`/`inf` (invalid JSON).
    pub fn set_f64(&mut self, key: &str, v: f64) {
        let v = if v.is_finite() { v } else { 0.0 };
        self.metrics.insert(key.to_string(), Value::F64(v));
    }

    /// Number of metrics recorded so far.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Summarizes exact latency samples (in µs) under `prefix`: writes
    /// `<prefix>.count`, `.mean_micros`, `.p50_micros`, `.p95_micros`,
    /// `.p99_micros`, `.max_micros` using nearest-rank percentiles.
    pub fn record_samples(&mut self, prefix: &str, samples: &[u64]) {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let ix = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[ix - 1]
        };
        let sum: u64 = sorted.iter().sum();
        self.set(&format!("{prefix}.count"), sorted.len() as u64);
        self.set_f64(
            &format!("{prefix}.mean_micros"),
            if sorted.is_empty() { 0.0 } else { sum as f64 / sorted.len() as f64 },
        );
        self.set(&format!("{prefix}.p50_micros"), rank(0.50));
        self.set(&format!("{prefix}.p95_micros"), rank(0.95));
        self.set(&format!("{prefix}.p99_micros"), rank(0.99));
        self.set(&format!("{prefix}.max_micros"), sorted.last().copied().unwrap_or(0));
    }

    /// Summarizes a telemetry histogram under `prefix` with the same keys
    /// as [`record_samples`](Self::record_samples) (percentiles come from
    /// the log-bucketed scheme, so they carry its ≤12.5% relative error).
    pub fn record_histogram(&mut self, prefix: &str, h: &HistogramSnapshot) {
        self.set(&format!("{prefix}.count"), h.count);
        self.set_f64(&format!("{prefix}.mean_micros"), h.mean());
        self.set(&format!("{prefix}.p50_micros"), h.quantile(0.50));
        self.set(&format!("{prefix}.p95_micros"), h.quantile(0.95));
        self.set(&format!("{prefix}.p99_micros"), h.quantile(0.99));
        self.set(&format!("{prefix}.max_micros"), h.max);
    }

    /// Renders the report as JSON: schema + experiment + sorted flat
    /// metrics map. Floats use 4 decimals so re-rendering is byte-stable.
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{}\",", SCHEMA);
        let _ = writeln!(out, "  \"experiment\": \"{}\",", self.experiment);
        out.push_str("  \"metrics\": {\n");
        for (ix, (k, v)) in self.metrics.iter().enumerate() {
            let comma = if ix + 1 < self.metrics.len() { "," } else { "" };
            match v {
                Value::U64(n) => {
                    let _ = writeln!(out, "    \"{k}\": {n}{comma}");
                }
                Value::F64(x) => {
                    let _ = writeln!(out, "    \"{k}\": {x:.4}{comma}");
                }
            }
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes the rendered report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.render())
    }
}

/// Parses an optional `--json [path]` flag: `None` when absent,
/// `Some(default)` for a bare `--json`, `Some(path)` when a path follows.
pub fn json_flag(args: &[String], default: &str) -> Option<std::path::PathBuf> {
    let ix = args.iter().position(|a| a == "--json")?;
    match args.get(ix + 1) {
        Some(p) if !p.starts_with("--") => Some(std::path::PathBuf::from(p)),
        _ => Some(std::path::PathBuf::from(default)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_valid_json_and_stable() {
        let mut r = BenchReport::new("search");
        r.set("b.count", 2);
        r.set_f64("a.speedup", 2.5);
        r.set_f64("c.bad", f64::NAN);
        let text = r.render();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid json");
        assert_eq!(v["schema"], SCHEMA);
        assert_eq!(v["experiment"], "search");
        assert_eq!(v["metrics"]["b.count"], 2);
        assert_eq!(v["metrics"]["a.speedup"], 2.5);
        assert_eq!(v["metrics"]["c.bad"], 0.0, "non-finite stored as 0");
        assert!(text.find("a.speedup").unwrap() < text.find("b.count").unwrap());
        assert_eq!(text, r.clone().render(), "re-render is byte-stable");
    }

    #[test]
    fn sample_percentiles_are_nearest_rank() {
        let mut r = BenchReport::new("t");
        let samples: Vec<u64> = (1..=100).collect();
        r.record_samples("lat", &samples);
        let text = r.render();
        let v: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(v["metrics"]["lat.count"], 100);
        assert_eq!(v["metrics"]["lat.p50_micros"], 50);
        assert_eq!(v["metrics"]["lat.p95_micros"], 95);
        assert_eq!(v["metrics"]["lat.p99_micros"], 99);
        assert_eq!(v["metrics"]["lat.max_micros"], 100);
        assert_eq!(v["metrics"]["lat.mean_micros"], 50.5);
    }

    #[test]
    fn empty_samples_render_zeroes() {
        let mut r = BenchReport::new("t");
        r.record_samples("lat", &[]);
        let v: serde_json::Value = serde_json::from_str(&r.render()).unwrap();
        assert_eq!(v["metrics"]["lat.count"], 0);
        assert_eq!(v["metrics"]["lat.p99_micros"], 0);
    }

    #[test]
    fn histogram_summary_brackets_observations() {
        let h = metamess_telemetry::Histogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.record(v);
        }
        let mut r = BenchReport::new("t");
        r.record_histogram("h", &h.snapshot());
        let v: serde_json::Value = serde_json::from_str(&r.render()).unwrap();
        assert_eq!(v["metrics"]["h.count"], 4);
        assert_eq!(v["metrics"]["h.max_micros"], 1000);
        let p50 = v["metrics"]["h.p50_micros"].as_u64().unwrap();
        assert!((18..=30).contains(&p50), "p50 {p50} should bracket 20 within bucket error");
    }

    #[test]
    fn json_flag_parses_all_forms() {
        let a = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(json_flag(&a(&[]), "D.json"), None);
        assert_eq!(json_flag(&a(&["--json"]), "D.json"), Some("D.json".into()));
        assert_eq!(json_flag(&a(&["--json", "out.json"]), "D.json"), Some("out.json".into()));
        assert_eq!(json_flag(&a(&["--json", "--quiet"]), "D.json"), Some("D.json".into()));
    }
}
