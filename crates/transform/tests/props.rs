//! Property tests for the GREL engine and Refine-rule application.

use metamess_core::value::{Record, Value};
use metamess_transform::grel::{eval, lex, parse, EvalContext};
use metamess_transform::{apply_operations, operations_to_json, parse_operations, Operation};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lexer_never_panics(src in "\\PC{0,60}") {
        let _ = lex(&src);
    }

    #[test]
    fn parser_never_panics(src in "\\PC{0,60}") {
        let _ = parse(&src);
    }

    #[test]
    fn eval_never_panics_on_random_strings(
        src in "[a-zA-Z0-9_.,()'\\[\\] +*/<>=!&|-]{0,40}",
        cell in "[ -~]{0,16}",
    ) {
        if let Ok(expr) = parse(&src) {
            let v = Value::sniff(&cell);
            let _ = eval(&expr, &EvalContext::of_value(&v));
        }
    }

    #[test]
    fn string_builtins_total_on_any_value(cell in "\\PC{0,24}") {
        // the core cleanup chain must succeed on every conceivable cell
        let expr = parse("value.trim().toLowercase().replace('_', ' ')").unwrap();
        for v in [Value::sniff(&cell), Value::Text(cell.clone()), Value::Null] {
            let out = eval(&expr, &EvalContext::of_value(&v)).unwrap();
            prop_assert!(matches!(out, Value::Text(_)));
        }
    }

    #[test]
    fn fingerprint_expression_is_idempotent(cell in "[ -~]{0,24}") {
        let expr = parse("value.fingerprint()").unwrap();
        let v = Value::Text(cell);
        let once = eval(&expr, &EvalContext::of_value(&v)).unwrap();
        let twice = eval(&expr, &EvalContext::of_value(&once)).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn mass_edit_moves_exactly_matching_cells(
        values in prop::collection::vec("[a-z_]{1,10}", 1..30),
        target_ix in 0usize..30,
    ) {
        let target = values[target_ix % values.len()].clone();
        let mut rows: Vec<Record> = values
            .iter()
            .map(|v| {
                let mut r = Record::new();
                r.set("field", v.clone());
                r
            })
            .collect();
        let op = Operation::mass_edit("field", vec![target.clone()], "CANON");
        let expected: u64 = values.iter().filter(|v| **v == target && **v != "CANON").count() as u64;
        let report = apply_operations(&mut rows, &[op]).unwrap();
        prop_assert_eq!(report.total_changed(), expected);
        for (v, row) in values.iter().zip(rows.iter()) {
            let now = row.get("field").unwrap().render().into_owned();
            if *v == target {
                prop_assert_eq!(now, "CANON".to_string());
            } else {
                prop_assert_eq!(&now, v);
            }
        }
    }

    #[test]
    fn operations_json_round_trip(
        edits in prop::collection::vec(("[a-z]{1,8}", "[a-z ]{1,12}"), 1..8),
    ) {
        let ops: Vec<Operation> = edits
            .iter()
            .map(|(from, to)| Operation::mass_edit("field", vec![from.clone()], to))
            .collect();
        let json = operations_to_json(&ops);
        let back = parse_operations(&json).unwrap();
        prop_assert_eq!(back, ops);
    }

    #[test]
    fn text_transform_trim_idempotent_over_table(
        values in prop::collection::vec("[ a-z_]{0,12}", 1..20),
    ) {
        let mut rows: Vec<Record> = values
            .iter()
            .map(|v| {
                let mut r = Record::new();
                r.set("field", v.clone());
                r
            })
            .collect();
        let op = Operation::text_transform("field", "value.trim()");
        apply_operations(&mut rows, std::slice::from_ref(&op)).unwrap();
        let snapshot = rows.clone();
        let second = apply_operations(&mut rows, &[op]).unwrap();
        prop_assert_eq!(second.total_changed(), 0);
        prop_assert_eq!(rows, snapshot);
    }
}
