//! Registry correctness: concurrent updates sum exactly, histogram bucket
//! boundaries are monotone and stable, and the Prometheus/JSON renders
//! round-trip a snapshot.

use metamess_telemetry::{
    bucket_bound, bucket_index, labeled, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot,
};
use proptest::prelude::*;

#[test]
fn concurrent_counter_updates_sum_exactly() {
    let r = MetricsRegistry::new(true);
    let threads = 8usize;
    let per_thread = 10_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let c = r.counter("metamess_test_concurrent_total");
            scope.spawn(move || {
                for _ in 0..per_thread {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(r.counter("metamess_test_concurrent_total").get(), threads as u64 * per_thread);
}

#[test]
fn concurrent_histogram_updates_sum_exactly() {
    let r = MetricsRegistry::new(true);
    let threads = 8u64;
    let per_thread = 5_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = r.histogram("metamess_test_concurrent_micros");
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.record(t * per_thread + i);
                }
            });
        }
    });
    let s = r.histogram("metamess_test_concurrent_micros").snapshot();
    assert_eq!(s.count, threads * per_thread);
    let n = threads * per_thread;
    assert_eq!(s.sum, n * (n - 1) / 2, "every observation accounted for");
    assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
    assert_eq!((s.min, s.max), (0, n - 1));
}

#[test]
fn concurrent_registration_yields_one_metric() {
    let r = MetricsRegistry::new(true);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let r = &r;
            scope.spawn(move || {
                for i in 0..100 {
                    r.counter(&format!("metamess_reg_race_{i}_total")).inc();
                }
            });
        }
    });
    let s = r.snapshot();
    assert_eq!(s.counters.len(), 100);
    for (name, v) in &s.counters {
        assert_eq!(*v, 8, "{name}: every thread's increment must land on one counter");
    }
}

proptest! {
    /// Bucket boundaries are strictly monotone and stable: the bound of a
    /// value's bucket is ≥ the value, the previous bucket's bound is < it,
    /// and re-deriving the index from the bound is the identity.
    #[test]
    fn bucket_scheme_is_monotone_and_stable(v in 0u64..(1u64 << 40)) {
        let ix = bucket_index(v);
        prop_assert!(v <= bucket_bound(ix));
        if ix > 0 {
            prop_assert!(v > bucket_bound(ix - 1));
            prop_assert!(bucket_bound(ix) > bucket_bound(ix - 1));
        }
        prop_assert_eq!(bucket_index(bucket_bound(ix)), ix);
    }

    /// A recorded value is visible in exactly the snapshot bucket whose
    /// bound brackets it, and quantiles stay within the observed range.
    #[test]
    fn snapshot_brackets_observations(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        let lo = *values.iter().min().unwrap();
        let hi = *values.iter().max().unwrap();
        prop_assert_eq!((s.min, s.max), (lo, hi));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est <= hi, "quantile {q} = {est} beyond max {hi}");
        }
        prop_assert!(s.quantile(1.0) >= hi, "p100 must reach the max");
    }

    /// merge() is equivalent to recording both value sets into one
    /// histogram.
    #[test]
    fn merge_matches_combined_recording(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let ha = Histogram::new();
        let hb = Histogram::new();
        let hall = Histogram::new();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        let mut m = ha.snapshot();
        m.merge(&hb.snapshot());
        prop_assert_eq!(m, hall.snapshot());
    }
}

fn sample_snapshot() -> MetricsSnapshot {
    let r = MetricsRegistry::new(true);
    r.counter("metamess_a_total").add(7);
    r.counter(&labeled("metamess_b_total", "kind", "x")).add(3);
    r.gauge("metamess_g").set(-11);
    let h = r.histogram(&labeled("metamess_h_micros", "span", "s.t"));
    for v in [0u64, 1, 9, 200, 4096, 123_456] {
        h.record(v);
    }
    r.snapshot()
}

/// Rebuilds a `MetricsSnapshot` from its own JSON render.
fn snapshot_from_json(text: &str) -> MetricsSnapshot {
    let v: serde_json::Value = serde_json::from_str(text).expect("render_json emits valid JSON");
    let mut out = MetricsSnapshot::default();
    for (k, n) in v["counters"].as_object().unwrap() {
        out.counters.insert(k.clone(), n.as_u64().unwrap());
    }
    for (k, n) in v["gauges"].as_object().unwrap() {
        out.gauges.insert(k.clone(), n.as_i64().unwrap());
    }
    for (k, h) in v["histograms"].as_object().unwrap() {
        out.histograms.insert(
            k.clone(),
            HistogramSnapshot {
                count: h["count"].as_u64().unwrap(),
                sum: h["sum"].as_u64().unwrap(),
                min: h["min"].as_u64().unwrap(),
                max: h["max"].as_u64().unwrap(),
                buckets: h["buckets"]
                    .as_array()
                    .unwrap()
                    .iter()
                    .map(|b| (b[0].as_u64().unwrap(), b[1].as_u64().unwrap()))
                    .collect(),
                exemplar: h.get("exemplar").map(|ex| {
                    (
                        ex["value"].as_u64().unwrap(),
                        u128::from_str_radix(ex["trace_id"].as_str().unwrap(), 16).unwrap(),
                    )
                }),
            },
        );
    }
    out
}

#[test]
fn json_render_round_trips() {
    let snap = sample_snapshot();
    let rebuilt = snapshot_from_json(&snap.render_json());
    assert_eq!(rebuilt, snap);
    // a second render of the rebuilt snapshot is byte-identical
    assert_eq!(rebuilt.render_json(), snap.render_json());
}

#[test]
fn prometheus_render_round_trips_scalars() {
    let snap = sample_snapshot();
    let text = snap.render_prometheus();
    // every counter and gauge line parses back to its exact value
    for (name, v) in &snap.counters {
        let line = text.lines().find(|l| l.starts_with(name.as_str())).expect("counter rendered");
        let parsed: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(parsed, *v, "{name}");
    }
    for (name, v) in &snap.gauges {
        let line = text.lines().find(|l| l.starts_with(name.as_str())).expect("gauge rendered");
        let parsed: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(parsed, *v, "{name}");
    }
    // histogram sum/count series carry the snapshot totals, and the +Inf
    // bucket equals the count
    for (name, h) in &snap.histograms {
        let (base, labels) = name.split_once('{').expect("sample histogram is labeled");
        let labels = labels.strip_suffix('}').unwrap();
        let find = |suffix: &str, extra: &str| -> u64 {
            let needle = if extra.is_empty() {
                format!("{base}_{suffix}{{{labels}}} ")
            } else {
                format!("{base}_{suffix}{{{labels},{extra}}} ")
            };
            let line = text.lines().find(|l| l.starts_with(&needle)).expect("series rendered");
            line.rsplit(' ').next().unwrap().parse().unwrap()
        };
        assert_eq!(find("sum", ""), h.sum);
        assert_eq!(find("count", ""), h.count);
        assert_eq!(find("bucket", "le=\"+Inf\""), h.count);
    }
}
