//! `metamess` — command-line interface to the metadata-wrangling system.
//!
//! ```text
//! metamess generate <dir> [--seed N] [--months N] [--stations N]
//! metamess wrangle  <dir> [--store <store-dir>] [--expert] [--explain]
//! metamess watch    <dir> [--store <store-dir>] [--interval-ms N]
//!                   [--commit-interval-ms N] [--max-cycles N]
//!                   [--compact-ratio F] [--retain N]
//! metamess search   <store-dir> <query...> [--explain] [--shards N] [--partition P]
//!                   [--remote H:P,H:P,...] [--partial-policy fail|degrade]
//! metamess summary  <store-dir> <dataset-path>
//! metamess stats    <store-dir> [--prometheus|--json] [--reset]
//! metamess validate <dir>
//! metamess fsck     <store-dir> [--json] [--repair]
//! metamess shardd   <store-dir> --shard-id K/N [--partition P] [--listen H:P]
//! metamess serve    <store-dir> [--addr H:P] [--workers N] [--queue-depth N]
//!                   [--drain-grace-ms N] [--shards N] [--partition P]
//!                   [--slow-ms N] [--trace-sample-rate F]
//!                   [--remote H:P,H:P,...] [--partial-policy fail|degrade]
//! metamess trace    <store-dir> [--slow] [--json] [--id HEX]
//! ```
//!
//! `wrangle` runs the full curation loop over an archive directory and
//! persists the published catalog (snapshot + WAL) plus the vocabulary into
//! the store directory; `search` and `summary` work from that store. Both
//! wrangle and search fold their telemetry into
//! `<store>/state/telemetry.json`, which `stats` renders as a table,
//! Prometheus text, or JSON — and their request traces into
//! `<store>/state/traces.json`, which `trace` renders as span trees.

use metamess::core::{DurableCatalog, StoreOptions};
use metamess::pipeline::Severity;
use metamess::prelude::*;
use metamess::search::{render_results, render_summary, Partitioner, ShardSpec, MAX_SHARDS};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("wrangle") => cmd_wrangle(&args[1..]),
        Some("watch") => cmd_watch(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("summary") => cmd_summary(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("browse") => cmd_browse(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        Some("shardd") => cmd_shardd(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
metamess — taming the metadata mess

usage:
  metamess generate <dir> [--seed N] [--months N] [--stations N]
      write a synthetic observatory archive (plus ground_truth.json)
  metamess wrangle <dir> [--store <store-dir>] [--expert] [--explain]
      run the wrangling pipeline + curation loop over an archive directory;
      persist the published catalog and vocabulary into the store directory
      (default: <dir>/.metamess); --expert adds the hand-curated synonym set;
      --explain prints the telemetry recorded during the run
  metamess watch <dir> [--store <store-dir>] [--interval-ms N]
                 [--commit-interval-ms N] [--max-cycles N]
                 [--compact-ratio F] [--retain N]
      continuous ingestion: poll the archive every --interval-ms (default
      1000), re-wrangle only what changed (the fingerprint ledger skips
      unchanged stages), and publish catalog deltas to the store through a
      group-commit WAL — many cycles coalesce into one fsync within the
      --commit-interval-ms window (default 25; 0 = fsync per publish). A
      live `metamess serve` on the same store applies the deltas in place
      without reopening. The WAL is folded into a fresh snapshot when it
      outgrows --compact-ratio × snapshot bytes (default 0.5), keeping
      --retain previous snapshots (default 2); --max-cycles stops after N
      cycles (useful for scripting); ctrl-c stops after the current cycle
  metamess search <store-dir> <query...> [--explain] [--shards N] [--partition P]
                  [--remote H:P,H:P,...] [--partial-policy fail|degrade]
      ranked search, e.g.:
      metamess search ./arc/.metamess near 45.5,-124.4 within 50km with salinity
      --explain appends a per-phase breakdown (plan/probe/score/merge);
      --shards splits the catalog into N shards (clamped to 1..=256) searched
      scatter-gather; --partition picks the layout (hash|spatial|temporal —
      spatial/temporal give shards prunable bounds); results are identical
      to unsharded at any shard count; --remote scatter-gathers across a
      comma-separated shardd fleet instead (bit-identical to local sharding
      at the same layout) — --partial-policy degrade returns the healthy
      shards' merge marked partial when a shard is down (default: fail)
  metamess summary <store-dir> <dataset-path>
      render the dataset summary page for a catalog entry
  metamess stats <store-dir> [--prometheus|--json] [--reset]
      render telemetry accumulated across wrangle/search runs (default:
      text table; --prometheus and --json switch the exposition format;
      --reset clears the persisted snapshot)
  metamess browse <store-dir>
      hierarchical drill-down menus with dataset counts per concept
  metamess validate <dir>
      run the pipeline's validation stage and print findings
  metamess fsck <store-dir> [--json] [--repair]
      verify store integrity (CRCs, magic headers, snapshot/WAL agreement);
      --repair truncates damaged WAL tails and quarantines corrupt files
      into <store>/state/quarantine; --json emits the machine-readable
      report; exits nonzero when damage was found and not repaired
  metamess shardd <store-dir> --shard-id K/N [--partition P] [--listen H:P]
      host shard K of an N-shard layout over the store as a lean daemon
      speaking the length-prefixed binary shard protocol; a serve or
      search coordinator dials a fleet of these with --remote; the bound
      address is printed at startup (port 0 picks a free port);
      ctrl-c stops accepting and drains in-flight frames
  metamess serve <store-dir> [--addr H:P] [--workers N] [--queue-depth N]
                 [--drain-grace-ms N] [--shards N] [--partition P]
                 [--slow-ms N] [--trace-sample-rate F]
                 [--remote H:P,H:P,...] [--partial-policy fail|degrade]
      serve the store over HTTP (POST /search, GET /datasets/<path>,
      GET /browse, GET /healthz, GET /metrics, GET /debug/traces,
      POST /admin/reload): one nonblocking event thread multiplexes every
      connection and hands complete requests to a bounded worker pool
      (--workers is clamped to 1..=256, --queue-depth to 0..=4096); excess
      load is shed with 503 Retry-After, and republished stores are
      hot-reloaded without dropping requests (reloads rebuild the full
      shard set and swap it atomically); SIGTERM / ctrl-c drain in-flight
      work before exiting, waiting up to --drain-grace-ms (default 500)
      for worker threads to finish; every response carries an
      X-Metamess-Trace-Id header — requests slower than --slow-ms
      (default 100) always land in the slow-query log, and
      --trace-sample-rate (0.0..=1.0, default 1.0) head-samples the
      flight recorder; --remote makes POST /search scatter-gather across
      a shardd fleet (degraded responses under --partial-policy degrade
      carry X-Metamess-Partial: true and a JSON partial flag; per-shard
      circuit state appears in GET /healthz)
  metamess trace <store-dir> [--slow] [--json] [--id HEX]
      render request traces persisted by serve/search/wrangle as span
      trees with per-span micros and shard attribution (default: recent
      traces, newest first; --slow shows the slow-query log; --id picks
      one trace by its 32-hex id; --json emits the /debug/traces shape)";

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|ix| args.get(ix + 1).cloned())
}

/// Reads `--shards N` / `--partition hash|spatial|temporal` into a
/// [`ShardSpec`]. The count is clamped to `1..=MAX_SHARDS` by the spec
/// constructor (so `--shards 0` means "unsharded" and absurd counts are
/// capped rather than rejected); an unknown partitioner name is an error.
fn parse_shard_flags(args: &[String]) -> Result<ShardSpec, metamess::core::Error> {
    let count = match parse_flag(args, "--shards") {
        Some(n) => n.parse::<usize>().map_err(|_| {
            metamess::core::Error::invalid(format!("bad --shards (expected 0..={MAX_SHARDS})"))
        })?,
        None => 1,
    };
    let partitioner = match parse_flag(args, "--partition") {
        Some(p) => Partitioner::parse(&p).ok_or_else(|| {
            metamess::core::Error::invalid(format!(
                "bad --partition {p:?} (expected hash, spatial or temporal)"
            ))
        })?,
        None => Partitioner::Hash,
    };
    Ok(ShardSpec::new(count, partitioner))
}

fn cmd_generate(args: &[String]) -> Result<(), metamess::core::Error> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| metamess::core::Error::invalid("generate needs a target directory"))?;
    let mut spec = ArchiveSpec::default();
    if let Some(seed) = parse_flag(args, "--seed") {
        spec.seed = seed.parse().map_err(|_| metamess::core::Error::invalid("bad --seed"))?;
    }
    if let Some(m) = parse_flag(args, "--months") {
        spec.months = m.parse().map_err(|_| metamess::core::Error::invalid("bad --months"))?;
    }
    if let Some(s) = parse_flag(args, "--stations") {
        spec.stations = s.parse().map_err(|_| metamess::core::Error::invalid("bad --stations"))?;
    }
    let archive = metamess::archive::generate(&spec);
    archive.write_to(dir)?;
    println!(
        "wrote {} files ({} datasets, {} malformed) to {dir}",
        archive.files.len(),
        archive.truth.datasets.len(),
        archive.truth.malformed.len()
    );
    Ok(())
}

fn store_paths(store_dir: &Path) -> (PathBuf, PathBuf) {
    (store_dir.join("catalog"), store_dir.join("vocabulary.json"))
}

fn cmd_wrangle(args: &[String]) -> Result<(), metamess::core::Error> {
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| metamess::core::Error::invalid("wrangle needs an archive directory"))?;
    let store_dir = parse_flag(args, "--store")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(dir).join(".metamess"));
    let expert = args.iter().any(|a| a == "--expert");
    let explain = args.iter().any(|a| a == "--explain");

    let mut ctx = PipelineContext::new(
        ArchiveInput::Dir(PathBuf::from(dir)),
        Vocabulary::observatory_default(),
    );
    // keep the store out of the scan
    ctx.harvest.scan.exclude.push(".metamess".into());
    // resume incrementality: restore catalogs, vocabulary and the run
    // ledger from the previous wrangle so unchanged stages are skipped
    let state_dir = store_dir.join("state");
    if metamess::pipeline::load_state(&mut ctx, &state_dir)? {
        println!(
            "resuming from {} (run #{}, {} datasets published)",
            state_dir.display(),
            ctx.run_id,
            ctx.catalogs.published.len()
        );
    }
    let mut pipeline = Pipeline::standard();
    let mut policy = CuratorPolicy::default();
    if expert {
        policy.manual_synonyms = expert_synonyms();
    }
    let curator = CurationLoop::new(policy);
    let (history, last) = curator.run_to_fixpoint(&mut pipeline, &mut ctx)?;
    print!("{}", last.render());
    for s in &history {
        println!(
            "iteration {}: accepted {}, clarified {}, unresolved {}, resolved {:.1}%",
            s.iteration,
            s.accepted,
            s.clarified,
            s.unresolved_after,
            100.0 * s.resolution_after
        );
    }

    let (catalog_dir, vocab_path) = store_paths(&store_dir);
    let mut store = DurableCatalog::open(&catalog_dir, StoreOptions::default())?;
    store.replace_with(&ctx.catalogs.published)?;
    store.checkpoint()?;
    ctx.vocab.save(&vocab_path)?;
    metamess::pipeline::save_state(&ctx, &state_dir)?;
    println!(
        "published {} datasets to {} (vocabulary v{})",
        ctx.catalogs.published.len(),
        store_dir.display(),
        ctx.vocab.version
    );
    if explain {
        print!("{}", metamess::telemetry::global().snapshot().render_table());
    }
    persist_telemetry(&store_dir)?;
    Ok(())
}

/// Continuous ingestion: `metamess watch <dir>` — the wrangle loop run
/// forever, publishing catalog deltas through the store's group-commit
/// queue so a live `metamess serve` picks them up without reopening.
fn cmd_watch(args: &[String]) -> Result<(), metamess::core::Error> {
    use std::time::Duration;
    let dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| metamess::core::Error::invalid("watch needs an archive directory"))?;
    let store_dir = parse_flag(args, "--store")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(dir).join(".metamess"));
    let mut options = metamess::pipeline::WatchOptions::default();
    if let Some(ms) = parse_flag(args, "--interval-ms") {
        options.interval = ms
            .parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|_| metamess::core::Error::invalid("bad --interval-ms"))?;
    }
    if let Some(ms) = parse_flag(args, "--commit-interval-ms") {
        options.commit_interval = ms
            .parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|_| metamess::core::Error::invalid("bad --commit-interval-ms"))?;
    }
    if let Some(n) = parse_flag(args, "--max-cycles") {
        options.max_cycles =
            Some(n.parse::<u64>().map_err(|_| metamess::core::Error::invalid("bad --max-cycles"))?);
    }
    if let Some(r) = parse_flag(args, "--compact-ratio") {
        options.compaction.wal_ratio = r
            .parse::<f64>()
            .ok()
            .filter(|r| r.is_finite() && *r > 0.0)
            .ok_or_else(|| metamess::core::Error::invalid("bad --compact-ratio"))?;
    }
    if let Some(n) = parse_flag(args, "--retain") {
        options.compaction.retain =
            n.parse::<usize>().map_err(|_| metamess::core::Error::invalid("bad --retain"))?;
    }

    let watcher = metamess::pipeline::Watcher::new(dir, &store_dir, options.clone())?;
    if watcher.resumed() {
        println!(
            "resuming from {} ({} datasets published)",
            store_dir.join("state").display(),
            watcher.published_len()
        );
    }
    // Bridge SIGTERM / ctrl-c to the watcher's stop flag: the current
    // cycle finishes (its publish is acked and state saved) before exit.
    let stop = watcher.stop_handle();
    let shutdown = metamess::server::ShutdownHandle::new();
    shutdown.install_signal_handlers();
    {
        let stop = stop.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            while !shutdown.is_shutdown() {
                std::thread::sleep(Duration::from_millis(50));
            }
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
    println!(
        "watching {dir} -> {} (poll {}ms, commit window {}ms; ctrl-c to stop)",
        store_dir.display(),
        options.interval.as_millis(),
        options.commit_interval.as_millis()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let telemetry_store = store_dir.clone();
    let report = watcher.run(move |cycle| {
        if cycle.changed {
            println!(
                "cycle {}: published {} mutation(s), {} datasets, {:.1}ms",
                cycle.cycle,
                cycle.mutations,
                cycle.datasets,
                cycle.micros as f64 / 1000.0
            );
            let _ = std::io::stdout().flush();
            // Fold this cycle's telemetry in while we are still running so
            // `metamess stats` sees live ingest.* numbers.
            if let Err(e) = persist_telemetry(&telemetry_store) {
                eprintln!("warning: telemetry persist failed: {e}");
            }
        }
    })?;
    println!(
        "watched {} cycle(s) ({} unchanged), published {} mutation(s), {} datasets in {}",
        report.cycles,
        report.skipped,
        report.mutations,
        report.datasets,
        store_dir.display()
    );
    persist_telemetry(&store_dir)?;
    Ok(())
}

/// Folds this process's telemetry into `<store>/state/telemetry.json` and
/// its request traces into `<store>/state/traces.json` (the file `metamess
/// trace` reads). Best-effort: a no-op when telemetry is disabled or
/// nothing was recorded.
fn persist_telemetry(store_dir: &Path) -> Result<(), metamess::core::Error> {
    let path = metamess::telemetry_io::telemetry_path(store_dir);
    metamess::telemetry_io::persist_merged(&path)
        .map_err(|e| metamess::core::Error::io(format!("persist {}", path.display()), e))?;
    let traces = metamess::telemetry::trace::traces_path(store_dir);
    metamess::telemetry::trace::persist_traces(&traces)
        .map_err(|e| metamess::core::Error::io(format!("persist {}", traces.display()), e))?;
    Ok(())
}

fn expert_synonyms() -> Vec<(String, String)> {
    [
        "air_temperature",
        "water_temperature",
        "sea_surface_temperature",
        "salinity",
        "specific_conductivity",
        "dissolved_oxygen",
        "turbidity",
        "chlorophyll_fluorescence",
        "wind_speed",
        "wind_direction",
        "air_pressure",
        "relative_humidity",
        "precipitation",
        "solar_radiation",
        "depth",
        "nitrate",
        "phosphate",
        "ph",
    ]
    .iter()
    .flat_map(|c| {
        metamess::archive::adhoc_synonyms(c).iter().map(move |v| (c.to_string(), v.to_string()))
    })
    .collect()
}

fn open_engine(store_dir: &Path, spec: ShardSpec) -> Result<SearchEngine, metamess::core::Error> {
    let (catalog_dir, vocab_path) = store_paths(store_dir);
    let store = DurableCatalog::open(&catalog_dir, StoreOptions::default())?;
    let vocab = if vocab_path.exists() {
        Vocabulary::load(&vocab_path)?
    } else {
        Vocabulary::observatory_default()
    };
    Ok(SearchEngine::build_sharded(store.catalog(), vocab, spec))
}

/// Strips `--explain` plus the value-taking shard and remote flags out
/// of the positional arguments, leaving only the query words.
fn query_words(args: &[String]) -> Vec<String> {
    let mut words = Vec::new();
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        match a.as_str() {
            "--explain" => {}
            "--shards" | "--partition" | "--remote" | "--partial-policy" => skip_value = true,
            _ => words.push(a.clone()),
        }
    }
    words
}

/// Splits a `--remote` value into its comma-separated shardd addresses.
fn parse_remote_addrs(value: &str) -> Result<Vec<String>, metamess::core::Error> {
    let addrs: Vec<String> =
        value.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    if addrs.is_empty() {
        return Err(metamess::core::Error::invalid(
            "--remote needs at least one host:port address",
        ));
    }
    Ok(addrs)
}

/// Reads `--partial-policy fail|degrade` into coordinator options
/// (default: fail — a down shard is an error unless degrade is asked for).
fn parse_remote_options(
    args: &[String],
) -> Result<metamess::remote::RemoteOptions, metamess::core::Error> {
    let mut opts = metamess::remote::RemoteOptions::default();
    if let Some(p) = parse_flag(args, "--partial-policy") {
        opts.partial_policy = metamess::remote::PartialPolicy::parse(&p).ok_or_else(|| {
            metamess::core::Error::invalid(format!(
                "bad --partial-policy {p:?} (expected fail or degrade)"
            ))
        })?;
    }
    Ok(opts)
}

fn cmd_search(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .ok_or_else(|| metamess::core::Error::invalid("search needs a store directory"))?;
    let explain = args.iter().any(|a| a == "--explain");
    let remote = parse_flag(args, "--remote");
    let spec = parse_shard_flags(args)?;
    let query_text = query_words(&args[1..]).join(" ");
    if query_text.trim().is_empty() {
        return Err(metamess::core::Error::invalid("search needs a query"));
    }
    let query = Query::parse(&query_text)?;
    if explain && remote.is_some() {
        return Err(metamess::core::Error::invalid("--explain is not available over --remote"));
    }
    // Trace the query like a served request would be (never sampled away:
    // this run exists because someone wants to look at it). The trace is
    // persisted below, so `metamess trace <store> --id <hex>` replays it.
    let trace_ctx = metamess::telemetry::TraceContext::start(1.0);
    let tracing = metamess::telemetry::trace::begin(&trace_ctx, "search");
    if let Some(remote) = remote {
        // Scatter-gather over a shardd fleet: same probe/score/merge as
        // local sharding, so the rendered results are bit-identical.
        let set = metamess::remote::RemoteShardSet::connect(
            &parse_remote_addrs(&remote)?,
            parse_remote_options(args)?,
        )?;
        let out = set.search(&query)?;
        print!("{}", render_results(&out.hits));
        if out.partial {
            println!(
                "partial: shard(s) {:?} unavailable — degraded to the healthy shards' merge",
                out.failed
            );
        }
    } else if explain {
        let engine = open_engine(Path::new(store_dir), spec)?;
        let (hits, breakdown) = engine.search_explain(&query);
        print!("{}", render_results(&hits));
        print!("{}", breakdown.render());
    } else {
        let engine = open_engine(Path::new(store_dir), spec)?;
        let hits = engine.search(&query);
        print!("{}", render_results(&hits));
    }
    if tracing {
        if let Some(fin) = metamess::telemetry::trace::end(u64::MAX) {
            println!("trace: {} ({}µs)", fin.trace_id_hex(), fin.micros);
        }
    }
    persist_telemetry(Path::new(store_dir))?;
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(Path::new)
        .ok_or_else(|| metamess::core::Error::invalid("stats needs a store directory"))?;
    let path = metamess::telemetry_io::telemetry_path(store_dir);
    if args.iter().any(|a| a == "--reset") {
        metamess::telemetry_io::reset(&path)
            .map_err(|e| metamess::core::Error::io(format!("reset {}", path.display()), e))?;
        println!("telemetry reset ({} removed)", path.display());
        return Ok(());
    }
    // Persisted history + live registry + ledger-derived gauges, assembled
    // by the same code path `metamess serve` uses for `GET /metrics` — the
    // two expositions are identical by construction.
    let snap = metamess::server::store_snapshot(store_dir);
    if snap.is_empty() {
        println!(
            "no telemetry recorded for {} yet (run wrangle or search first)",
            store_dir.display()
        );
        return Ok(());
    }
    if args.iter().any(|a| a == "--prometheus") {
        print!("{}", snap.render_prometheus());
    } else if args.iter().any(|a| a == "--json") {
        println!("{}", snap.render_json());
    } else {
        print!("{}", snap.render_table());
    }
    Ok(())
}

fn cmd_summary(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .ok_or_else(|| metamess::core::Error::invalid("summary needs a store directory"))?;
    let path = args
        .get(1)
        .ok_or_else(|| metamess::core::Error::invalid("summary needs a dataset path"))?;
    let engine = open_engine(Path::new(store_dir), ShardSpec::default())?;
    let id = metamess::core::DatasetId::from_path(path);
    let d = engine
        .dataset(id)
        .ok_or_else(|| metamess::core::Error::not_found("dataset", path.clone()))?;
    print!("{}", render_summary(d));
    Ok(())
}

fn cmd_browse(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .ok_or_else(|| metamess::core::Error::invalid("browse needs a store directory"))?;
    let (catalog_dir, vocab_path) = store_paths(Path::new(store_dir));
    let store = DurableCatalog::open(&catalog_dir, StoreOptions::default())?;
    let vocab = if vocab_path.exists() {
        Vocabulary::load(&vocab_path)?
    } else {
        Vocabulary::observatory_default()
    };
    for tree in metamess::search::browse_all(store.catalog(), &vocab) {
        print!("{}", tree.render());
        println!();
    }
    Ok(())
}

fn cmd_fsck(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(Path::new)
        .ok_or_else(|| metamess::core::Error::invalid("fsck needs a store directory"))?;
    let repair = args.iter().any(|a| a == "--repair");
    let json = args.iter().any(|a| a == "--json");
    let report = metamess::fsck::run_fsck(store_dir, repair)?;
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report)
                .map_err(|e| metamess::core::Error::invalid(format!("unencodable report: {e}")))?
        );
    } else {
        print!("{}", metamess::fsck::render_report(&report));
    }
    if report.error_count() > 0 && !report.fully_repaired() {
        return Err(metamess::core::Error::corrupt(format!(
            "fsck found {} unrepaired error(s) in {}",
            report.error_count(),
            store_dir.display()
        )));
    }
    Ok(())
}

/// `metamess shardd <store> --shard-id K/N` — host one shard of an
/// N-shard layout as a lean daemon speaking the binary shard protocol.
fn cmd_shardd(args: &[String]) -> Result<(), metamess::core::Error> {
    use std::io::Write as _;
    let store_dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(Path::new)
        .ok_or_else(|| metamess::core::Error::invalid("shardd needs a store directory"))?;
    let spec_arg = parse_flag(args, "--shard-id")
        .ok_or_else(|| metamess::core::Error::invalid("shardd needs --shard-id K/N"))?;
    let (shard_id, shard_count) = spec_arg
        .split_once('/')
        .and_then(|(k, n)| Some((k.parse::<usize>().ok()?, n.parse::<usize>().ok()?)))
        .filter(|(k, n)| *n >= 1 && *n <= MAX_SHARDS && k < n)
        .ok_or_else(|| {
            metamess::core::Error::invalid(format!(
                "bad --shard-id {spec_arg:?} (expected K/N with K < N <= {MAX_SHARDS})"
            ))
        })?;
    let partitioner = match parse_flag(args, "--partition") {
        Some(p) => Partitioner::parse(&p).ok_or_else(|| {
            metamess::core::Error::invalid(format!(
                "bad --partition {p:?} (expected hash, spatial or temporal)"
            ))
        })?,
        None => Partitioner::Hash,
    };
    let listen = parse_flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".to_string());

    let (catalog_dir, vocab_path) = store_paths(store_dir);
    let store = DurableCatalog::open(&catalog_dir, StoreOptions::default())?;
    let vocab = if vocab_path.exists() {
        Vocabulary::load(&vocab_path)?
    } else {
        Vocabulary::observatory_default()
    };
    let host = metamess::remote::ShardHost::build(
        store.catalog(),
        vocab,
        ShardSpec::new(shard_count, partitioner),
        shard_id,
    )?;
    let generation = host.generation();
    let hosted = host.len();
    drop(store);

    let daemon = metamess::remote::Shardd::spawn(std::sync::Arc::new(host), &listen)?;
    let shutdown = metamess::server::ShutdownHandle::new();
    shutdown.install_signal_handlers();
    // Flushed before blocking so wrappers can scrape the resolved port.
    println!(
        "shardd listening on {} (shard {shard_id}/{shard_count}, {hosted} dataset(s), \
         generation {generation}; ctrl-c to stop)",
        daemon.local_addr()
    );
    let _ = std::io::stdout().flush();
    while !shutdown.is_shutdown() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    daemon.shutdown();
    println!("shardd stopped");
    persist_telemetry(store_dir)?;
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), metamess::core::Error> {
    let store_dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .ok_or_else(|| metamess::core::Error::invalid("serve needs a store directory"))?;
    let mut config = metamess::server::ServerConfig::default();
    if let Some(addr) = parse_flag(args, "--addr") {
        config.addr = addr;
    }
    if let Some(w) = parse_flag(args, "--workers") {
        config.workers = w
            .parse::<usize>()
            .ok()
            .filter(|w| *w > 0)
            .map(metamess::server::clamp_workers)
            .ok_or_else(|| metamess::core::Error::invalid("bad --workers"))?;
    }
    if let Some(q) = parse_flag(args, "--queue-depth") {
        config.queue_depth = q
            .parse()
            .map(metamess::server::clamp_queue_depth)
            .map_err(|_| metamess::core::Error::invalid("bad --queue-depth"))?;
    }
    if let Some(g) = parse_flag(args, "--drain-grace-ms") {
        config.drain_grace = g
            .parse::<u64>()
            .map(std::time::Duration::from_millis)
            .map_err(|_| metamess::core::Error::invalid("bad --drain-grace-ms"))?;
    }
    if let Some(s) = parse_flag(args, "--slow-ms") {
        config.slow_ms =
            s.parse::<u64>().map_err(|_| metamess::core::Error::invalid("bad --slow-ms"))?;
    }
    if let Some(r) = parse_flag(args, "--trace-sample-rate") {
        // clamped to 0.0..=1.0 by Server::bind
        config.trace_sample_rate = r
            .parse::<f64>()
            .map_err(|_| metamess::core::Error::invalid("bad --trace-sample-rate"))?;
    }
    let spec = parse_shard_flags(args)?;

    let mut state = metamess::server::ServeState::open_sharded(&store_dir, spec)?;
    if let Some(remote) = parse_flag(args, "--remote") {
        let addrs = parse_remote_addrs(&remote)?;
        let set = metamess::remote::RemoteShardSet::connect(&addrs, parse_remote_options(args)?)?;
        println!(
            "remote fleet connected: {} shard(s), partition {}, generation {}",
            addrs.len(),
            set.partitioner(),
            set.generation()
        );
        state.set_remote(std::sync::Arc::new(set));
    }
    let state = std::sync::Arc::new(state);
    let epoch = state.epoch();
    let server = metamess::server::Server::bind(state, config)?;
    server.shutdown_handle().install_signal_handlers();
    // Flushed before blocking so wrappers (tests, scripts) can scrape the
    // resolved port from the line.
    println!(
        "listening on http://{} ({} datasets, generation {})",
        server.local_addr()?,
        epoch.datasets,
        epoch.generation
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = server.run()?;
    println!(
        "served {} request(s), shed {}, dropped {}, hot-reloaded {} time(s)",
        summary.served, summary.shed, summary.dropped, summary.reloads
    );
    persist_telemetry(&store_dir)?;
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), metamess::core::Error> {
    use metamess::telemetry::trace;
    let store_dir = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .map(Path::new)
        .ok_or_else(|| metamess::core::Error::invalid("trace needs a store directory"))?;
    let json = args.iter().any(|a| a == "--json");
    let slow = args.iter().any(|a| a == "--slow");
    let path = trace::traces_path(store_dir);
    let Some((recent, slow_log)) = trace::load_persisted_traces(&path) else {
        println!("no traces recorded for {} yet (run search or serve first)", store_dir.display());
        return Ok(());
    };
    let picked: Vec<trace::OwnedTrace> = if let Some(id) = parse_flag(args, "--id") {
        let want = trace::parse_trace_id(&id)
            .map(trace::trace_id_hex)
            .ok_or_else(|| metamess::core::Error::invalid(format!("bad --id {id:?}")))?;
        let found = recent
            .into_iter()
            .chain(slow_log)
            .find(|t| t.trace_id == want)
            .ok_or_else(|| metamess::core::Error::not_found("trace", want))?;
        vec![found]
    } else if slow {
        slow_log
    } else {
        recent
    };
    if json {
        println!("{}", trace::render_traces_json(&picked));
        return Ok(());
    }
    if picked.is_empty() {
        println!("no {} traces in {}", if slow { "slow" } else { "recent" }, path.display());
        return Ok(());
    }
    for t in &picked {
        print!("{}", t.render_tree());
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), metamess::core::Error> {
    let dir = args
        .first()
        .ok_or_else(|| metamess::core::Error::invalid("validate needs an archive directory"))?;
    let mut ctx = PipelineContext::new(
        ArchiveInput::Dir(PathBuf::from(dir)),
        Vocabulary::observatory_default(),
    );
    ctx.harvest.scan.exclude.push(".metamess".into());
    Pipeline::standard().run(&mut ctx)?;
    if ctx.findings.is_empty() {
        println!("no findings");
        return Ok(());
    }
    for f in &ctx.findings {
        let sev = match f.severity {
            Severity::Error => "ERROR",
            Severity::Warning => "warn ",
        };
        println!("[{sev}] {}: {}", f.rule, f.message);
    }
    let errors = ctx.findings.iter().filter(|f| f.severity == Severity::Error).count();
    println!("{} findings ({} errors)", ctx.findings.len(), errors);
    Ok(())
}
