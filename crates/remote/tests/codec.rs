//! Property tests for the shard-protocol frame codec: every byte
//! sequence — well-formed, truncated, bit-flipped, version-skewed, or
//! pure garbage — maps to either a frame or a **typed** error, never a
//! panic and never a silent mis-decode.

use metamess_core::error::Error;
use metamess_remote::frame::{self, Frame, FrameKind, HEADER_LEN, PROTO_VERSION};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::Hello),
        Just(FrameKind::HelloOk),
        Just(FrameKind::Probe),
        Just(FrameKind::ProbeOk),
        Just(FrameKind::Score),
        Just(FrameKind::ScoreOk),
        Just(FrameKind::Error),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (arb_kind(), any::<u128>(), prop::collection::vec(any::<u8>(), 0..512))
        .prop_map(|(kind, trace_id, payload)| Frame { kind, trace_id, payload })
}

proptest! {
    /// Encode → decode is the identity, via both the slice decoder and
    /// the stream reader (which must also report the clean EOF after).
    #[test]
    fn any_frame_roundtrips(f in arb_frame()) {
        let bytes = f.encode();
        prop_assert_eq!(bytes.len(), HEADER_LEN + f.payload.len());
        prop_assert_eq!(frame::decode(&bytes).unwrap(), f.clone());
        let mut cursor = std::io::Cursor::new(&bytes);
        prop_assert_eq!(frame::read_frame(&mut cursor).unwrap(), Some(f));
        prop_assert_eq!(frame::read_frame(&mut cursor).unwrap(), None);
    }

    /// Cutting an encoded frame anywhere short of its full length is a
    /// typed corruption error from the slice decoder, and a typed error
    /// (corrupt header or I/O on the payload read) from the stream
    /// reader. Neither panics, neither returns a frame.
    #[test]
    fn truncation_at_any_cut_is_typed(f in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = f.encode();
        let cut = cut.index(bytes.len()); // 0..len, always short of a full frame
        prop_assert!(matches!(frame::decode(&bytes[..cut]), Err(Error::Corrupt { .. })));
        let mut cursor = std::io::Cursor::new(&bytes[..cut]);
        match frame::read_frame(&mut cursor) {
            Ok(None) => prop_assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
            Err(Error::Corrupt { .. }) | Err(Error::Io { .. }) => {}
            other => prop_assert!(false, "expected typed error, got {:?}", other),
        }
    }

    /// Flipping any single bit of the payload fails the CRC check.
    #[test]
    fn payload_bit_flips_fail_the_crc(
        f in arb_frame(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        prop_assume!(!f.payload.is_empty());
        let mut bytes = f.encode();
        let ix = HEADER_LEN + byte.index(f.payload.len());
        bytes[ix] ^= 1 << bit;
        prop_assert!(matches!(frame::decode(&bytes), Err(Error::Corrupt { .. })));
    }

    /// Any version other than ours is a clean `Invalid` error naming the
    /// version — old coordinators against new shardds fail loudly, not
    /// weirdly.
    #[test]
    fn any_other_version_is_invalid(f in arb_frame(), version in any::<u16>()) {
        prop_assume!(version != PROTO_VERSION);
        let mut bytes = f.encode();
        bytes[8..10].copy_from_slice(&version.to_le_bytes());
        match frame::decode(&bytes) {
            Err(Error::Invalid { message }) => {
                prop_assert!(message.contains(&version.to_string()), "{}", message);
            }
            other => prop_assert!(false, "expected Invalid, got {:?}", other),
        }
    }

    /// Arbitrary garbage never panics the decoder or the stream reader.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = frame::decode(&bytes);
        let mut cursor = std::io::Cursor::new(&bytes);
        let _ = frame::read_frame(&mut cursor);
    }
}
