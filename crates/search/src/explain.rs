//! Per-query phase breakdown (`--explain`) and the search crate's
//! telemetry handles.
//!
//! Every query passes through the same phases — plan (vocabulary
//! expansion), probe (index candidate generation), score, merge — and the
//! engine can report where the time went, either aggregated into the
//! global registry histograms or per-query via [`SearchExplain`]. Phase
//! timing is armed when telemetry is enabled *or* an explain is requested,
//! so `--explain` works even with `METAMESS_TELEMETRY=0`.

use metamess_telemetry::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Where one query's time went, phase by phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct SearchExplain {
    /// Served straight from the result cache (no phases ran).
    pub cache_hit: bool,
    /// Plan construction: vocabulary expansion and term normalization.
    pub plan_micros: u64,
    /// Candidate generation: R-tree, interval index, and term postings.
    pub probe_micros: u64,
    /// Exact scoring of every candidate.
    pub score_micros: u64,
    /// Top-k pool merge and final ordering.
    pub merge_micros: u64,
    /// End-to-end, including the cache lookup.
    pub total_micros: u64,
    /// Index keys the plan expanded the query's terms into.
    pub expanded_keys: usize,
    /// Candidates the probe phase selected for scoring.
    pub candidates: usize,
    /// The probe fell back to scoring the whole catalog.
    pub full_scan: bool,
    /// Scoring threads actually used.
    pub workers: usize,
    /// Hits returned.
    pub results: usize,
    /// Shards in the engine's layout.
    pub shards: usize,
    /// Shards that contributed candidates and were scored.
    pub shards_visited: usize,
    /// Non-empty shards skipped entirely (no candidates after the probe).
    pub shards_pruned: usize,
    /// Index walks skipped because a shard bound excluded the query window.
    pub shard_bound_skips: usize,
    /// Datasets living in pruned shards — the probe work pruning avoided.
    pub pruned_datasets: usize,
}

impl SearchExplain {
    /// Renders the breakdown as an aligned table for the CLI.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.cache_hit {
            out.push_str("phase breakdown (cache hit):\n");
            out.push_str(&format!(
                "  total {:>8} µs  ({} hits served from result cache)\n",
                self.total_micros, self.results
            ));
            return out;
        }
        out.push_str("phase breakdown (cache miss):\n");
        out.push_str(&format!(
            "  plan  {:>8} µs  ({} index keys)\n",
            self.plan_micros, self.expanded_keys
        ));
        let mode = if self.full_scan { "full scan" } else { "indexed" };
        out.push_str(&format!(
            "  probe {:>8} µs  ({} candidates, {mode})\n",
            self.probe_micros, self.candidates
        ));
        if self.shards > 1 {
            out.push_str(&format!(
                "  shards {:>7}    ({} visited, {} pruned, {} datasets skipped)\n",
                self.shards, self.shards_visited, self.shards_pruned, self.pruned_datasets
            ));
        }
        out.push_str(&format!(
            "  score {:>8} µs  ({} worker{})\n",
            self.score_micros,
            self.workers,
            if self.workers == 1 { "" } else { "s" }
        ));
        out.push_str(&format!("  merge {:>8} µs\n", self.merge_micros));
        out.push_str(&format!("  total {:>8} µs  ({} hits)\n", self.total_micros, self.results));
        out
    }
}

pub(crate) struct SearchMetrics {
    /// `metamess_search_queries_total` — cached-path searches served.
    pub queries: Arc<Counter>,
    /// `metamess_search_cache_hits_total` / `_misses_total` — result-cache
    /// outcome of cached-path searches.
    pub cache_hits: Arc<Counter>,
    pub cache_misses: Arc<Counter>,
    /// `metamess_search_full_scans_total` — probes that fell back to
    /// scoring the whole catalog.
    pub full_scans: Arc<Counter>,
    /// Per-phase latency histograms.
    pub plan_micros: Arc<Histogram>,
    pub probe_micros: Arc<Histogram>,
    pub score_micros: Arc<Histogram>,
    pub merge_micros: Arc<Histogram>,
    /// `metamess_search_query_micros` — end-to-end cached-path latency.
    pub query_micros: Arc<Histogram>,
    /// `metamess_search_shard_probe_micros` — one sample per shard probed.
    pub shard_probe_micros: Arc<Histogram>,
    /// `metamess_search_shard_score_micros` — one sample per scoring unit.
    pub shard_score_micros: Arc<Histogram>,
    /// `metamess_search_shards_visited_total` / `_pruned_total` — shards
    /// scored vs. skipped with zero candidates.
    pub shards_visited: Arc<Counter>,
    pub shards_pruned: Arc<Counter>,
}

pub(crate) fn search_metrics() -> &'static SearchMetrics {
    static METRICS: OnceLock<SearchMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metamess_telemetry::global();
        SearchMetrics {
            queries: r.counter("metamess_search_queries_total"),
            cache_hits: r.counter("metamess_search_cache_hits_total"),
            cache_misses: r.counter("metamess_search_cache_misses_total"),
            full_scans: r.counter("metamess_search_full_scans_total"),
            plan_micros: r.histogram("metamess_search_plan_micros"),
            probe_micros: r.histogram("metamess_search_probe_micros"),
            score_micros: r.histogram("metamess_search_score_micros"),
            merge_micros: r.histogram("metamess_search_merge_micros"),
            query_micros: r.histogram("metamess_search_query_micros"),
            shard_probe_micros: r.histogram("metamess_search_shard_probe_micros"),
            shard_score_micros: r.histogram("metamess_search_shard_score_micros"),
            shards_visited: r.counter("metamess_search_shards_visited_total"),
            shards_pruned: r.counter("metamess_search_shards_pruned_total"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_miss_shows_every_phase() {
        let ex = SearchExplain {
            plan_micros: 12,
            probe_micros: 340,
            score_micros: 880,
            merge_micros: 5,
            total_micros: 1240,
            expanded_keys: 7,
            candidates: 150,
            workers: 4,
            results: 10,
            ..SearchExplain::default()
        };
        let text = ex.render();
        for needle in ["plan", "probe", "score", "merge", "total", "150 candidates", "4 workers"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert!(text.contains("indexed"));
    }

    #[test]
    fn render_hit_is_single_line_total() {
        let ex = SearchExplain {
            cache_hit: true,
            total_micros: 3,
            results: 5,
            ..SearchExplain::default()
        };
        let text = ex.render();
        assert!(text.contains("cache hit"));
        assert!(text.contains("served from result cache"));
        assert!(!text.contains("probe"));
    }

    #[test]
    fn render_shows_shard_line_only_when_sharded() {
        let single = SearchExplain { shards: 1, workers: 1, ..SearchExplain::default() };
        assert!(!single.render().contains("shards"), "single-shard output stays unchanged");
        let sharded = SearchExplain {
            shards: 4,
            shards_visited: 1,
            shards_pruned: 3,
            pruned_datasets: 120,
            workers: 1,
            ..SearchExplain::default()
        };
        let text = sharded.render();
        assert!(text.contains("1 visited"), "{text}");
        assert!(text.contains("3 pruned"), "{text}");
        assert!(text.contains("120 datasets skipped"), "{text}");
    }

    #[test]
    fn render_full_scan_labelled() {
        let ex = SearchExplain { full_scan: true, workers: 1, ..SearchExplain::default() };
        assert!(ex.render().contains("full scan"));
        assert!(ex.render().contains("1 worker"));
    }
}
