//! Turning discovered clusters into Refine `core/mass-edit` rules —
//! the export side of the poster's Google-Refine round trip.

use crate::cluster::Cluster;
use metamess_transform::Operation;
use serde::{Deserialize, Serialize};

/// A proposed transformation rule awaiting curator review.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleProposal {
    /// The executable operation (always a `core/mass-edit`).
    pub operation: Operation,
    /// Canonical value the variants map to.
    pub to: String,
    /// Variant values being folded.
    pub from: Vec<String>,
    /// Discovery method (e.g. `fingerprint`, `knn-lev2`).
    pub method: String,
    /// Confidence in `[0, 1]`; see [`confidence`].
    pub confidence: f64,
    /// Rows affected if applied.
    pub support: u64,
}

/// Confidence of a cluster-derived rule.
///
/// Blends two signals, both in `[0, 1]`:
/// * **cohesion** — how similar the members are;
/// * **dominance** — how much more frequent the canonical member is than the
///   variants (a 100:1 split is a typo; a 50:50 split might be two real
///   variables).
pub fn confidence(cluster: &Cluster) -> f64 {
    let total = cluster.total_count().max(1) as f64;
    let canonical_count = cluster.members[0].count as f64;
    let dominance = canonical_count / total;
    0.6 * cluster.cohesion + 0.4 * dominance
}

/// Converts one cluster into a rule proposal for `column`.
pub fn cluster_to_rule(cluster: &Cluster, column: &str) -> RuleProposal {
    let to = cluster.canonical().to_string();
    let from: Vec<String> = cluster.variants().map(|m| m.value.clone()).collect();
    let support = cluster.variants().map(|m| m.count).sum();
    RuleProposal {
        operation: Operation::mass_edit(column, from.clone(), &to),
        to,
        from,
        method: cluster.method.clone(),
        confidence: confidence(cluster),
        support,
    }
}

/// Converts clusters into proposals, highest confidence first.
pub fn clusters_to_rules(clusters: &[Cluster], column: &str) -> Vec<RuleProposal> {
    let mut out: Vec<RuleProposal> = clusters.iter().map(|c| cluster_to_rule(c, column)).collect();
    out.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.to.cmp(&b.to))
    });
    out
}

/// Extracts the operations from accepted proposals, ready for
/// [`metamess_transform::apply_operations`] or JSON export.
pub fn accepted_operations(proposals: &[RuleProposal], min_confidence: f64) -> Vec<Operation> {
    proposals
        .iter()
        .filter(|p| p.confidence >= min_confidence)
        .map(|p| p.operation.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{key_collision_clusters, ValueCount};
    use crate::keys::KeyMethod;
    use metamess_core::value::Record;
    use metamess_transform::{apply_operations, operations_to_json, parse_operations};

    fn clusters() -> Vec<Cluster> {
        let values = vec![
            ValueCount::new("air_temp", 40),
            ValueCount::new("airTemp", 3),
            ValueCount::new("wind speed", 10),
            ValueCount::new("Wind_Speed", 9),
        ];
        key_collision_clusters(&values, KeyMethod::IdentifierFingerprint)
    }

    #[test]
    fn rule_shape() {
        let cs = clusters();
        let rules = clusters_to_rules(&cs, "field");
        assert_eq!(rules.len(), 2);
        let air = rules.iter().find(|r| r.to == "air_temp").unwrap();
        assert_eq!(air.from, vec!["airTemp".to_string()]);
        assert_eq!(air.support, 3);
        match &air.operation {
            Operation::MassEdit { column_name, edits, .. } => {
                assert_eq!(column_name, "field");
                assert_eq!(edits[0].to, "air_temp");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn confidence_favors_dominant_canonical() {
        let cs = clusters();
        let rules = clusters_to_rules(&cs, "field");
        let air = rules.iter().find(|r| r.to == "air_temp").unwrap();
        let wind = rules.iter().find(|r| r.to == "wind speed").unwrap();
        // air_temp dominates 40:3; wind speed is an even 10:9 split.
        assert!(air.confidence > wind.confidence);
        // and the list is sorted accordingly
        assert_eq!(rules[0].to, "air_temp");
    }

    #[test]
    fn confidence_bounds() {
        for c in clusters() {
            let conf = confidence(&c);
            assert!((0.0..=1.0).contains(&conf), "{conf}");
        }
    }

    #[test]
    fn accept_threshold_filters() {
        let cs = clusters();
        let rules = clusters_to_rules(&cs, "field");
        let all = accepted_operations(&rules, 0.0);
        assert_eq!(all.len(), 2);
        let none = accepted_operations(&rules, 1.01);
        assert!(none.is_empty());
    }

    #[test]
    fn exported_rules_round_trip_and_apply() {
        let cs = clusters();
        let rules = clusters_to_rules(&cs, "field");
        let ops = accepted_operations(&rules, 0.0);
        // Export to Refine JSON and back.
        let json = operations_to_json(&ops);
        let back = parse_operations(&json).unwrap();
        assert_eq!(back, ops);
        // Apply to a table.
        let mut table: Vec<Record> = ["airTemp", "air_temp", "Wind_Speed"]
            .iter()
            .map(|f| {
                let mut r = Record::new();
                r.set("field", *f);
                r
            })
            .collect();
        let report = apply_operations(&mut table, &back).unwrap();
        assert_eq!(report.total_changed(), 2);
        assert_eq!(table[0].get("field").unwrap().as_text(), Some("air_temp"));
        assert_eq!(table[2].get("field").unwrap().as_text(), Some("wind speed"));
    }
}
