//! Remote shard protocol: run each catalog shard as its own `metamess
//! shardd` process and scatter-gather queries across the fleet —
//! bit-identical to in-process sharding at any layout.
//!
//! # Pieces
//!
//! - [`frame`]: the length-prefixed, versioned, CRC-checked binary frame
//!   codec both sides speak.
//! - [`wire`]: the payload documents inside frames (hello / probe /
//!   score), mirroring the in-process probe→plan→score phases.
//! - [`ShardHost`] / [`Shardd`]: the server side — a pure frame handler
//!   over one `ShardEngine`, and the TCP listener hosting it.
//! - [`RemoteShardSet`]: the coordinator — deadline-bounded scatter,
//!   budgeted retries with deterministic backoff jitter, pre-dial
//!   bound pruning, per-shard circuits, and a partial policy
//!   ([`PartialPolicy`]) deciding whether a dead shard fails the query
//!   or degrades it.
//! - [`FaultTransport`]: deterministic fault injection for tests.
//!
//! # Why bit-identity holds
//!
//! The shardd builds its shard with the *same* partition assignment the
//! in-process `ShardedEngine` uses, probes and scores with the same
//! `fanout` primitives, and the coordinator replays the same global
//! admission over the gathered summaries. Scores cross the wire through
//! `serde_json` built with `float_roundtrip`, so an `f64` deserializes
//! to the exact bits the shard computed; the merge order
//! (score-descending, path-ascending) is a strict total order, so the
//! merged top-`limit` equals the single-process answer exactly.

#![warn(missing_docs)]

pub mod coordinator;
pub mod fault;
pub mod frame;
pub mod metrics;
pub mod shardd;
pub mod transport;
pub mod wire;

pub use coordinator::{
    CircuitState, PartialPolicy, RemoteOptions, RemoteSearch, RemoteShardSet, ShardHealth,
};
pub use fault::{FaultAction, FaultTransport};
pub use frame::{Frame, FrameKind, PROTO_VERSION};
pub use metrics::{remote_metrics, RemoteMetrics};
pub use shardd::{ShardHost, Shardd};
pub use transport::{TcpTransport, Transport, TransportError};

#[cfg(test)]
mod send_sync {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_types_cross_threads() {
        assert_send_sync::<RemoteShardSet>();
        assert_send_sync::<ShardHost>();
        assert_send_sync::<FaultTransport>();
        assert_send_sync::<TcpTransport>();
    }
}
