//! Lightweight duration spans.
//!
//! A span is a scope guard: entering takes a timestamp, dropping records
//! the elapsed microseconds into the global histogram
//! `metamess_span_micros{span="<name>"}` and mirrors the duration to
//! stderr at debug level (entry is mirrored at trace level). When
//! telemetry is disabled, [`Span::enter`] is a single flag check — no
//! clock read, no registry lookup, no allocation.

use crate::log::{log_enabled, log_write, Level};
use crate::metric::Histogram;
use crate::registry::labeled;
use std::sync::Arc;
use std::time::Instant;

/// A live span; records its duration when dropped.
#[must_use = "a span records on drop — bind it with `let _span = span!(..)`"]
pub struct Span {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Enters a span. No-op (single branch) when telemetry is disabled.
    pub fn enter(name: &'static str) -> Span {
        if !crate::enabled() {
            return Span { inner: None };
        }
        if log_enabled(Level::Trace) {
            log_write(Level::Trace, "span", &format!("enter {name}"));
        }
        let hist = crate::global().histogram(&labeled("metamess_span_micros", "span", name));
        Span { inner: Some(SpanInner { name, hist, start: Instant::now() }) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(i) = self.inner.take() {
            // A span unwound by a panic measures "work + unwind", which
            // would pollute the phase latency histogram; record the event
            // under a dedicated counter instead.
            if std::thread::panicking() {
                crate::global()
                    .counter(&labeled("metamess_span_panicked_total", "span", i.name))
                    .inc();
                return;
            }
            let micros = i.start.elapsed().as_micros() as u64;
            i.hist.record(micros);
            crate::trace::record_span(i.name, micros, None);
            if log_enabled(Level::Debug) {
                log_write(Level::Debug, "span", &format!("{} took {micros}µs", i.name));
            }
        }
    }
}

/// Opens a [`Span`] that records its duration when it goes out of scope:
///
/// ```
/// let _span = metamess_telemetry::span!("search.score");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
}

/// A conditionally armed phase timer: when `on` is false, construction and
/// reading are branch-only — no clock syscall. The instrumented hot paths
/// use this so the disabled-telemetry cost is exactly one flag check.
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing when `on`, otherwise stays inert.
    pub fn start_if(on: bool) -> Stopwatch {
        Stopwatch(on.then(Instant::now))
    }

    /// Elapsed microseconds (0 when inert).
    pub fn micros(&self) -> u64 {
        self.0.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0)
    }

    /// True when armed.
    pub fn armed(&self) -> bool {
        self.0.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::ENABLED_LOCK;

    #[test]
    fn span_records_into_global_histogram() {
        let _guard = ENABLED_LOCK.lock();
        crate::global().set_enabled(true);
        let name = labeled("metamess_span_micros", "span", "test.span");
        let before = crate::global().histogram(&name).count();
        {
            let _span = Span::enter("test.span");
        }
        assert_eq!(crate::global().histogram(&name).count(), before + 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = ENABLED_LOCK.lock();
        crate::global().set_enabled(true);
        let name = labeled("metamess_span_micros", "span", "test.disabled");
        let before = crate::global().histogram(&name).count();
        crate::global().set_enabled(false);
        {
            let _span = Span::enter("test.disabled");
        }
        crate::global().set_enabled(true);
        assert_eq!(crate::global().histogram(&name).count(), before);
    }

    #[test]
    fn panicking_span_records_counter_not_histogram() {
        let _guard = ENABLED_LOCK.lock();
        crate::global().set_enabled(true);
        let hist = labeled("metamess_span_micros", "span", "test.panic");
        let ctr = labeled("metamess_span_panicked_total", "span", "test.panic");
        let hist_before = crate::global().histogram(&hist).count();
        let ctr_before = crate::global().counter(&ctr).get();
        let unwound = std::panic::catch_unwind(|| {
            let _span = Span::enter("test.panic");
            panic!("handler blew up");
        });
        assert!(unwound.is_err());
        assert_eq!(
            crate::global().histogram(&hist).count(),
            hist_before,
            "unwind time must not enter the latency histogram"
        );
        assert_eq!(crate::global().counter(&ctr).get(), ctr_before + 1);
    }

    #[test]
    fn stopwatch_inert_when_off() {
        let off = Stopwatch::start_if(false);
        assert!(!off.armed());
        assert_eq!(off.micros(), 0);
        let on = Stopwatch::start_if(true);
        assert!(on.armed());
    }
}
