//! The search engine: a thin scatter-gather coordinator over catalog
//! shards, plus the generation-stamped result cache.
//!
//! The catalog is partitioned into `1..=MAX_SHARDS` shards at build time
//! (see [`ShardSpec`]); each [`ShardEngine`](crate::ShardEngine) owns its
//! own R-tree, interval index, and term postings, together with pruning
//! bounds (the union of member bboxes / time intervals). A query is probed
//! against every shard, but a shard whose bound excludes the query window
//! skips the index walk, and a shard left with no candidates is never
//! scored at all — on spatially or temporally partitioned catalogs a
//! selective query touches a fraction of the datasets.
//!
//! # Determinism
//!
//! Results are **bit-identical** across shard counts, partitioners, and
//! worker counts:
//!
//! * every per-dataset index decision (window membership, term postings)
//!   depends only on the dataset itself, so the union of per-shard
//!   candidate sets equals the unsharded candidate set;
//! * per-shard nearest-neighbour lists are merged under the global total
//!   order `(distance, global index)` before admission — exactly the order
//!   the unsharded R-tree emits (see `shard.rs`);
//! * the full-scan fallback fires on the *cross-shard* candidate total,
//!   the same number the unsharded probe would count;
//! * scoring is pure and the rank order `(score desc, path asc)` is a
//!   strict total order, so top-k selection and merge are independent
//!   of how work units were scheduled across the crossbeam worker pool.
//!
//! # The allocation-free scoring pass
//!
//! Candidates are scored by the allocation-free fast scorer
//! (`ShardEngine::score_fast`, reading build-time interned `VarKey`s)
//! into light `(score, shard, local)` tuples held in a reusable
//! per-thread buffer; only the final `≤ limit` survivors are materialized
//! into full [`SearchHit`]s (strings + breakdown) by the exact scorer.
//! The fast total is bit-identical to the exact total (debug-asserted at
//! materialization), so ranking — and therefore the result list — is
//! unchanged.
//!
//! # Result caching
//!
//! Repeated queries against an unchanged catalog are served from a
//! generation-stamped LRU [`ResultCache`]: entries carry the catalog
//! generation captured at build time, so an engine built over a
//! republished (changed) catalog never returns stale hits even when the
//! cache is shared across rebuilds. Cache hits are allocation-free — the
//! stored `Arc<[SearchHit]>` is cloned by reference count. Use
//! [`ShardedEngine::search_uncached`] to bypass the cache (the benches do,
//! for cold-path measurements). The shard layout is deliberately *not*
//! part of the cache key: results are bit-identical across layouts, so a
//! rebuild with a different `--shards` can reuse a warm shared cache.

use crate::cache::{CacheStats, ResultCache, DEFAULT_CACHE_CAPACITY};
use crate::explain::{search_metrics, SearchExplain};
use crate::plan::QueryPlan;
use crate::query::Query;
use crate::score::ScoreBreakdown;
use crate::shard::{ShardEngine, ShardProbe, ShardSpec};
use crate::topk::{LightHit, LightTopK};
use metamess_core::catalog::Catalog;
use metamess_core::feature::DatasetFeature;
use metamess_core::id::DatasetId;
use metamess_telemetry::{event, trace, Level, Stopwatch};
use metamess_vocab::Vocabulary;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Reusable per-thread scoring buffer. The light-candidate heap survives
/// across searches on the same thread, so a steady-state request on a
/// server worker allocates nothing on the scoring path.
struct SearchScratch {
    lights: Vec<LightHit>,
}

thread_local! {
    static SCRATCH: RefCell<SearchScratch> =
        RefCell::new(SearchScratch { lights: Vec::new() });
}

/// One ranked search result.
///
/// Serializes losslessly (`serde_json` is built with `float_roundtrip`),
/// so a hit that crosses the remote shard protocol deserializes to the
/// bit-identical score the shard computed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchHit {
    /// Dataset id.
    pub id: DatasetId,
    /// Archive-relative path.
    pub path: String,
    /// Dataset title.
    pub title: String,
    /// Combined score in `[0, 1]`.
    pub score: f64,
    /// Per-facet explanation.
    pub breakdown: ScoreBreakdown,
}

/// Partitions a catalog snapshot into per-shard member lists (`(global
/// index, feature)` pairs in ascending global order) according to `spec`.
/// Shared by [`ShardedEngine::build_sharded`] and the remote single-shard
/// builder ([`crate::fanout::build_shard`]), so a `shardd` process and the
/// in-process coordinator agree on which datasets shard `k` of `n` holds.
pub(crate) fn partition_members(
    catalog: &Catalog,
    spec: ShardSpec,
) -> Vec<Vec<(usize, DatasetFeature)>> {
    let datasets: Vec<DatasetFeature> = catalog.iter().cloned().collect();
    let assignment = spec.partitioner().assign(&datasets, spec.count());
    let mut members: Vec<Vec<(usize, DatasetFeature)>> =
        (0..spec.count()).map(|_| Vec::new()).collect();
    for (gix, (d, s)) in datasets.into_iter().zip(assignment).enumerate() {
        members[s].push((gix, d));
    }
    members
}

/// The historical name: a [`ShardedEngine`] with one shard behaves exactly
/// like the original monolithic engine, so every existing call site keeps
/// working through this alias.
pub type SearchEngine = ShardedEngine;

/// The "Data Near Here" search engine: shard coordinator + result cache.
pub struct ShardedEngine {
    vocab: Vocabulary,
    shards: Vec<ShardEngine>,
    spec: ShardSpec,
    /// `DatasetId → (shard, local index)`, for O(1) hit-to-feature lookup.
    by_id: HashMap<DatasetId, (u32, u32)>,
    /// Total datasets across shards.
    total: usize,
    /// Catalog generation captured at build time; stamps cache entries.
    generation: u64,
    cache: Arc<ResultCache>,
    /// Use the indexes for candidate generation (true) or score every
    /// dataset (false) — the ablation switch.
    pub use_indexes: bool,
    /// Worker threads for candidate scoring; 0 or 1 = single-threaded.
    /// Results are identical regardless of worker count.
    pub workers: usize,
}

/// One unit of scoring work: a slice of one shard, either a dense local
/// range (full scan) or an explicit candidate list (indexed probe).
enum UnitWork {
    All(Range<usize>),
    List(Vec<usize>),
}

struct Unit {
    shard: usize,
    work: UnitWork,
}

impl ShardedEngine {
    /// Builds an unsharded (single-shard) engine over a catalog snapshot.
    pub fn build(catalog: &Catalog, vocab: Vocabulary) -> ShardedEngine {
        ShardedEngine::build_sharded(catalog, vocab, ShardSpec::single())
    }

    /// Builds the engine over a catalog snapshot partitioned per `spec`.
    /// The shard count is clamped to `1..=MAX_SHARDS` regardless of how
    /// the spec was produced.
    pub fn build_sharded(catalog: &Catalog, vocab: Vocabulary, spec: ShardSpec) -> ShardedEngine {
        let spec = ShardSpec::new(spec.count(), spec.partitioner());
        let members = partition_members(catalog, spec);
        let total = members.iter().map(Vec::len).sum();
        let shards: Vec<ShardEngine> =
            members.into_iter().map(|m| ShardEngine::build(m, &vocab)).collect();
        let mut by_id: HashMap<DatasetId, (u32, u32)> = HashMap::with_capacity(total);
        for (s, shard) in shards.iter().enumerate() {
            for l in 0..shard.len() {
                by_id.insert(shard.dataset(l).id, (s as u32, l as u32));
            }
        }
        ShardedEngine {
            vocab,
            shards,
            spec,
            by_id,
            total,
            generation: catalog.generation(),
            cache: Arc::new(ResultCache::new(DEFAULT_CACHE_CAPACITY)),
            use_indexes: true,
            workers: 1,
        }
    }

    /// Replaces the result cache with a shared one, so the cache (and its
    /// generation-stamped entries) can outlive engine rebuilds across
    /// publishes.
    pub fn with_shared_cache(mut self, cache: Arc<ResultCache>) -> ShardedEngine {
        self.cache = cache;
        self
    }

    /// Number of indexed datasets.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no datasets are indexed.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The vocabulary the engine expands terms with.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The catalog generation this engine (and its cache entries) was built
    /// against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The shard layout the engine was built with.
    pub fn shard_spec(&self) -> ShardSpec {
        self.spec
    }

    /// Number of shards (always `1..=MAX_SHARDS`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (read-only; for benches and diagnostics).
    pub fn shards(&self) -> &[ShardEngine] {
        &self.shards
    }

    /// The result cache (shared handle).
    pub fn cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// Cumulative cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The dataset behind a hit (for summary rendering). O(1).
    pub fn dataset(&self, id: DatasetId) -> Option<&DatasetFeature> {
        self.by_id.get(&id).map(|&(s, l)| self.shards[s as usize].dataset(l as usize))
    }

    /// Prepares a reusable [`QueryPlan`] for a query (vocabulary expansion,
    /// hierarchy walks and normalization happen once here, not per
    /// candidate).
    pub fn plan(&self, query: &Query) -> QueryPlan {
        QueryPlan::prepare(query, &self.vocab)
    }

    /// Canonical cache key: the serialized query plus every engine toggle
    /// that can change the result set (`workers` and the shard layout
    /// cannot — results are bit-identical across both — so they are not
    /// part of the key).
    fn cache_key(&self, query: &Query) -> String {
        format!("{}|{}", self.use_indexes, serde_json::to_string(query).expect("query serializes"))
    }

    /// Runs a ranked search, returning at most `query.limit` hits, best
    /// first (ties broken by path for determinism). Served from the result
    /// cache when this exact query was answered before against the same
    /// catalog generation; hits share the cached allocation.
    pub fn search(&self, query: &Query) -> Arc<[SearchHit]> {
        self.search_explained(query, None)
    }

    /// Like [`ShardedEngine::search`], additionally reporting where the
    /// time went phase by phase. Phase timing is armed even when telemetry
    /// is globally disabled — the caller asked for it explicitly.
    pub fn search_explain(&self, query: &Query) -> (Arc<[SearchHit]>, SearchExplain) {
        let mut explain = SearchExplain::default();
        let hits = self.search_explained(query, Some(&mut explain));
        (hits, explain)
    }

    fn search_explained(
        &self,
        query: &Query,
        mut explain: Option<&mut SearchExplain>,
    ) -> Arc<[SearchHit]> {
        let on = metamess_telemetry::enabled();
        let total = Stopwatch::start_if(on || explain.is_some());
        let key = self.cache_key(query);
        if let Some(hits) = self.cache.get(&key, self.generation) {
            let total_micros = total.micros();
            if on {
                let m = search_metrics();
                m.queries.inc();
                m.cache_hits.inc();
                m.query_micros
                    .record_with_exemplar(total_micros, trace::current_trace_id().unwrap_or(0));
                // A cache hit is still a trace-worthy request: one span
                // explains the (fast) answer.
                trace::record_span("search.cache_hit", total_micros, None);
            }
            event!(Level::Debug, "search", "cache hit: {} hits in {total_micros}µs", hits.len());
            if let Some(ex) = explain {
                ex.cache_hit = true;
                ex.results = hits.len();
                ex.total_micros = total_micros;
            }
            return hits;
        }
        let hits: Arc<[SearchHit]> =
            self.search_uncached_explained(query, explain.as_deref_mut()).into();
        self.cache.put(key, self.generation, hits.clone());
        let total_micros = total.micros();
        if on {
            let m = search_metrics();
            m.queries.inc();
            m.cache_misses.inc();
            m.query_micros
                .record_with_exemplar(total_micros, trace::current_trace_id().unwrap_or(0));
        }
        event!(Level::Debug, "search", "cache miss: {} hits in {total_micros}µs", hits.len());
        if let Some(ex) = explain {
            ex.total_micros = total_micros;
        }
        hits
    }

    /// Runs a ranked search without consulting or filling the result cache
    /// (cold path; used by benches and the cache property tests).
    pub fn search_uncached(&self, query: &Query) -> Vec<SearchHit> {
        self.search_uncached_explained(query, None)
    }

    fn search_uncached_explained(
        &self,
        query: &Query,
        mut explain: Option<&mut SearchExplain>,
    ) -> Vec<SearchHit> {
        let on = metamess_telemetry::enabled();
        let timer = Stopwatch::start_if(on || explain.is_some());
        let plan = self.plan(query);
        let plan_micros = timer.micros();
        if on {
            search_metrics().plan_micros.record(plan_micros);
            trace::record_span("search.plan", plan_micros, None);
        }
        if let Some(ex) = explain.as_deref_mut() {
            ex.plan_micros = plan_micros;
            ex.expanded_keys = plan.term_keys.iter().map(|keys| keys.len()).sum();
        }
        self.execute_plan(query, &plan, explain)
    }

    /// Runs a ranked search with a pre-built plan (reusable across repeated
    /// executions of the same query shape).
    pub fn search_with_plan(&self, query: &Query, plan: &QueryPlan) -> Vec<SearchHit> {
        self.execute_plan(query, plan, None)
    }

    /// Scatter-gather: probe every shard, merge nearest lists globally,
    /// decide the full-scan fallback on the cross-shard total, then score
    /// the surviving shards' candidates across the worker pool and merge
    /// the per-worker top-k pools deterministically.
    fn execute_plan(
        &self,
        query: &Query,
        plan: &QueryPlan,
        explain: Option<&mut SearchExplain>,
    ) -> Vec<SearchHit> {
        let on = metamess_telemetry::enabled();
        let timed = on || explain.is_some();

        let probe = Stopwatch::start_if(timed);
        let probe_span = trace::enter("search.probe");
        let forced = !self.use_indexes || query.is_empty();
        let mut probes: Vec<ShardProbe> = Vec::new();
        let mut bound_skips = 0usize;
        let mut candidates_total = 0usize;
        if !forced {
            let generous = query.limit.saturating_mul(5).max(50);
            probes.reserve(self.shards.len());
            for (s, shard) in self.shards.iter().enumerate() {
                let sw = Stopwatch::start_if(on);
                let p = shard.probe(query, plan, generous);
                if on {
                    let micros = sw.micros();
                    search_metrics().shard_probe_micros.record(micros);
                    trace::record_span("shard.probe", micros, Some(s as u32));
                }
                probes.push(p);
            }
            if query.spatial.is_some() {
                self.admit_nearest_globally(&mut probes, generous);
            }
            bound_skips = probes.iter().map(|p| p.bound_skips).sum();
            candidates_total = probes.iter().map(|p| p.certain.len()).sum();
        }
        // Similarity ranking: when the candidate pool cannot comfortably
        // fill the requested k, score everything instead. The decision is
        // made on the cross-shard total — the same count the unsharded
        // probe would see.
        let full_scan = forced || candidates_total < query.limit.saturating_mul(3);
        drop(probe_span);
        let probe_micros = probe.micros();

        let (units, visited, pruned, pruned_datasets) = self.plan_units(&probes, full_scan);
        let candidates = if full_scan { self.total } else { candidates_total };
        let workers = self.workers.max(1).min(units.len().max(1));

        let scoring = Stopwatch::start_if(timed);
        let (hits, merge_micros) = self.score_units(query, plan, &units, workers, timed, on);
        let score_micros = scoring.micros().saturating_sub(merge_micros);

        if on {
            let m = search_metrics();
            if full_scan {
                m.full_scans.inc();
            }
            m.probe_micros.record(probe_micros);
            m.score_micros.record(score_micros);
            m.merge_micros.record(merge_micros);
            m.shards_visited.add(visited as u64);
            m.shards_pruned.add(pruned as u64);
            trace::record_span("search.score", score_micros, None);
            trace::record_span("search.merge", merge_micros, None);
            trace::note_shards(visited as u32, pruned as u32);
        }
        if let Some(ex) = explain {
            ex.probe_micros = probe_micros;
            ex.score_micros = score_micros;
            ex.merge_micros = merge_micros;
            ex.candidates = candidates;
            ex.full_scan = full_scan;
            ex.workers = workers;
            ex.results = hits.len();
            ex.shards = self.shards.len();
            ex.shards_visited = visited;
            ex.shards_pruned = pruned;
            ex.shard_bound_skips = bound_skips;
            ex.pruned_datasets = pruned_datasets;
        }
        hits
    }

    /// Admits nearest-neighbour candidates under the *global* total order
    /// `(distance, global index)`, truncated to `generous` — the exact set
    /// the unsharded R-tree's single `nearest` call selects (each shard's
    /// list is its `generous`-smallest under the same order, and the
    /// global smallest are always among the per-shard smallest).
    fn admit_nearest_globally(&self, probes: &mut [ShardProbe], generous: usize) {
        let mut near: Vec<(f64, usize, usize, usize)> = Vec::new();
        for (s, p) in probes.iter().enumerate() {
            near.extend(p.near.iter().map(|&(dist, gix, lix)| (dist, gix, s, lix)));
        }
        near.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
        });
        for &(_, _, s, lix) in near.iter().take(generous) {
            probes[s].certain.push(lix);
        }
        // restore sorted-unique order after the raw pushes
        for p in probes.iter_mut() {
            p.finish();
        }
    }

    /// Turns the probe outcome into scoring work units of roughly
    /// `total_work / workers` candidates each, so the pool stays busy even
    /// when candidates concentrate in one shard. Returns
    /// `(units, shards visited, shards pruned, datasets in pruned shards)`.
    fn plan_units(
        &self,
        probes: &[ShardProbe],
        full_scan: bool,
    ) -> (Vec<Unit>, usize, usize, usize) {
        let total_work =
            if full_scan { self.total } else { probes.iter().map(|p| p.certain.len()).sum() };
        let unit_size = total_work.div_ceil(self.workers.max(1)).max(1);
        let mut units = Vec::new();
        let mut visited = 0usize;
        let mut pruned = 0usize;
        let mut pruned_datasets = 0usize;
        if full_scan {
            for (s, shard) in self.shards.iter().enumerate() {
                if shard.is_empty() {
                    continue;
                }
                visited += 1;
                let mut start = 0;
                while start < shard.len() {
                    let end = (start + unit_size).min(shard.len());
                    units.push(Unit { shard: s, work: UnitWork::All(start..end) });
                    start = end;
                }
            }
        } else {
            for (s, p) in probes.iter().enumerate() {
                if p.certain.is_empty() {
                    if !self.shards[s].is_empty() {
                        pruned += 1;
                        pruned_datasets += self.shards[s].len();
                    }
                    continue;
                }
                visited += 1;
                for chunk in p.certain.chunks(unit_size) {
                    units.push(Unit { shard: s, work: UnitWork::List(chunk.to_vec()) });
                }
            }
        }
        (units, visited, pruned, pruned_datasets)
    }

    /// Scores the work units into light `(score, shard, local)` candidates
    /// — sequentially through the reusable per-thread scratch buffer, or
    /// on up to `workers` scoped threads pulling from a shared cursor,
    /// each with its own bounded top-k, merged deterministically (the rank
    /// order is a strict total order, so the merge selects exactly the
    /// candidates a sequential pass would). Only the surviving `≤ limit`
    /// are materialized into full hits. Also returns the merge-phase
    /// duration (0 when untimed).
    fn score_units(
        &self,
        query: &Query,
        plan: &QueryPlan,
        units: &[Unit],
        workers: usize,
        timed: bool,
        on: bool,
    ) -> (Vec<SearchHit>, u64) {
        if workers <= 1 {
            return SCRATCH.with(|cell| {
                let scratch = &mut *cell.borrow_mut();
                if on && scratch.lights.capacity() > 0 {
                    metamess_telemetry::global()
                        .counter("metamess_search_scratch_reuses_total")
                        .add(1);
                }
                let mut lights = std::mem::take(&mut scratch.lights);
                {
                    let rank_lt = |a: &LightHit, b: &LightHit| self.light_rank_lt(a, b);
                    let mut topk = LightTopK::new(query.limit, &mut lights);
                    for unit in units {
                        self.score_unit_light(query, plan, unit, &mut topk, &rank_lt, on);
                    }
                }
                let out = self.finish_lights(query, plan, &mut lights, timed);
                lights.clear();
                scratch.lights = lights; // hand the capacity back for reuse
                out
            });
        }
        let cursor = AtomicUsize::new(0);
        let pools: Vec<Vec<LightHit>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move |_| {
                        let rank_lt = |a: &LightHit, b: &LightHit| self.light_rank_lt(a, b);
                        let mut lights = Vec::new();
                        let mut topk = LightTopK::new(query.limit, &mut lights);
                        loop {
                            let u = cursor.fetch_add(1, AtomicOrdering::Relaxed);
                            let Some(unit) = units.get(u) else { break };
                            self.score_unit_light(query, plan, unit, &mut topk, &rank_lt, on);
                        }
                        drop(topk);
                        lights
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("search worker never panics")).collect()
        })
        .expect("search workers never panic");
        let mut lights = Vec::new();
        {
            let rank_lt = |a: &LightHit, b: &LightHit| self.light_rank_lt(a, b);
            let mut merged = LightTopK::new(query.limit, &mut lights);
            for pool in pools {
                for c in pool {
                    merged.push(c, &rank_lt);
                }
            }
        }
        self.finish_lights(query, plan, &mut lights, timed)
    }

    fn score_unit_light(
        &self,
        query: &Query,
        plan: &QueryPlan,
        unit: &Unit,
        topk: &mut LightTopK<'_>,
        rank_lt: &dyn Fn(&LightHit, &LightHit) -> bool,
        on: bool,
    ) {
        let sw = Stopwatch::start_if(on);
        let shard = &self.shards[unit.shard];
        match &unit.work {
            UnitWork::All(range) => {
                for ix in range.clone() {
                    let s = shard.score_fast(query, &plan.prepared, ix);
                    topk.push((s, unit.shard as u32, ix as u32), rank_lt);
                }
            }
            UnitWork::List(ixs) => {
                for &ix in ixs {
                    let s = shard.score_fast(query, &plan.prepared, ix);
                    topk.push((s, unit.shard as u32, ix as u32), rank_lt);
                }
            }
        }
        if on {
            let micros = sw.micros();
            search_metrics().shard_score_micros.record(micros);
            // Attaches on the sequential scoring path; on the worker pool
            // the trace builder lives on the coordinating thread, so this
            // is inert there (the score phase span still covers the time).
            trace::record_span("shard.score", micros, Some(unit.shard as u32));
        }
    }

    /// Sorts the surviving light candidates into final rank order and
    /// materializes full hits (strings + breakdown) for just those `≤ k`.
    /// Returns the hits plus the merge/materialize duration.
    fn finish_lights(
        &self,
        query: &Query,
        plan: &QueryPlan,
        lights: &mut [LightHit],
        timed: bool,
    ) -> (Vec<SearchHit>, u64) {
        let merge = Stopwatch::start_if(timed);
        lights.sort_by(|a, b| self.light_rank_cmp(a, b));
        let hits: Vec<SearchHit> = lights
            .iter()
            .map(|&(score, s, l)| {
                let hit = self.shards[s as usize].score_hit(
                    query,
                    &plan.prepared,
                    &self.vocab,
                    l as usize,
                );
                debug_assert_eq!(
                    hit.score.to_bits(),
                    score.to_bits(),
                    "fast scorer diverged from the exact scorer on {}",
                    hit.path
                );
                hit
            })
            .collect();
        (hits, merge.micros())
    }

    /// "a ranks strictly before b" under the global hit order — the
    /// light-candidate mirror of [`crate::topk::rank_cmp`].
    fn light_rank_lt(&self, a: &LightHit, b: &LightHit) -> bool {
        self.light_rank_cmp(a, b) == Ordering::Less
    }

    /// `(score desc, path asc)`, looking paths up lazily — ties on score
    /// are rare, so most comparisons never touch a string.
    fn light_rank_cmp(&self, a: &LightHit, b: &LightHit) -> Ordering {
        b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal).then_with(|| {
            self.shards[a.1 as usize]
                .dataset(a.2 as usize)
                .path
                .cmp(&self.shards[b.1 as usize].dataset(b.2 as usize).path)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Partitioner;
    use metamess_core::feature::{NameResolution, VariableFeature};
    use metamess_core::geo::{GeoBBox, GeoPoint};
    use metamess_core::time::{TimeInterval, Timestamp};

    fn make_dataset(
        path: &str,
        lat: f64,
        lon: f64,
        month: u32,
        vars: &[(&str, &str, f64, f64)],
    ) -> DatasetFeature {
        let mut d = DatasetFeature::new(path);
        d.title = path.to_string();
        d.bbox = Some(GeoBBox::point(GeoPoint::new(lat, lon).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2010, month, 1).unwrap(),
            Timestamp::from_ymd(2010, month, 28).unwrap(),
        ));
        for (name, canon, lo, hi) in vars {
            let mut v = VariableFeature::new(*name);
            if !canon.is_empty() {
                v.resolve(*canon, NameResolution::KnownTranslation);
            }
            v.summary.observe(*lo);
            v.summary.observe(*hi);
            d.variables.push(v);
        }
        d
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        // coastal station with cool temperatures in summer
        c.put(make_dataset(
            "coast.csv",
            45.50,
            -124.38,
            6,
            &[("temp", "water_temperature", 5.0, 10.0), ("sal", "salinity", 28.0, 33.0)],
        ));
        // estuary station, warmer
        c.put(make_dataset(
            "estuary.csv",
            46.18,
            -123.18,
            6,
            &[("wtemp", "water_temperature", 14.0, 20.0)],
        ));
        // winter file at the coastal site
        c.put(make_dataset(
            "coast_winter.csv",
            45.50,
            -124.38,
            1,
            &[("temp", "water_temperature", 4.0, 8.0)],
        ));
        // met station nearby
        c.put(make_dataset(
            "met.csv",
            45.52,
            -124.40,
            6,
            &[("airtmp", "air_temperature", 10.0, 22.0)],
        ));
        c
    }

    fn engine() -> SearchEngine {
        SearchEngine::build(&catalog(), Vocabulary::observatory_default())
    }

    /// Two well-separated clusters, big enough that a selective region
    /// query keeps indexed mode (candidates ≥ limit*3) and the `generous`
    /// nearest floor (50) stays inside the matching cluster.
    fn two_cluster_catalog() -> Catalog {
        let mut c = Catalog::new();
        for i in 0..60 {
            c.put(make_dataset(
                &format!("north/{i:02}.csv"),
                46.0 + (i % 10) as f64 * 0.01,
                -124.0,
                1 + (i % 6) as u32,
                &[("temp", "water_temperature", 5.0, 10.0)],
            ));
        }
        for i in 0..60 {
            c.put(make_dataset(
                &format!("south/{i:02}.csv"),
                -44.0 - (i % 10) as f64 * 0.01,
                150.0,
                7 + (i % 6) as u32,
                &[("sal", "salinity", 28.0, 33.0)],
            ));
        }
        c
    }

    #[test]
    fn poster_query_ranks_coastal_summer_first() {
        let e = engine();
        let q = Query::parse(
            "near 45.5,-124.4 within 25km from 2010-05-01 to 2010-08-31 \
             with water_temperature between 5 and 10",
        )
        .unwrap();
        let hits = e.search(&q);
        assert_eq!(hits[0].path, "coast.csv");
        assert!(hits[0].score > 0.9, "{}", hits[0].score);
        // winter file at the same site ranks below (time mismatch)
        let winter_rank = hits.iter().position(|h| h.path == "coast_winter.csv").unwrap();
        assert!(winter_rank > 0);
        // scores strictly ordered
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn indexed_and_linear_agree_on_ranking() {
        let mut e = engine();
        let q = Query::parse("near 46.0,-123.5 with salinity limit 4").unwrap();
        let indexed = e.search(&q);
        e.use_indexes = false;
        let linear = e.search(&q);
        assert_eq!(
            indexed.iter().map(|h| &h.path).collect::<Vec<_>>(),
            linear.iter().map(|h| &h.path).collect::<Vec<_>>()
        );
        for (a, b) in indexed.iter().zip(linear.iter()) {
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_workers_match_sequential() {
        let mut e = engine();
        e.use_indexes = false; // full scan exercises every dataset
        let q = Query::parse("near 45.5,-124.4 with water_temperature limit 3").unwrap();
        let sequential = e.search_uncached(&q);
        for workers in [2usize, 4, 8] {
            e.workers = workers;
            assert_eq!(e.search_uncached(&q), sequential, "workers={workers}");
        }
    }

    #[test]
    fn sharded_results_bit_identical_to_unsharded() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let reference = SearchEngine::build(&c, vocab.clone());
        let queries = [
            Query::parse("in 45.9,-124.1..46.2,-123.9 limit 5").unwrap(),
            Query::parse("near 46.0,-124.0 within 10km with water_temperature limit 4").unwrap(),
            Query::parse("from 2010-07-01 to 2010-09-30 with salinity limit 6").unwrap(),
            Query::new(),
        ];
        for partitioner in [Partitioner::Hash, Partitioner::Spatial, Partitioner::Temporal] {
            for shards in [1usize, 2, 4, 8] {
                let mut e = SearchEngine::build_sharded(
                    &c,
                    vocab.clone(),
                    ShardSpec::new(shards, partitioner),
                );
                e.workers = 3;
                for q in &queries {
                    assert_eq!(
                        e.search_uncached(q),
                        reference.search_uncached(q),
                        "partitioner={partitioner:?} shards={shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn spatial_partitioning_prunes_far_shards() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let e = SearchEngine::build_sharded(&c, vocab, ShardSpec::new(2, Partitioner::Spatial));
        // selective region query over the north cluster only
        let q = Query::parse("in 45.9,-124.1..46.2,-123.9 limit 5").unwrap();
        let (hits, ex) = e.search_explain(&q);
        assert!(!ex.full_scan, "north cluster must satisfy limit*3 from the indexes");
        assert_eq!(ex.shards, 2);
        assert_eq!(ex.shards_visited, 1);
        assert_eq!(ex.shards_pruned, 1, "the southern shard must be pruned");
        assert_eq!(ex.pruned_datasets, 60);
        assert!(ex.shard_bound_skips >= 1);
        assert!(hits.iter().all(|h| h.path.starts_with("north/")));
    }

    #[test]
    fn temporal_partitioning_prunes_off_window_shards() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let e = SearchEngine::build_sharded(&c, vocab, ShardSpec::new(2, Partitioner::Temporal));
        // the south cluster holds months 7..=12; a window over the start of
        // the year (plus the 1-window pad) only reaches the north shard
        let q = Query::parse("from 2010-01-01 to 2010-02-15 limit 5").unwrap();
        let (_, ex) = e.search_explain(&q);
        assert!(!ex.full_scan);
        assert_eq!(ex.shards_visited, 1);
        assert_eq!(ex.shards_pruned, 1);
        assert_eq!(ex.pruned_datasets, 60);
    }

    #[test]
    fn build_sharded_clamps_shard_count() {
        let c = catalog();
        let vocab = Vocabulary::observatory_default();
        let e =
            SearchEngine::build_sharded(&c, vocab.clone(), ShardSpec::new(0, Partitioner::Hash));
        assert_eq!(e.shard_count(), 1);
        let e = SearchEngine::build_sharded(&c, vocab, ShardSpec::new(100_000, Partitioner::Hash));
        assert_eq!(e.shard_count(), crate::shard::MAX_SHARDS);
        // more shards than datasets → most shards empty, still correct
        assert_eq!(e.len(), 4);
        assert!(!e.search(&Query::parse("with salinity").unwrap()).is_empty());
    }

    #[test]
    fn repeated_query_served_from_cache() {
        let e = engine();
        let q = Query::parse("with salinity limit 3").unwrap();
        let first = e.search(&q);
        assert_eq!(e.cache_stats().misses, 1);
        let second = e.search(&q);
        assert_eq!(first, second);
        assert_eq!(e.cache_stats().hits, 1);
        // cache hits share one allocation — no per-hit clone of the list
        assert!(Arc::ptr_eq(&first, &second), "hit must reuse the cached allocation");
        // the cached list equals a fresh rescore
        assert_eq!(e.search_uncached(&q)[..], second[..]);
    }

    #[test]
    fn cache_distinguishes_ablation_switch() {
        let mut e = engine();
        let q = Query::parse("with salinity limit 3").unwrap();
        let _ = e.search(&q);
        e.use_indexes = false;
        let _ = e.search(&q);
        // both runs missed: the ablation switch is part of the cache key
        assert_eq!(e.cache_stats().misses, 2);
        assert_eq!(e.cache_stats().hits, 0);
    }

    #[test]
    fn shared_cache_invalidated_by_generation() {
        let shared = Arc::new(ResultCache::new(16));
        let vocab = Vocabulary::observatory_default();
        let mut c = catalog();
        let e1 = SearchEngine::build(&c, vocab.clone()).with_shared_cache(shared.clone());
        let q = Query::parse("with salinity limit 3").unwrap();
        let before = e1.search(&q);
        assert_eq!(shared.stats().misses, 1);

        // catalog changes → new generation → the shared entry must not hit
        c.put(make_dataset("new_site.csv", 45.9, -124.0, 6, &[("sal", "salinity", 30.0, 34.0)]));
        let e2 = SearchEngine::build(&c, vocab).with_shared_cache(shared.clone());
        assert_ne!(e1.generation(), e2.generation());
        let after = e2.search(&q);
        assert_eq!(shared.stats().misses, 2, "stale generation must rescore");
        assert_ne!(before, after, "new dataset should change salinity results");
    }

    #[test]
    fn shared_cache_works_across_shard_layouts() {
        // Results are bit-identical across layouts, so the layout is not
        // part of the cache key: a rebuild with a different shard count
        // reuses the warm cache.
        let shared = Arc::new(ResultCache::new(16));
        let vocab = Vocabulary::observatory_default();
        let c = catalog();
        let e1 = SearchEngine::build(&c, vocab.clone()).with_shared_cache(shared.clone());
        let q = Query::parse("with salinity limit 3").unwrap();
        let first = e1.search(&q);
        let e2 = SearchEngine::build_sharded(&c, vocab, ShardSpec::new(4, Partitioner::Spatial))
            .with_shared_cache(shared.clone());
        let second = e2.search(&q);
        assert_eq!(first, second);
        assert_eq!(shared.stats().hits, 1, "same generation, same key → warm hit");
    }

    #[test]
    fn synonym_query_finds_resolved_variable() {
        let e = engine();
        // "wtemp" is a curated alternate of water_temperature
        let q = Query::parse("with wtemp").unwrap();
        let hits = e.search(&q);
        assert!(hits[0].score > 0.8);
        assert!(hits.iter().take(3).any(|h| h.path == "estuary.csv"));
    }

    #[test]
    fn limit_respected() {
        let e = engine();
        let q = Query::parse("with water_temperature limit 2").unwrap();
        assert_eq!(e.search(&q).len(), 2);
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::build(&Catalog::new(), Vocabulary::observatory_default());
        assert!(e.is_empty());
        assert!(e.search(&Query::parse("with salinity").unwrap()).is_empty());
        // sharded over nothing is equally fine
        let e = SearchEngine::build_sharded(
            &Catalog::new(),
            Vocabulary::observatory_default(),
            ShardSpec::new(8, Partitioner::Spatial),
        );
        assert!(e.search(&Query::parse("with salinity").unwrap()).is_empty());
    }

    #[test]
    fn empty_query_returns_zero_scores() {
        let e = engine();
        let hits = e.search(&Query::new());
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| h.score == 0.0));
    }

    #[test]
    fn breakdown_explains_facets() {
        let e = engine();
        let q = Query::parse("near 45.5,-124.4 with water_temperature").unwrap();
        let hits = e.search(&q);
        let b = &hits[0].breakdown;
        assert!(b.space.is_some());
        assert!(b.time.is_none()); // no time clause
        assert!(b.variables.is_some());
        assert_eq!(b.variable_matches.len(), 1);
        assert!(b.variable_matches[0].1.is_some());
    }

    #[test]
    fn explain_reports_phases_and_cache_outcome() {
        let e = engine();
        let q = Query::parse("with salinity limit 3").unwrap();
        let (hits, ex) = e.search_explain(&q);
        assert!(!ex.cache_hit);
        assert_eq!(ex.results, hits.len());
        assert!(ex.full_scan, "tiny catalog cannot fill limit*3 from indexes");
        assert_eq!(ex.candidates, e.len());
        assert_eq!(ex.workers, 1);
        assert_eq!(ex.shards, 1);
        assert_eq!(ex.shards_visited, 1);
        assert_eq!(ex.shards_pruned, 0);
        // same query again: served from cache, no phases
        let (again, ex2) = e.search_explain(&q);
        assert!(ex2.cache_hit);
        assert_eq!(again, hits);
        assert_eq!(ex2.results, hits.len());
        assert_eq!((ex2.candidates, ex2.probe_micros), (0, 0));
        // explained and plain searches agree
        assert_eq!(e.search(&q), hits);
    }

    #[test]
    fn dataset_lookup_by_hit_id() {
        let e = SearchEngine::build_sharded(
            &catalog(),
            Vocabulary::observatory_default(),
            ShardSpec::new(3, Partitioner::Hash),
        );
        let q = Query::parse("with salinity").unwrap();
        let hits = e.search(&q);
        let d = e.dataset(hits[0].id).unwrap();
        assert_eq!(d.path, hits[0].path);
        assert!(e.dataset(DatasetId::from_path("no/such/file.csv")).is_none());
    }
}
