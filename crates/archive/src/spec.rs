//! Archive generation parameters and the ground-truth manifest.

use crate::mess::{MessCategory, MessIntensity};
use metamess_core::geo::GeoBBox;
use metamess_core::time::TimeInterval;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic observatory archive.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchiveSpec {
    /// RNG seed; same spec ⇒ bit-identical archive.
    pub seed: u64,
    /// Number of fixed observation stations (≤ 10).
    pub stations: usize,
    /// Number of research cruises (each with several CTD casts).
    pub cruises: usize,
    /// Number of glider missions.
    pub glider_missions: usize,
    /// Months of station data, starting January 2010.
    pub months: usize,
    /// Data rows per station-month file.
    pub rows_per_file: usize,
    /// Semantic-diversity injection intensities.
    pub mess: MessIntensity,
    /// Plant malformed files (failure injection for the harvester).
    pub include_malformed: bool,
}

impl Default for ArchiveSpec {
    fn default() -> Self {
        ArchiveSpec {
            seed: 20130408, // the ICDE 2013 poster session date
            stations: 6,
            cruises: 3,
            glider_missions: 2,
            months: 6,
            rows_per_file: 96,
            mess: MessIntensity::default(),
            include_malformed: true,
        }
    }
}

impl ArchiveSpec {
    /// A small spec for fast unit tests.
    pub fn tiny() -> ArchiveSpec {
        ArchiveSpec {
            stations: 2,
            cruises: 1,
            glider_missions: 1,
            months: 2,
            rows_per_file: 12,
            ..ArchiveSpec::default()
        }
    }
}

/// Ground truth for one harvested variable occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrueVariable {
    /// Name exactly as written into the file.
    pub harvested: String,
    /// The canonical variable it denotes (empty for pure QA columns).
    pub canonical: String,
    /// Which semantic-diversity category produced the harvested spelling.
    pub category: MessCategory,
    /// True when the column is QA/bookkeeping and must be excluded from
    /// search.
    pub qa: bool,
}

/// Ground truth for one generated dataset file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrueDataset {
    /// Archive-relative path.
    pub path: String,
    /// Source platform (station name, cruise id, glider mission).
    pub source: String,
    /// Source context key (`met_station`, `ctd`, `buoy`, `glider`).
    pub context: String,
    /// True spatial extent.
    pub bbox: GeoBBox,
    /// True temporal extent.
    pub time: TimeInterval,
    /// Per-variable truth, in file column order.
    pub variables: Vec<TrueVariable>,
}

impl TrueDataset {
    /// The set of canonical (searchable) variables the dataset truly carries.
    pub fn canonical_variables(&self) -> Vec<&str> {
        self.variables
            .iter()
            .filter(|v| !v.qa && !v.canonical.is_empty())
            .map(|v| v.canonical.as_str())
            .collect()
    }
}

/// The complete ground-truth manifest written beside the archive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// Spec that produced the archive.
    pub seed: u64,
    /// Per-dataset truth.
    pub datasets: Vec<TrueDataset>,
    /// Paths of planted malformed files (expected harvest failures).
    pub malformed: Vec<String>,
}

impl GroundTruth {
    /// Truth for a dataset path.
    pub fn dataset(&self, path: &str) -> Option<&TrueDataset> {
        self.datasets.iter().find(|d| d.path == path)
    }

    /// Count of injected variables per category across the archive.
    pub fn category_counts(&self) -> std::collections::BTreeMap<MessCategory, usize> {
        let mut m = std::collections::BTreeMap::new();
        for d in &self.datasets {
            for v in &d.variables {
                *m.entry(v.category).or_insert(0) += 1;
            }
        }
        m
    }

    /// Datasets whose truth satisfies all the given predicates — the
    /// relevance oracle used by the search-quality experiments.
    pub fn relevant<'a>(
        &'a self,
        region: Option<&'a GeoBBox>,
        window: Option<&'a TimeInterval>,
        variable: Option<&'a str>,
    ) -> impl Iterator<Item = &'a TrueDataset> {
        self.datasets.iter().filter(move |d| {
            if let Some(r) = region {
                if !r.intersects(&d.bbox) {
                    return false;
                }
            }
            if let Some(w) = window {
                if !w.overlaps(&d.time) {
                    return false;
                }
            }
            if let Some(v) = variable {
                if !d.canonical_variables().contains(&v) {
                    return false;
                }
            }
            true
        })
    }
}
