//! The scripted curator: an executable policy for the poster's "major
//! curatorial activities".
//!
//! 1. *Creating* the process — [`crate::Pipeline::standard`].
//! 2. *Running & rerunning* — [`CurationLoop::run_to_fixpoint`].
//! 3. *Improving* — accepted discoveries become synonym-table entries;
//!    ambiguous names get clarified by context; the vocabulary version
//!    bumps each cycle.
//! 4. *Validating* — the validation stage's findings feed the loop's
//!    stopping condition.

use crate::context::PipelineContext;
use crate::pipeline::{Pipeline, RunReport};
use metamess_core::error::Result;
use metamess_discover::RuleProposal;
use metamess_vocab::AmbiguityDecision;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Curator policy knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CuratorPolicy {
    /// Minimum confidence to auto-accept a discovered rule.
    pub min_confidence: f64,
    /// Only accept rules whose canonical pick is already a vocabulary term
    /// (otherwise the cluster is left for manual review).
    pub require_known_canonical: bool,
    /// Context → canonical map applied to ambiguous *temperature-like*
    /// names ("clarify where possible").
    pub ambiguity_contexts: BTreeMap<String, String>,
    /// Curator domain knowledge: `(canonical, variant)` pairs entered by
    /// hand during process improvement — the poster's literal example of
    /// "adding entries to a synonym table". Applied to names that are still
    /// unresolved after discovery.
    pub manual_synonyms: Vec<(String, String)>,
    /// Maximum curation iterations before giving up.
    pub max_iterations: usize,
}

impl Default for CuratorPolicy {
    fn default() -> Self {
        let mut ambiguity_contexts = BTreeMap::new();
        ambiguity_contexts.insert("met_station".to_string(), "air_temperature".to_string());
        ambiguity_contexts.insert("buoy".to_string(), "water_temperature".to_string());
        ambiguity_contexts.insert("ctd".to_string(), "water_temperature".to_string());
        ambiguity_contexts.insert("glider".to_string(), "water_temperature".to_string());
        CuratorPolicy {
            min_confidence: 0.55,
            require_known_canonical: true,
            ambiguity_contexts,
            manual_synonyms: Vec::new(),
            max_iterations: 6,
        }
    }
}

/// What one curation iteration did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CurationStep {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Proposals reviewed.
    pub reviewed: usize,
    /// Proposals accepted into the vocabulary.
    pub accepted: usize,
    /// Ambiguous names clarified.
    pub clarified: usize,
    /// Unresolved variable occurrences after this iteration.
    pub unresolved_after: usize,
    /// Catalog resolution fraction after this iteration.
    pub resolution_after: f64,
    /// Validation warnings outstanding.
    pub warnings: usize,
    /// Stages the incremental engine skipped in this iteration's run
    /// (inputs unchanged — e.g. the archive rescan once nothing on disk
    /// moved).
    #[serde(default)]
    pub stages_skipped: usize,
}

/// The iterated run/improve/rerun loop.
pub struct CurationLoop {
    /// Policy used each iteration.
    pub policy: CuratorPolicy,
}

impl CurationLoop {
    /// Creates a loop with a policy.
    pub fn new(policy: CuratorPolicy) -> CurationLoop {
        CurationLoop { policy }
    }

    /// Reviews the context's proposals: accepted ones move to
    /// `ctx.accepted` *and* their variants are recorded in the synonym
    /// table (process improvement). Returns `(reviewed, accepted)`.
    pub fn review_proposals(&self, ctx: &mut PipelineContext) -> (usize, usize) {
        let proposals: Vec<RuleProposal> = std::mem::take(&mut ctx.proposals);
        let reviewed = proposals.len();
        let mut accepted = Vec::new();
        for p in proposals {
            if p.confidence < self.policy.min_confidence {
                continue;
            }
            let canonical = match ctx.vocab.synonyms.resolve(&p.to) {
                Some((c, _)) => c.to_string(),
                None if self.policy.require_known_canonical => continue,
                None => p.to.clone(),
            };
            let mut usable = false;
            for variant in &p.from {
                if ctx.vocab.synonyms.contains(variant) {
                    continue;
                }
                if ctx.vocab.synonyms.add_alternate(&canonical, variant.clone()).is_ok() {
                    usable = true;
                    ctx.discovered_provenance
                        .insert(metamess_core::text::normalize_term(variant), p.method.clone());
                }
            }
            if usable {
                accepted.push(p);
            }
        }
        let n = accepted.len();
        ctx.accepted = accepted;
        (reviewed, n)
    }

    /// Clarifies every undecided ambiguous name that looks temperature-like
    /// using the policy's context map; leaves others exposed.
    pub fn clarify_ambiguities(&self, ctx: &mut PipelineContext) -> usize {
        let undecided: Vec<String> =
            ctx.vocab.registry.undecided().map(|e| e.name.clone()).collect();
        let mut n = 0;
        for name in undecided {
            let entry_candidates: Vec<String> = ctx
                .vocab
                .registry
                .ambiguous_entries()
                .find(|e| e.name == name)
                .map(|e| e.candidates.clone())
                .unwrap_or_default();
            // clarify when the context map's targets include at least one
            // candidate meaning — the curator knows these contexts
            let applicable = entry_candidates
                .iter()
                .any(|c| self.policy.ambiguity_contexts.values().any(|v| v == c));
            if applicable {
                ctx.vocab.registry.decide_ambiguous(
                    &name,
                    AmbiguityDecision::Clarified(self.policy.ambiguity_contexts.clone()),
                );
                n += 1;
            }
        }
        n
    }

    /// Expands `ATastn`-style abbreviations: an unresolved name consisting
    /// of uppercase initials (optionally suffixed `astn`, "at station") is
    /// matched against the initials of every canonical term's tokens; a
    /// unique hit becomes a synonym-table entry. This is the scripted
    /// version of the curator hand-entering the poster's
    /// `ATastn → sea surface temperature` rule.
    pub fn resolve_abbreviations(&self, ctx: &mut PipelineContext) -> usize {
        use metamess_core::text::split_identifier;
        // initials → canonical term (None marks an ambiguous collision)
        let mut by_initials: BTreeMap<String, Option<String>> = BTreeMap::new();
        for term in ctx.vocab.synonyms.preferred_terms() {
            let initials: String = split_identifier(term)
                .iter()
                .filter_map(|t| t.chars().next())
                .collect::<String>()
                .to_ascii_uppercase();
            if initials.is_empty() {
                continue;
            }
            by_initials
                .entry(initials)
                .and_modify(|e| *e = None)
                .or_insert_with(|| Some(term.to_string()));
        }
        let mut unresolved: Vec<String> = Vec::new();
        for d in ctx.catalogs.working.iter() {
            for v in &d.variables {
                if v.resolution.is_resolved() || v.flags.qa || v.flags.hidden {
                    continue;
                }
                if !unresolved.contains(&v.name) {
                    unresolved.push(v.name.clone());
                }
            }
        }
        let mut n = 0;
        for name in unresolved {
            let stem = name.strip_suffix("astn").unwrap_or(&name);
            if stem.is_empty()
                || !stem.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
            {
                continue;
            }
            match by_initials.get(stem) {
                Some(Some(canonical)) => {
                    let canonical = canonical.clone();
                    if ctx.vocab.synonyms.add_alternate(&canonical, name.clone()).is_ok() {
                        n += 1;
                    }
                }
                Some(None) => {
                    // collided initials: several canonical terms share them —
                    // expose as ambiguous for the human curator
                    let candidates: Vec<String> = ctx
                        .vocab
                        .synonyms
                        .preferred_terms()
                        .filter(|t| {
                            let ini: String = split_identifier(t)
                                .iter()
                                .filter_map(|x| x.chars().next())
                                .collect::<String>()
                                .to_ascii_uppercase();
                            ini == *stem
                        })
                        .map(str::to_string)
                        .collect();
                    let refs: Vec<&str> = candidates.iter().map(String::as_str).collect();
                    ctx.vocab.registry.note_ambiguous(&name, &refs);
                }
                None => {}
            }
        }
        n
    }

    /// Applies the policy's hand-entered synonym pairs to names that are
    /// still unresolved (curatorial activity 3). Returns entries applied.
    pub fn apply_manual_synonyms(&self, ctx: &mut PipelineContext) -> usize {
        if self.policy.manual_synonyms.is_empty() {
            return 0;
        }
        let mut unresolved: std::collections::BTreeSet<String> = Default::default();
        for d in ctx.catalogs.working.iter() {
            for v in &d.variables {
                if !(v.resolution.is_resolved() || v.flags.qa || v.flags.hidden) {
                    unresolved.insert(v.name.clone());
                }
            }
        }
        let mut n = 0;
        for (canonical, variant) in &self.policy.manual_synonyms {
            if !unresolved.contains(variant) {
                continue;
            }
            let added = !ctx.vocab.synonyms.contains(variant)
                && ctx.vocab.synonyms.add_alternate(canonical, variant.clone()).is_ok();
            // a manual entry also settles any ambiguity exposure on the name:
            // the curator just told us what it means
            let was_ambiguous = ctx.vocab.registry.ambiguous_entries().any(|e| e.name == *variant);
            if was_ambiguous {
                let mut map = BTreeMap::new();
                map.insert(String::new(), canonical.clone());
                ctx.vocab.registry.decide_ambiguous(variant, AmbiguityDecision::Clarified(map));
            }
            if added || was_ambiguous {
                n += 1;
            }
        }
        n
    }

    fn unresolved_count(ctx: &PipelineContext) -> usize {
        ctx.catalogs
            .working
            .iter()
            .flat_map(|d| d.variables.iter())
            .filter(|v| !(v.resolution.is_resolved() || v.flags.qa || v.flags.hidden))
            .count()
    }

    /// Runs the pipeline repeatedly, curating between runs, until no
    /// iteration makes progress (or the iteration cap is hit). Returns the
    /// per-iteration history and the final run's report.
    pub fn run_to_fixpoint(
        &self,
        pipeline: &mut Pipeline,
        ctx: &mut PipelineContext,
    ) -> Result<(Vec<CurationStep>, RunReport)> {
        let mut history = Vec::new();
        let mut last_report = pipeline.run(ctx)?;
        for iteration in 1..=self.policy.max_iterations {
            let before_unresolved = Self::unresolved_count(ctx);
            let (reviewed, accepted) = self.review_proposals(ctx);
            let clarified = self.clarify_ambiguities(ctx);
            let abbreviations = self.resolve_abbreviations(ctx);
            let manual = self.apply_manual_synonyms(ctx);
            // clarified ambiguities must be re-exposed to known transforms
            if clarified > 0 {
                for d in ctx.catalogs.working.iter_mut() {
                    for v in &mut d.variables {
                        if v.flags.ambiguous && !v.resolution.is_resolved() {
                            v.flags.ambiguous = false; // re-evaluate next run
                        }
                    }
                }
            }
            if accepted + clarified + abbreviations + manual > 0 {
                ctx.vocab.bump_version();
            }
            last_report = pipeline.run(ctx)?;
            let unresolved_after = Self::unresolved_count(ctx);
            history.push(CurationStep {
                iteration,
                reviewed,
                accepted: accepted + abbreviations + manual,
                clarified,
                unresolved_after,
                resolution_after: ctx.catalogs.working.resolution_fraction(),
                warnings: ctx.findings.len(),
                stages_skipped: last_report.skipped_count(),
            });
            let progressed = accepted + clarified + abbreviations + manual > 0
                || unresolved_after < before_unresolved;
            if !progressed {
                break;
            }
        }
        Ok((history, last_report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ArchiveInput;
    use metamess_archive::{generate, ArchiveSpec};
    use metamess_vocab::Vocabulary;

    fn ctx(spec: &ArchiveSpec) -> PipelineContext {
        let archive = generate(spec);
        PipelineContext::new(ArchiveInput::Memory(archive.files), Vocabulary::observatory_default())
    }

    #[test]
    fn curation_loop_converges_and_improves() {
        let mut c = ctx(&ArchiveSpec::default());
        let mut p = Pipeline::standard();
        let curator = CurationLoop::new(CuratorPolicy::default());
        let (history, last) = curator.run_to_fixpoint(&mut p, &mut c).unwrap();
        assert!(!history.is_empty());
        // unresolved count is non-increasing across iterations
        for w in history.windows(2) {
            assert!(w[1].unresolved_after <= w[0].unresolved_after, "{history:?}");
        }
        let final_res = history.last().unwrap().resolution_after;
        assert!(final_res > 0.85, "resolution only reached {final_res}: {history:?}");
        // the loop actually accepted discoveries and clarified ambiguity
        assert!(history.iter().map(|h| h.accepted).sum::<usize>() > 0);
        assert!(history.iter().map(|h| h.clarified).sum::<usize>() > 0);
        assert!(last.stage("publish").is_some());
        // vocabulary grew
        assert!(c.vocab.version > 1);
    }

    #[test]
    fn accepted_variants_become_synonyms() {
        let mut c = ctx(&ArchiveSpec::default());
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        let curator = CurationLoop::new(CuratorPolicy::default());
        let (reviewed, accepted) = curator.review_proposals(&mut c);
        assert!(reviewed > 0);
        assert!(accepted > 0);
        // every accepted variant now resolves
        for p in &c.accepted {
            for from in &p.from {
                assert!(c.vocab.synonyms.contains(from), "{from} not added");
            }
        }
    }

    #[test]
    fn low_threshold_accepts_more() {
        let mut c1 = ctx(&ArchiveSpec::default());
        Pipeline::standard().run(&mut c1).unwrap();
        let mut c2 = PipelineContext::new(c1.archive.clone(), Vocabulary::observatory_default());
        Pipeline::standard().run(&mut c2).unwrap();

        let strict =
            CurationLoop::new(CuratorPolicy { min_confidence: 0.95, ..CuratorPolicy::default() });
        let lax =
            CurationLoop::new(CuratorPolicy { min_confidence: 0.05, ..CuratorPolicy::default() });
        let (_, a_strict) = strict.review_proposals(&mut c1);
        let (_, a_lax) = lax.review_proposals(&mut c2);
        assert!(a_lax >= a_strict, "{a_lax} < {a_strict}");
    }

    /// The curator's full domain knowledge: every ad-hoc spelling the field
    /// techs use, as `(canonical, variant)` pairs.
    fn domain_knowledge() -> Vec<(String, String)> {
        let canons = [
            "air_temperature",
            "water_temperature",
            "sea_surface_temperature",
            "salinity",
            "specific_conductivity",
            "dissolved_oxygen",
            "turbidity",
            "chlorophyll_fluorescence",
            "wind_speed",
            "wind_direction",
            "air_pressure",
            "relative_humidity",
            "precipitation",
            "solar_radiation",
            "depth",
            "nitrate",
            "phosphate",
            "ph",
            "water_pressure",
            "photosynthetically_active_radiation",
        ];
        let mut out = Vec::new();
        for c in canons {
            for v in metamess_archive::adhoc_synonyms(c) {
                out.push((c.to_string(), v.to_string()));
            }
        }
        out
    }

    #[test]
    fn manual_synonyms_close_the_remaining_gap() {
        let mut c = ctx(&ArchiveSpec::default());
        let mut p = Pipeline::standard();
        let policy = CuratorPolicy { manual_synonyms: domain_knowledge(), ..Default::default() };
        let curator = CurationLoop::new(policy);
        let (history, _) = curator.run_to_fixpoint(&mut p, &mut c).unwrap();
        let final_res = history.last().unwrap().resolution_after;
        // with domain knowledge the mess all but disappears
        assert!(final_res > 0.96, "resolution only reached {final_res}: {history:?}");
        // What remains is dominated by the collided abbreviations (exposed
        // as ambiguous for the human curator); a stray undiscoverable typo
        // may also survive — that tail is the honest residue of curation.
        let mut astn_exposed = 0usize;
        let mut other = 0usize;
        for d in c.catalogs.working.iter() {
            for v in &d.variables {
                if !(v.resolution.is_resolved() || v.flags.qa || v.flags.hidden) {
                    if v.name.ends_with("astn") && v.flags.ambiguous {
                        astn_exposed += 1;
                    } else {
                        other += 1;
                    }
                }
            }
        }
        assert!(astn_exposed > 0, "collided abbreviations should be exposed");
        assert!(other <= 3, "too many non-abbreviation leftovers: {other}");
    }

    #[test]
    fn fixpoint_iterations_skip_clean_stages() {
        let mut c = ctx(&ArchiveSpec::default());
        let mut p = Pipeline::standard();
        let curator = CurationLoop::new(CuratorPolicy::default());
        let (history, last) = curator.run_to_fixpoint(&mut p, &mut c).unwrap();
        assert!(!history.is_empty());
        // The archive never changes inside the loop, so every iteration's
        // rerun skips at least the scan stage instead of re-walking and
        // re-parsing the whole archive (the old behaviour re-ran the full
        // chain every iteration).
        for step in &history {
            assert!(step.stages_skipped >= 1, "iteration skipped nothing: {history:?}");
        }
        assert!(last.stage("scan-archive").unwrap().is_skipped());
        // the final, unproductive iteration finds almost every stage clean
        assert!(
            history.last().unwrap().stages_skipped >= 7,
            "final iteration should be near-total skip: {history:?}"
        );
    }

    #[test]
    fn fixpoint_reached_quickly_on_clean_archive() {
        // with no mess, the loop stops after one unproductive iteration
        let spec = ArchiveSpec {
            mess: metamess_archive::MessIntensity {
                misspelling: 0.0,
                synonym: 0.0,
                abbreviation: 0.0,
                excessive: 0.0,
                ambiguous: 0.0,
            },
            ..ArchiveSpec::tiny()
        };
        let mut c = ctx(&spec);
        let mut p = Pipeline::standard();
        let curator = CurationLoop::new(CuratorPolicy::default());
        let (history, _) = curator.run_to_fixpoint(&mut p, &mut c).unwrap();
        assert!(history.len() <= 2, "{history:?}");
    }
}
