//! # metamess-search
//!
//! "Data Near Here": ranked similarity search over the metadata catalog —
//! query model and text query language, distance-based scoring over
//! location/time/variables with vocabulary expansion, a static R-tree and
//! interval index for candidate generation, and the text renderings of the
//! poster's search-interface and dataset-summary figures.

mod browse;
mod engine;
mod interval;
mod query;
mod rtree;
mod score;
mod summary;

pub use browse::{browse_all, browse_taxonomy, BrowseNode, BrowseTree};
pub use engine::{SearchEngine, SearchHit};
pub use interval::IntervalIndex;
pub use query::{Query, SpatialTerm, VariableTerm, Weights};
pub use rtree::RTree;
pub use score::{
    prepared_term_score, score_dataset, score_dataset_prepared, spatial_score, temporal_score,
    variable_term_score, PreparedTerm, ScoreBreakdown,
};
pub use summary::{render_results, render_summary};
