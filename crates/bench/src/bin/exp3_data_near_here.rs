//! **E3 — Figure: "Data Near Here" search interface.**
//!
//! Executes the poster's example information need — observations near
//! (45.5, −124.4) in mid-2010 with temperature between 5–10 °C — renders the
//! ranked result list the interface shows, and measures search latency vs
//! catalog size with the R-tree/interval indexes on and off (the ablation
//! the DESIGN calls out).
//!
//! ```text
//! cargo run --release -p metamess-bench --bin exp3_data_near_here
//! ```

use metamess_archive::ArchiveSpec;
use metamess_bench::{engine_from_ctx, wrangle_archive};
use metamess_search::{render_results, Query, SearchEngine};
use std::time::Instant;

const POSTER_QUERY: &str = "near 45.5,-124.4 within 50km from 2010-04-01 to 2010-09-30 \
                            with temperature between 5 and 10 limit 5";

fn main() {
    println!("E3: \"Data Near Here\" ranked search\n");

    // The poster's query over the standard archive.
    let (ctx, _) = wrangle_archive(&ArchiveSpec::default());
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let q = Query::parse(POSTER_QUERY).unwrap();
    println!("query> {POSTER_QUERY}\n");
    print!("{}", render_results(&engine.search(&q)));

    // Latency vs catalog size, indexed vs linear scan. A *selective* query
    // (tight radius, one month, cruise-only variable) is where candidate
    // pruning pays; broad queries degenerate to a full scan by design.
    const SELECTIVE: &str = "near 46.1,-123.9 within 10km during 2010-02 with nitrate limit 5";
    println!("\nsearch latency vs catalog size (selective query, mean of 200 runs):");
    println!(
        "{:>9} {:>10} {:>14} {:>14} {:>9}",
        "datasets", "variables", "indexed", "linear scan", "speedup"
    );
    for months in [6usize, 12, 24, 48, 96] {
        let spec = ArchiveSpec { months, stations: 10, ..ArchiveSpec::default() };
        let (ctx, _) = wrangle_archive(&spec);
        let mut engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
        let q = Query::parse(SELECTIVE).unwrap();
        let time_it = |engine: &SearchEngine| {
            let runs = 200;
            let t = Instant::now();
            for _ in 0..runs {
                std::hint::black_box(engine.search_uncached(std::hint::black_box(&q)));
            }
            t.elapsed() / runs
        };
        engine.use_indexes = true;
        let indexed = time_it(&engine);
        engine.use_indexes = false;
        let linear = time_it(&engine);
        println!(
            "{:>9} {:>10} {:>14.2?} {:>14.2?} {:>8.2}x",
            ctx.catalogs.published.len(),
            ctx.catalogs.published.variable_count(),
            indexed,
            linear,
            linear.as_secs_f64() / indexed.as_secs_f64()
        );
    }

    // Parallel scoring on the full-scan configuration: worker-pool scaling
    // over the largest catalog of the series (results are bit-identical to
    // sequential; only latency changes).
    println!("\nparallel scoring, full scan (poster query, mean of 200 runs):");
    let spec = ArchiveSpec { months: 96, stations: 10, ..ArchiveSpec::default() };
    let (mut ctx_par, _) = wrangle_archive(&spec);
    let q = Query::parse(POSTER_QUERY).unwrap();
    let time_it = |engine: &SearchEngine| {
        let runs = 200;
        let t = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(engine.search_uncached(std::hint::black_box(&q)));
        }
        t.elapsed() / runs
    };
    let mut sequential_latency = None;
    for workers in [1usize, 2, 4, 8] {
        ctx_par.search_parallelism = workers;
        let mut engine = engine_from_ctx(&ctx_par);
        engine.use_indexes = false;
        let latency = time_it(&engine);
        let base = *sequential_latency.get_or_insert(latency);
        println!(
            "  {workers} worker(s): {:>10.2?}  ({:.2}x vs sequential)",
            latency,
            base.as_secs_f64() / latency.as_secs_f64()
        );
    }

    // Result cache: repeated queries against an unchanged published catalog
    // are served without rescoring.
    println!("\nresult cache (poster query, mean of 200 runs):");
    let engine = engine_from_ctx(&ctx_par);
    let runs = 200u32;
    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(engine.search_uncached(std::hint::black_box(&q)));
    }
    let cold = t.elapsed() / runs;
    let t = Instant::now();
    for _ in 0..runs {
        std::hint::black_box(engine.search(std::hint::black_box(&q)));
    }
    let cached = t.elapsed() / runs;
    let stats = engine.cache_stats();
    println!("  cold:   {cold:>10.2?}");
    println!(
        "  cached: {cached:>10.2?}  ({:.0}x; {} hits / {} misses)",
        cold.as_secs_f64() / cached.as_secs_f64(),
        stats.hits,
        stats.misses
    );

    // Ablation: synonym expansion on/off for a synonym-heavy query.
    println!("\nablation: vocabulary expansion (query 'with wtemp' — a curated alternate):");
    let (ctx, truth) = wrangle_archive(&ArchiveSpec::default());
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let engine_bare = SearchEngine::build(
        &ctx.catalogs.published,
        metamess_vocab::Vocabulary::new(), // empty vocabulary: no expansion
    );
    let q = Query::parse("with wtemp limit 10").unwrap();
    let with_vocab = engine.search(&q);
    let without = engine_bare.search(&q);
    let relevant: Vec<&str> =
        truth.relevant(None, None, Some("water_temperature")).map(|d| d.path.as_str()).collect();
    let hit_rate = |hits: &[metamess_search::SearchHit]| {
        hits.iter()
            .take(10)
            .filter(|h| relevant.contains(&h.path.as_str()) && h.score > 0.5)
            .count()
    };
    println!(
        "  with vocabulary:    {}/10 strong relevant hits (top score {:.2})",
        hit_rate(&with_vocab),
        with_vocab.first().map(|h| h.score).unwrap_or(0.0)
    );
    println!(
        "  without vocabulary: {}/10 strong relevant hits (top score {:.2})",
        hit_rate(&without),
        without.first().map(|h| h.score).unwrap_or(0.0)
    );
}
