//! # metamess-transform
//!
//! Google-Refine-compatible metadata transformations: the operation JSON
//! format (`core/mass-edit`, `core/text-transform`, ...), a GREL expression
//! subset (lexer, parser, evaluator), and the engine that "runs rules
//! against metadata" with per-operation statistics.
//!
//! This reproduces the poster's round trip: *extract catalog entries →
//! discover transformations → export JSON rules → run rules against
//! metadata → working catalog*.

mod engine;
pub mod grel;
mod ops;

pub use engine::{
    apply_operation, apply_operations, apply_operations_strict, ApplyReport, OpStats,
};
pub use ops::{
    operations_to_json, parse_operations, EngineConfig, Facet, FacetChoice, FacetChoiceValue,
    MassEdit, Operation,
};
