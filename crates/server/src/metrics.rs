//! The server's own metric families, recorded into the global
//! `metamess-telemetry` registry so `/metrics` and `metamess stats` see
//! them alongside search/store/pipeline series.
//!
//! Families:
//!
//! * `metamess_server_requests_total{route=…,status=…}` — one counter per
//!   (route, status) pair, including protocol errors under
//!   `route="invalid"`.
//! * `metamess_server_request_micros` — handler latency histogram.
//! * `metamess_server_connections_total` / `metamess_server_shed_total` —
//!   accepted vs shed connections.
//! * `metamess_server_queue_depth` — connections waiting right now.
//! * `metamess_server_reloads_total` — hot catalog reloads that swapped an
//!   epoch.
//! * `metamess_server_panics_total` — panics caught by the worker pool
//!   (the request gets a 500 or a dropped connection; the worker lives).

use metamess_telemetry::global;

/// Records one served request: route/status counter + latency histogram.
pub(crate) fn record_request(route: &str, status: u16, micros: u64) {
    if !metamess_telemetry::enabled() {
        return;
    }
    // Two labels, hand-assembled in registry key syntax (the Prometheus
    // renderer splits at the first `{`).
    let name = format!("metamess_server_requests_total{{route=\"{route}\",status=\"{status}\"}}");
    global().counter(&name).add(1);
    global().histogram("metamess_server_request_micros").record(micros);
}

/// Records one accepted connection.
pub(crate) fn record_connection() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_connections_total").add(1);
    }
}

/// Records one shed (503) connection.
pub(crate) fn record_shed() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_shed_total").add(1);
    }
}

/// Publishes the current accept-queue depth.
pub(crate) fn set_queue_depth(depth: usize) {
    if metamess_telemetry::enabled() {
        global().gauge("metamess_server_queue_depth").set(depth as i64);
    }
}

/// Records one epoch-swapping hot reload.
pub(crate) fn record_reload() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_reloads_total").add(1);
    }
}

/// Records one caught panic (in a handler or a connection); the worker
/// survives, but a nonzero series here means a bug worth chasing.
pub(crate) fn record_panic() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_panics_total").add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_metric_renders_with_both_labels() {
        record_request("search", 200, 1234);
        let snap = global().snapshot();
        if !metamess_telemetry::enabled() {
            return; // nothing recorded under METAMESS_TELEMETRY=0
        }
        let key = "metamess_server_requests_total{route=\"search\",status=\"200\"}";
        assert!(snap.counters.contains_key(key), "missing {key}");
        let text = snap.render_prometheus();
        assert!(
            text.contains("metamess_server_requests_total{route=\"search\",status=\"200\"}"),
            "{text}"
        );
    }
}
