//! Query planning: everything about a query that does not depend on the
//! dataset being scored, computed once per query.
//!
//! Before the plan existed, `SearchEngine::candidates` re-expanded every
//! vocabulary term per query and `PreparedTerm` redid the same resolution
//! for scoring — two code paths doing overlapping dictionary walks. The
//! plan runs both once, through the vocabulary's shared expansion helpers
//! (`Vocabulary::expand_keys` / `canonical_keys`), and is reused across all
//! candidates and all workers.

use crate::query::Query;
use crate::score::PreparedTerm;
use metamess_vocab::Vocabulary;
use std::collections::BTreeSet;

/// Precomputed per-query state: scoring context and candidate-probe keys
/// for every variable term.
pub struct QueryPlan {
    /// Scoring context per variable term (normalized spellings, expansion
    /// set, hierarchy neighbourhood) — consumed by `score_dataset_prepared`.
    pub prepared: Vec<PreparedTerm>,
    /// Normalized inverted-index probe keys per variable term — consumed by
    /// candidate generation.
    pub term_keys: Vec<BTreeSet<String>>,
}

impl QueryPlan {
    /// Prepares a plan for `query` against `vocab`.
    pub fn prepare(query: &Query, vocab: &Vocabulary) -> QueryPlan {
        QueryPlan {
            prepared: query.variables.iter().map(|t| PreparedTerm::prepare(t, vocab)).collect(),
            term_keys: query.variables.iter().map(|t| vocab.expand_keys(&t.name)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_core::text::normalize_term;

    #[test]
    fn plan_prepares_every_term_once() {
        let vocab = Vocabulary::observatory_default();
        let q = Query::parse("with wtemp with salinity between 20 and 30").unwrap();
        let plan = QueryPlan::prepare(&q, &vocab);
        assert_eq!(plan.prepared.len(), 2);
        assert_eq!(plan.term_keys.len(), 2);
        // probe keys reach the canonical spelling behind the alternate
        assert!(plan.term_keys[0].contains(&normalize_term("water_temperature")));
        assert!(plan.term_keys[1].contains(&normalize_term("salinity")));
    }

    #[test]
    fn empty_query_has_empty_plan() {
        let vocab = Vocabulary::observatory_default();
        let plan = QueryPlan::prepare(&Query::new(), &vocab);
        assert!(plan.prepared.is_empty());
        assert!(plan.term_keys.is_empty());
    }
}
