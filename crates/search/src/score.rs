//! Distance-based similarity scoring — the ranking heart of "Data Near
//! Here": every facet contributes a similarity in `[0, 1]`, combined by
//! weighted average over the facets the query actually uses.

use crate::query::{Query, SpatialTerm, VariableTerm};
use metamess_core::feature::{DatasetFeature, VariableFeature};
use metamess_core::time::TimeInterval;
use metamess_vocab::Vocabulary;
use serde::{Deserialize, Serialize};
use std::collections::HashSet as StdHashSet;
use std::sync::Arc;

/// Per-facet score breakdown, shown in the result explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ScoreBreakdown {
    /// Spatial similarity, when the query has a spatial term.
    pub space: Option<f64>,
    /// Temporal similarity, when the query has a time window.
    pub time: Option<f64>,
    /// Variable similarity, when the query has variable terms.
    pub variables: Option<f64>,
    /// Per-term detail: `(term name, matched variable, similarity)`.
    pub variable_matches: Vec<(String, Option<String>, f64)>,
    /// The combined, weighted score.
    pub total: f64,
}

/// Spatial similarity of a dataset to the query's spatial term.
///
/// Inside the box / radius scores 1; outside decays exponentially with the
/// ratio of distance to the query's characteristic scale.
pub fn spatial_score(term: &SpatialTerm, dataset: &DatasetFeature) -> f64 {
    let Some(bbox) = &dataset.bbox else { return 0.0 };
    match term {
        SpatialTerm::Near { point, radius_km } => {
            let d = bbox.distance_km(point);
            if d <= *radius_km {
                1.0
            } else {
                (-(d - radius_km) / radius_km.max(0.1)).exp()
            }
        }
        SpatialTerm::Region(region) => {
            if region.intersects(bbox) {
                1.0
            } else {
                let d = region.box_distance_km(bbox);
                let scale = (region.area_km2().sqrt()).max(10.0);
                (-d / scale).exp()
            }
        }
    }
}

/// Temporal similarity: overlapping intervals score by how much of the
/// query window the dataset covers (floored at 0.5 so *any* overlap beats
/// any non-overlap); disjoint intervals decay exponentially with the gap.
pub fn temporal_score(window: &TimeInterval, dataset: &DatasetFeature) -> f64 {
    let Some(extent) = &dataset.time else { return 0.0 };
    let overlap = window.overlap_secs(extent);
    if window.overlaps(extent) {
        let denom = window.duration_secs().min(extent.duration_secs()).max(1);
        let frac = (overlap as f64 / denom as f64).clamp(0.0, 1.0);
        // degenerate instants inside the window count as full coverage
        if overlap == 0 {
            return 1.0;
        }
        0.5 + 0.5 * frac
    } else {
        let gap = window.gap_secs(extent) as f64;
        let scale = (window.duration_secs().max(86_400)) as f64;
        0.5 * (-gap / scale).exp()
    }
}

/// A query variable term with its vocabulary context precomputed, so that
/// scoring many datasets costs only hash lookups per variable.
#[derive(Debug, Clone)]
pub struct PreparedTerm {
    /// The original term.
    pub term: VariableTerm,
    /// Normalized query name.
    name_norm: String,
    /// Normalized canonical spelling, when the synonym table knows it.
    canon_norm: Option<String>,
    /// Normalized expanded spellings (alternates + taxonomy descendants).
    expanded: std::collections::HashSet<String>,
    /// Hierarchy-related canonical names → similarity score
    /// (parent/children 0.8, deep siblings and grandchildren 0.6).
    related: std::collections::HashMap<String, f64>,
}

impl PreparedTerm {
    /// Prepares one term against the vocabulary.
    pub fn prepare(term: &VariableTerm, vocab: &Vocabulary) -> PreparedTerm {
        use metamess_core::text::normalize_term;
        let name_norm = normalize_term(&term.name);
        let canon_norm = vocab.synonyms.resolve(&term.name).map(|(c, _)| normalize_term(c));
        let expanded: std::collections::HashSet<String> =
            vocab.expand_term(&term.name).iter().map(|e| normalize_term(e)).collect();

        // Hierarchy neighbourhood of the canonical concept: parent/children
        // at 0.8; siblings and grandchildren at 0.6 when the shared prefix
        // is at least two levels deep (a shared top-level root like
        // `physical` is not a relationship).
        let mut related: std::collections::HashMap<String, f64> = Default::default();
        if let Some(canon) = &canon_norm {
            for tax in vocab.taxonomies.iter() {
                let Some(path) = tax.path_of(canon) else { continue };
                let mut add = |name: &str, score: f64| {
                    let k = normalize_term(name);
                    let e = related.entry(k).or_insert(0.0);
                    if score > *e {
                        *e = score;
                    }
                };
                for child in tax.children_of(canon) {
                    add(&child, 0.8);
                    if path.len() >= 2 {
                        for grandchild in tax.children_of(&child) {
                            add(&grandchild, 0.6);
                        }
                    }
                }
                if path.len() >= 2 {
                    let parent = &path[path.len() - 2];
                    add(parent, 0.8);
                    if path.len() >= 3 {
                        for sibling in tax.children_of(parent) {
                            if normalize_term(&sibling) != *canon {
                                add(&sibling, 0.6);
                            }
                        }
                    }
                }
            }
        }
        PreparedTerm { term: term.clone(), name_norm, canon_norm, expanded, related }
    }
}

/// Name-match strength between a prepared query term and one variable:
/// exact match scores 1, same-canonical 0.9, expansion (synonym/descendant)
/// 0.85, hierarchy parent/child 0.8 and deep siblings 0.6, otherwise 0.
fn name_similarity(pt: &PreparedTerm, var: &VariableFeature, vocab: &Vocabulary) -> f64 {
    use metamess_core::text::normalize_term;
    let target = var.search_name();
    let target_norm = normalize_term(target);
    if pt.name_norm == target_norm || pt.name_norm == normalize_term(&var.name) {
        return 1.0;
    }
    let canon_var = match vocab.synonyms.resolve(target) {
        Some((c, _)) => normalize_term(c),
        None => target_norm.clone(),
    };
    if pt.canon_norm.as_deref() == Some(canon_var.as_str()) {
        return 0.9;
    }
    if pt.expanded.contains(&target_norm) || pt.expanded.contains(&canon_var) {
        return 0.85;
    }
    if let Some(s) = pt.related.get(&canon_var) {
        return *s;
    }
    0.0
}

/// Range-match strength between the query's desired value range and the
/// variable's observed range: fraction of the query range the variable's
/// range covers. No range in the query → 1; variable lacking numeric data
/// scores a neutral 0.5.
fn range_similarity(range: Option<(f64, f64)>, var: &VariableFeature) -> f64 {
    range_similarity_values(range, var.value_range())
}

/// The value-level body of [`range_similarity`], shared with the
/// allocation-free scorer so both paths run the identical arithmetic.
fn range_similarity_values(range: Option<(f64, f64)>, vrange: Option<(f64, f64)>) -> f64 {
    let Some((qlo, qhi)) = range else { return 1.0 };
    let Some((vlo, vhi)) = vrange else { return 0.5 };
    let lo = qlo.max(vlo);
    let hi = qhi.min(vhi);
    if hi < lo {
        // disjoint: decay with normalized distance between ranges
        let gap = if vhi < qlo { qlo - vhi } else { vlo - qhi };
        let scale = (qhi - qlo).max(1e-9);
        return 0.3 * (-gap / scale).exp();
    }
    let denom = (qhi - qlo).max(1e-9);
    ((hi - lo) / denom).clamp(0.0, 1.0)
}

/// Best-variable similarity for one prepared term: name × range over the
/// dataset's searchable variables.
pub fn prepared_term_score(
    pt: &PreparedTerm,
    dataset: &DatasetFeature,
    vocab: &Vocabulary,
) -> (Option<String>, f64) {
    let mut best: (Option<String>, f64) = (None, 0.0);
    for var in dataset.searchable_variables() {
        let name_s = name_similarity(pt, var, vocab);
        if name_s <= 0.0 {
            continue;
        }
        let s = name_s * range_similarity(pt.term.range, var);
        if s > best.1 {
            best = (Some(var.name.clone()), s);
        }
    }
    best
}

/// Best-variable similarity for one query term (convenience wrapper that
/// prepares the term first; use [`prepared_term_score`] in loops).
pub fn variable_term_score(
    term: &VariableTerm,
    dataset: &DatasetFeature,
    vocab: &Vocabulary,
) -> (Option<String>, f64) {
    prepared_term_score(&PreparedTerm::prepare(term, vocab), dataset, vocab)
}

/// Scores one dataset against a query with pre-prepared terms; the engine
/// calls this once per candidate.
pub fn score_dataset_prepared(
    query: &Query,
    prepared: &[PreparedTerm],
    dataset: &DatasetFeature,
    vocab: &Vocabulary,
) -> ScoreBreakdown {
    let mut b = ScoreBreakdown::default();
    let mut weighted = 0.0;
    let mut total_weight = 0.0;
    if let Some(spatial) = &query.spatial {
        let s = spatial_score(spatial, dataset);
        b.space = Some(s);
        weighted += query.weights.space * s;
        total_weight += query.weights.space;
    }
    if let Some(window) = &query.time {
        let s = temporal_score(window, dataset);
        b.time = Some(s);
        weighted += query.weights.time * s;
        total_weight += query.weights.time;
    }
    if !prepared.is_empty() {
        let mut sum = 0.0;
        for pt in prepared {
            let (matched, s) = prepared_term_score(pt, dataset, vocab);
            b.variable_matches.push((pt.term.name.clone(), matched, s));
            sum += s;
        }
        let s = sum / prepared.len() as f64;
        b.variables = Some(s);
        weighted += query.weights.variables * s;
        total_weight += query.weights.variables;
    }
    b.total = if total_weight > 0.0 { weighted / total_weight } else { 0.0 };
    b
}

/// Scores one dataset against a query; returns the full breakdown.
pub fn score_dataset(
    query: &Query,
    dataset: &DatasetFeature,
    vocab: &Vocabulary,
) -> ScoreBreakdown {
    let prepared: Vec<PreparedTerm> =
        query.variables.iter().map(|t| PreparedTerm::prepare(t, vocab)).collect();
    score_dataset_prepared(query, &prepared, dataset, vocab)
}

/// Normalized name keys for one searchable variable, computed (and
/// interned) once at shard build time. With these in hand, per-candidate
/// scoring is pure hash lookups and float math — no `normalize_term`, no
/// synonym resolution, no `String` per candidate.
///
/// Invariant: every field holds exactly the value the allocating path
/// computes per candidate, so [`score_dataset_fast`] is bit-identical to
/// [`score_dataset_prepared`]'s `total` (asserted in debug builds at
/// materialization, and by the `fast_scorer_*` tests).
#[derive(Debug, Clone)]
pub(crate) struct VarKey {
    /// `normalize_term(&var.name)`.
    name_norm: Arc<str>,
    /// `normalize_term(var.search_name())`.
    search_norm: Arc<str>,
    /// Normalized canonical of `var.search_name()` per the synonym table
    /// (resolved against the **un**-normalized spelling, exactly like
    /// [`name_similarity`] does at query time).
    canon_norm: Option<Arc<str>>,
    /// `var.value_range()`.
    range: Option<(f64, f64)>,
}

/// Interns one normalized spelling: catalogs repeat the same handful of
/// variable names across thousands of datasets, so shard build memory
/// stays proportional to the vocabulary, not the catalog.
pub(crate) fn intern(interner: &mut StdHashSet<Arc<str>>, s: String) -> Arc<str> {
    if let Some(existing) = interner.get(s.as_str()) {
        return existing.clone();
    }
    let arc: Arc<str> = s.into();
    interner.insert(arc.clone());
    arc
}

impl VarKey {
    /// Precomputes the keys for one variable.
    pub(crate) fn build(
        var: &VariableFeature,
        vocab: &Vocabulary,
        interner: &mut StdHashSet<Arc<str>>,
    ) -> VarKey {
        use metamess_core::text::normalize_term;
        VarKey {
            name_norm: intern(interner, normalize_term(&var.name)),
            search_norm: intern(interner, normalize_term(var.search_name())),
            canon_norm: vocab
                .synonyms
                .resolve(var.search_name())
                .map(|(c, _)| intern(interner, normalize_term(c))),
            range: var.value_range(),
        }
    }
}

/// Allocation-free mirror of [`name_similarity`]: every comparison reads a
/// precomputed key instead of re-normalizing the variable's spellings.
fn name_similarity_key(pt: &PreparedTerm, key: &VarKey) -> f64 {
    if pt.name_norm.as_str() == &*key.search_norm || pt.name_norm.as_str() == &*key.name_norm {
        return 1.0;
    }
    let canon_var: &str = key.canon_norm.as_deref().unwrap_or(&key.search_norm);
    if pt.canon_norm.as_deref() == Some(canon_var) {
        return 0.9;
    }
    if pt.expanded.contains(&*key.search_norm) || pt.expanded.contains(canon_var) {
        return 0.85;
    }
    if let Some(s) = pt.related.get(canon_var) {
        return *s;
    }
    0.0
}

/// Allocation-free mirror of [`score_dataset_prepared`] computing only the
/// combined `total` — the number top-k selection ranks by. `var_keys` must
/// be the dataset's searchable variables in iteration order (the shard
/// builds them that way). The arithmetic (operation order, accumulation,
/// best-tracking) is kept line-for-line identical so the result is
/// bit-identical to `breakdown.total`.
pub(crate) fn score_dataset_fast(
    query: &Query,
    prepared: &[PreparedTerm],
    dataset: &DatasetFeature,
    var_keys: &[VarKey],
) -> f64 {
    let mut weighted = 0.0;
    let mut total_weight = 0.0;
    if let Some(spatial) = &query.spatial {
        let s = spatial_score(spatial, dataset);
        weighted += query.weights.space * s;
        total_weight += query.weights.space;
    }
    if let Some(window) = &query.time {
        let s = temporal_score(window, dataset);
        weighted += query.weights.time * s;
        total_weight += query.weights.time;
    }
    if !prepared.is_empty() {
        let mut sum = 0.0;
        for pt in prepared {
            let mut best = 0.0;
            for key in var_keys {
                let name_s = name_similarity_key(pt, key);
                if name_s <= 0.0 {
                    continue;
                }
                let s = name_s * range_similarity_values(pt.term.range, key.range);
                if s > best {
                    best = s;
                }
            }
            sum += best;
        }
        let s = sum / prepared.len() as f64;
        weighted += query.weights.variables * s;
        total_weight += query.weights.variables;
    }
    if total_weight > 0.0 {
        weighted / total_weight
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_core::geo::{GeoBBox, GeoPoint};
    use metamess_core::time::Timestamp;

    fn vocab() -> Vocabulary {
        Vocabulary::observatory_default()
    }

    fn dataset() -> DatasetFeature {
        let mut d = DatasetFeature::new("stations/saturn01/2010/06.csv");
        d.bbox = Some(GeoBBox::point(GeoPoint::new(46.0, -124.0).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2010, 6, 1).unwrap(),
            Timestamp::from_ymd(2010, 6, 30).unwrap(),
        ));
        let mut v = VariableFeature::new("wtemp");
        v.resolve("water_temperature", metamess_core::feature::NameResolution::KnownTranslation);
        v.summary.observe(6.0);
        v.summary.observe(12.0);
        d.variables.push(v);
        let mut qa = VariableFeature::new("qa_level");
        qa.flags.qa = true;
        d.variables.push(qa);
        d
    }

    #[test]
    fn spatial_inside_is_one_outside_decays() {
        let d = dataset();
        let near =
            SpatialTerm::Near { point: GeoPoint::new(46.0, -124.0).unwrap(), radius_km: 25.0 };
        assert_eq!(spatial_score(&near, &d), 1.0);
        let farish =
            SpatialTerm::Near { point: GeoPoint::new(45.5, -124.4).unwrap(), radius_km: 25.0 };
        let s = spatial_score(&farish, &d);
        assert!(s > 0.0 && s < 1.0, "{s}");
        let very_far =
            SpatialTerm::Near { point: GeoPoint::new(10.0, 10.0).unwrap(), radius_km: 25.0 };
        assert!(spatial_score(&very_far, &d) < 1e-6);
    }

    #[test]
    fn spatial_monotone_in_distance() {
        let d = dataset();
        let mk = |lat: f64| SpatialTerm::Near {
            point: GeoPoint::new(lat, -124.0).unwrap(),
            radius_km: 10.0,
        };
        let s1 = spatial_score(&mk(46.2), &d);
        let s2 = spatial_score(&mk(46.8), &d);
        let s3 = spatial_score(&mk(48.0), &d);
        assert!(s1 >= s2 && s2 >= s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn spatial_missing_bbox_zero() {
        let mut d = dataset();
        d.bbox = None;
        let t = SpatialTerm::Near { point: GeoPoint::new(46.0, -124.0).unwrap(), radius_km: 10.0 };
        assert_eq!(spatial_score(&t, &d), 0.0);
    }

    #[test]
    fn region_intersection_scores_one() {
        let d = dataset();
        let r = SpatialTerm::Region(GeoBBox::new(45.9, 46.1, -124.1, -123.9).unwrap());
        assert_eq!(spatial_score(&r, &d), 1.0);
    }

    #[test]
    fn temporal_overlap_beats_gap() {
        let d = dataset();
        let whole_june = TimeInterval::new(
            Timestamp::from_ymd(2010, 6, 1).unwrap(),
            Timestamp::from_ymd(2010, 6, 30).unwrap(),
        );
        assert!(temporal_score(&whole_june, &d) >= 0.99);
        let july = TimeInterval::new(
            Timestamp::from_ymd(2010, 7, 5).unwrap(),
            Timestamp::from_ymd(2010, 7, 20).unwrap(),
        );
        let s_gap = temporal_score(&july, &d);
        assert!(s_gap < 0.5, "{s_gap}");
        let partial = TimeInterval::new(
            Timestamp::from_ymd(2010, 6, 25).unwrap(),
            Timestamp::from_ymd(2010, 7, 10).unwrap(),
        );
        let s_partial = temporal_score(&partial, &d);
        assert!(s_partial > s_gap && s_partial > 0.5, "{s_partial} {s_gap}");
    }

    #[test]
    fn temporal_missing_extent_zero() {
        let mut d = dataset();
        d.time = None;
        let w = TimeInterval::new(Timestamp(0), Timestamp(100));
        assert_eq!(temporal_score(&w, &d), 0.0);
    }

    #[test]
    fn temporal_instant_inside_window() {
        let mut d = dataset();
        d.time = Some(TimeInterval::instant(Timestamp::from_ymd(2010, 6, 15).unwrap()));
        let w = TimeInterval::new(
            Timestamp::from_ymd(2010, 6, 1).unwrap(),
            Timestamp::from_ymd(2010, 6, 30).unwrap(),
        );
        assert_eq!(temporal_score(&w, &d), 1.0);
    }

    #[test]
    fn variable_exact_and_synonym_match() {
        let d = dataset();
        let v = vocab();
        // canonical name matches the resolved variable
        let (m, s) = variable_term_score(
            &VariableTerm { name: "water_temperature".into(), range: None },
            &d,
            &v,
        );
        assert_eq!(m.as_deref(), Some("wtemp"));
        assert_eq!(s, 1.0);
        // query via a curated alternate resolves to the same canonical
        let (m2, s2) =
            variable_term_score(&VariableTerm { name: "t_water".into(), range: None }, &d, &v);
        assert_eq!(m2.as_deref(), Some("wtemp"));
        assert!(s2 >= 0.85, "{s2}");
    }

    #[test]
    fn variable_qa_columns_never_match() {
        let d = dataset();
        let v = vocab();
        let (m, s) =
            variable_term_score(&VariableTerm { name: "qa_level".into(), range: None }, &d, &v);
        assert_eq!(m, None);
        assert_eq!(s, 0.0);
    }

    #[test]
    fn range_overlap_fractions() {
        let d = dataset(); // wtemp range 6..12
        let v = vocab();
        let full = VariableTerm { name: "water_temperature".into(), range: Some((6.0, 12.0)) };
        assert_eq!(variable_term_score(&full, &d, &v).1, 1.0);
        // query 5..10: variable covers 6..10 of it = 0.8
        let part = VariableTerm { name: "water_temperature".into(), range: Some((5.0, 10.0)) };
        let s = variable_term_score(&part, &d, &v).1;
        assert!((s - 0.8).abs() < 1e-9, "{s}");
        // disjoint range scores low
        let cold = VariableTerm { name: "water_temperature".into(), range: Some((0.0, 2.0)) };
        assert!(variable_term_score(&cold, &d, &v).1 < 0.3);
    }

    #[test]
    fn hierarchy_match_scores_between() {
        let v = vocab();
        let mut d = dataset();
        let mut fl = VariableFeature::new("fluores375");
        fl.resolve("fluores375", metamess_core::feature::NameResolution::AlreadyCanonical);
        d.variables.push(fl);
        // querying the grouping concept "fluorescence" finds the leaf
        let (m, s) =
            variable_term_score(&VariableTerm { name: "fluorescence".into(), range: None }, &d, &v);
        assert_eq!(m.as_deref(), Some("fluores375"));
        assert!(s > 0.3 && s < 1.0, "{s}");
    }

    #[test]
    fn combined_score_weights_facets() {
        let d = dataset();
        let v = vocab();
        let q = Query::new()
            .near(46.0, -124.0, 25.0)
            .unwrap()
            .between(
                Timestamp::from_ymd(2010, 6, 1).unwrap(),
                Timestamp::from_ymd(2010, 6, 30).unwrap(),
            )
            .with_variable("water_temperature", None);
        let b = score_dataset(&q, &d, &v);
        assert_eq!(b.space, Some(1.0));
        assert!(b.time.unwrap() >= 0.99);
        assert_eq!(b.variables, Some(1.0));
        assert!(b.total > 0.99);
        assert_eq!(b.variable_matches.len(), 1);
    }

    #[test]
    fn empty_query_scores_zero() {
        let b = score_dataset(&Query::new(), &dataset(), &vocab());
        assert_eq!(b.total, 0.0);
        assert!(b.space.is_none());
    }

    #[test]
    fn fast_scorer_matches_breakdown_total_bitwise() {
        let v = vocab();
        let mut d = dataset();
        let mut fl = VariableFeature::new("fluores375");
        fl.resolve("fluores375", metamess_core::feature::NameResolution::AlreadyCanonical);
        d.variables.push(fl);
        let mut interner = StdHashSet::new();
        let keys: Vec<VarKey> =
            d.searchable_variables().map(|var| VarKey::build(var, &v, &mut interner)).collect();
        let queries = [
            Query::new(),
            Query::new().with_variable("water_temperature", None),
            Query::new().with_variable("t_water", Some((5.0, 10.0))),
            Query::new().with_variable("fluorescence", None).with_variable("salinity", None),
            Query::new()
                .near(45.8, -124.2, 25.0)
                .unwrap()
                .between(
                    Timestamp::from_ymd(2010, 6, 10).unwrap(),
                    Timestamp::from_ymd(2010, 7, 10).unwrap(),
                )
                .with_variable("water_temperature", Some((0.0, 8.0))),
        ];
        for q in &queries {
            let prepared: Vec<PreparedTerm> =
                q.variables.iter().map(|t| PreparedTerm::prepare(t, &v)).collect();
            let slow = score_dataset_prepared(q, &prepared, &d, &v).total;
            let fast = score_dataset_fast(q, &prepared, &d, &keys);
            assert_eq!(fast.to_bits(), slow.to_bits(), "query {q:?}: fast {fast} vs slow {slow}");
        }
    }

    #[test]
    fn interner_dedupes_spellings() {
        let mut i = StdHashSet::new();
        let a = intern(&mut i, "water temperature".to_string());
        let b = intern(&mut i, "water temperature".to_string());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn scores_bounded() {
        let d = dataset();
        let v = vocab();
        let q = Query::new()
            .near(45.0, -120.0, 5.0)
            .unwrap()
            .with_variable("salinity", Some((0.0, 1.0)));
        let b = score_dataset(&q, &d, &v);
        assert!((0.0..=1.0).contains(&b.total));
        for s in [b.space, b.time, b.variables].into_iter().flatten() {
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
