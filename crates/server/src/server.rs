//! The serving loop: a nonblocking readiness loop feeding a bounded
//! worker pool, with graceful drain.
//!
//! Threading model — one event thread (the caller of [`Server::run`]),
//! `workers` service threads, and an optional reload-poll thread:
//!
//! * The **event thread** owns every socket. It accepts, drives each
//!   connection's read/parse/write state machine ([`crate::conn`]) on
//!   readiness (epoll/poll via [`crate::event_loop`], no async runtime),
//!   enforces all deadlines (idle, 408 read, write stall), and hands only
//!   *complete* requests to the worker pool. A slow-loris client costs
//!   one admission slot and a few bytes of buffer — never a worker.
//! * **Workers** pull complete requests from a bounded job queue, run the
//!   handler (panic-isolated: a panicking handler answers `500`, counted
//!   in `metamess_server_panics_total`, and the worker lives), serialize
//!   the response, and post it back to the event thread through a
//!   completion list plus an eventfd wake.
//! * **Load shedding** is two-layer and still answers `503 Retry-After: 1`
//!   in microseconds: admission caps concurrent connections at
//!   `workers + queue_depth` (a pre-serialized 503 is written inline on
//!   accept beyond that), and a parsed request that finds the job queue
//!   full is shed the same way. With `queue_depth = 0` every request is
//!   refused deterministically — the E8 shed scenario.
//! * **Shutdown** (signal or [`crate::ShutdownHandle::trigger`]) stops
//!   accepting, closes idle keep-alive connections, and lets every
//!   connection with a request in flight finish, bounded by
//!   `drain_timeout`. Leftovers past the deadline are answered 503 and
//!   counted `dropped` (also `metamess_server_drained_dropped_total`).
//!   Worker joins are bounded by the configurable `drain_grace`.

use crate::http::{Limits, Request, Response};
use crate::pool::BoundedQueue;
use crate::shutdown::ShutdownHandle;
use crate::state::ServeState;
use metamess_core::{Error, Result};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound for `--workers`: beyond this, threads thrash instead of
/// serving (clamped, like every other limit in the workspace).
pub const MAX_WORKERS: usize = 256;

/// Upper bound for `--queue-depth`: the shed threshold also caps
/// admitted connections, so this bounds event-loop memory.
pub const MAX_QUEUE_DEPTH: usize = 4096;

/// Clamps a worker count into `1..=MAX_WORKERS`.
pub fn clamp_workers(workers: usize) -> usize {
    workers.clamp(1, MAX_WORKERS)
}

/// Clamps a queue depth into `0..=MAX_QUEUE_DEPTH` (0 is a legitimate
/// shed-everything configuration, exercised by E8).
pub fn clamp_queue_depth(depth: usize) -> usize {
    depth.min(MAX_QUEUE_DEPTH)
}

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Service threads.
    pub workers: usize,
    /// Requests allowed to wait beyond the workers; the shed threshold
    /// (and, with `workers`, the connection admission cap).
    pub queue_depth: usize,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Deadline for writing a response once it is ready.
    pub request_timeout: Duration,
    /// How long shutdown waits for in-flight work to drain.
    pub drain_timeout: Duration,
    /// How long shutdown waits for worker threads to join after the
    /// drain completes (`--drain-grace-ms`; a worker pinned by a stalled
    /// handler is abandoned past this rather than holding exit hostage).
    pub drain_grace: Duration,
    /// Interval for the store-change poll (`None` disables polling;
    /// `POST /admin/reload` still works).
    pub poll_interval: Option<Duration>,
    /// Read-side request bounds.
    pub limits: Limits,
    /// Slow-query threshold in ms (`--slow-ms`): traces whose root span
    /// reaches it enter the slow-query log regardless of sampling.
    pub slow_ms: u64,
    /// Head-sampling rate for the flight recorder
    /// (`--trace-sample-rate`; clamped into `0.0..=1.0` at bind).
    pub trace_sample_rate: f64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            idle_timeout: Duration::from_secs(30),
            request_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(5),
            drain_grace: Duration::from_millis(500),
            poll_interval: Some(Duration::from_secs(2)),
            limits: Limits::default(),
            slow_ms: 100,
            trace_sample_rate: 1.0,
        }
    }
}

/// What one server lifetime did.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct ServeSummary {
    /// Requests answered (including 4xx).
    pub served: u64,
    /// Connections/requests shed with 503 (admission cap or full queue).
    pub shed: u64,
    /// Connections still mid-request when the drain deadline expired.
    pub dropped: u64,
    /// Hot reloads that swapped an epoch.
    pub reloads: u64,
}

/// A complete request handed to the worker pool, tagged with the token of
/// the connection that must receive the response.
pub(crate) struct Job {
    pub(crate) token: u64,
    pub(crate) request: Request,
}

/// A serialized response on its way back to the event thread.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
    shutdown: ShutdownHandle,
}

impl Server {
    /// Binds the listener (so callers can learn the port before serving).
    /// `workers` and `queue_depth` are clamped to their documented bounds
    /// here, so every entry path — CLI, tests, embedding — is covered.
    pub fn bind(state: Arc<ServeState>, mut config: ServerConfig) -> Result<Server> {
        config.workers = clamp_workers(config.workers);
        config.queue_depth = clamp_queue_depth(config.queue_depth);
        config.trace_sample_rate =
            metamess_telemetry::trace::clamp_sample_rate(config.trace_sample_rate);
        state.set_trace_config(config.slow_ms, config.trace_sample_rate);
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::io(format!("bind {}", config.addr), e))?;
        Ok(Server { listener, state, config, shutdown: ShutdownHandle::new() })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener.local_addr().map_err(|e| Error::io("local_addr", e))
    }

    /// A handle that triggers graceful shutdown from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Serves until shutdown, then drains and reports. Blocks the calling
    /// thread (it becomes the event thread).
    #[cfg(unix)]
    pub fn run(self) -> Result<ServeSummary> {
        imp::run(self)
    }

    /// Serving requires a unix readiness primitive.
    #[cfg(not(unix))]
    pub fn run(self) -> Result<ServeSummary> {
        Err(Error::invalid("metamess serve requires a unix platform"))
    }
}

#[cfg(unix)]
mod imp {
    use super::*;
    use crate::conn::{Conn, ConnState, ReadEvent, WriteEvent};
    use crate::event_loop::{Event, Interest, Poller, Waker};
    use crate::http::{self};
    use crate::{handlers, metrics};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::io::Write as _;
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    /// The listener's poller token.
    const TOKEN_LISTENER: u64 = 0;
    /// The waker's poller token.
    const TOKEN_WAKER: u64 = 1;
    /// First connection token; tokens only ever increase, so a stale
    /// completion or event can never alias a newer connection.
    const TOKEN_FIRST_CONN: u64 = 2;
    /// Poll tick: upper bound on deadline/shutdown detection latency.
    const TICK: Duration = Duration::from_millis(25);

    /// The shed 503 for one rejection: trace-id-stamped (fresh id per
    /// shed, so the rejected client can quote it back) when telemetry is
    /// on, the borrowed static blob — zero allocations — when it is off.
    fn shed_payload() -> std::borrow::Cow<'static, [u8]> {
        if metamess_telemetry::enabled() {
            let id = metamess_telemetry::trace::TraceContext::start(0.0).trace_id;
            std::borrow::Cow::Owned(http::shed_response_stamped(id))
        } else {
            std::borrow::Cow::Borrowed(http::shed_response_bytes())
        }
    }

    pub(super) fn run(server: Server) -> Result<ServeSummary> {
        let Server { listener, state, config, shutdown } = server;
        let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));
        let completions = Arc::new(Mutex::new(Vec::<Completion>::new()));
        let drain_complete = Arc::new(AtomicBool::new(false));

        let poller = Poller::new().map_err(|e| Error::io("create poller", e))?;
        let waker = Arc::new(Waker::new().map_err(|e| Error::io("create waker", e))?);
        listener.set_nonblocking(true).map_err(|e| Error::io("set_nonblocking", e))?;
        poller
            .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .map_err(|e| Error::io("register listener", e))?;
        poller
            .register(waker.fd(), TOKEN_WAKER, Interest::READ)
            .map_err(|e| Error::io("register waker", e))?;

        let mut threads = Vec::new();
        for i in 0..config.workers {
            let queue = queue.clone();
            let completions = completions.clone();
            let waker = waker.clone();
            let state = state.clone();
            let shutdown = shutdown.clone();
            let drain_complete = drain_complete.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("metamess-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &queue,
                            &completions,
                            &waker,
                            &state,
                            &shutdown,
                            &drain_complete,
                        )
                    })
                    .map_err(|e| Error::io("spawn worker", e))?,
            );
        }
        if let Some(interval) = config.poll_interval {
            let state = state.clone();
            let shutdown = shutdown.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("metamess-reload-poll".to_string())
                    .spawn(move || poll_loop(&state, &shutdown, interval))
                    .map_err(|e| Error::io("spawn reload poll", e))?,
            );
        }

        let mut lp = EventLoop {
            poller,
            conns: HashMap::new(),
            next_token: TOKEN_FIRST_CONN,
            queue: &queue,
            config: &config,
            max_conns: config.workers.saturating_add(config.queue_depth),
            served: 0,
            shed: 0,
            dropped: 0,
            draining: false,
        };

        let mut events: Vec<Event> = Vec::with_capacity(128);
        let result = (|| -> Result<()> {
            while !shutdown.is_shutdown() {
                lp.poller.wait(&mut events, Some(TICK)).map_err(|e| Error::io("poll wait", e))?;
                let now = Instant::now();
                for ev in &events {
                    match ev.token {
                        TOKEN_LISTENER => lp.accept_ready(&listener, now)?,
                        TOKEN_WAKER => waker.drain(),
                        token => lp.drive(token, ev, now),
                    }
                }
                lp.apply_completions(&completions, now);
                lp.sweep(now);
            }

            // ── drain ──────────────────────────────────────────────────
            lp.draining = true;
            let _ = lp.poller.deregister(listener.as_raw_fd());
            drop(listener);
            let deadline = Instant::now() + config.drain_timeout;
            while !lp.conns.is_empty() && Instant::now() < deadline {
                lp.poller.wait(&mut events, Some(TICK)).map_err(|e| Error::io("drain wait", e))?;
                let now = Instant::now();
                for ev in &events {
                    match ev.token {
                        TOKEN_LISTENER => {}
                        TOKEN_WAKER => waker.drain(),
                        token => lp.drive(token, ev, now),
                    }
                }
                lp.apply_completions(&completions, now);
                lp.sweep(now);
            }
            // Past the deadline: un-started jobs are abandoned and their
            // connections — like every other leftover — answered 503.
            let _ = lp.queue.drain();
            let leftovers: Vec<u64> = lp.conns.keys().copied().collect();
            for token in leftovers {
                lp.dropped += 1;
                metrics::record_drained_drop();
                if let Some(conn) = lp.conns.get_mut(&token) {
                    let _ = conn.stream.write(&shed_payload());
                }
                lp.close(token);
            }
            metrics::set_queue_depth(0);
            Ok(())
        })();

        // Whatever happened, release the workers: queue is drained (or the
        // error path abandons it), the flag lets them exit.
        let _ = queue.drain();
        drain_complete.store(true, Ordering::SeqCst);
        shutdown.trigger();
        let join_deadline = Instant::now() + config.drain_grace;
        for t in threads {
            while !t.is_finished() && Instant::now() < join_deadline {
                std::thread::sleep(Duration::from_millis(10));
            }
            if t.is_finished() {
                let _ = t.join();
            }
        }
        result?;

        Ok(ServeSummary {
            served: lp.served,
            shed: lp.shed,
            dropped: lp.dropped,
            reloads: state.reloads(),
        })
    }

    /// The single-threaded event loop state. All socket ownership and all
    /// counters live here; workers only ever see `Job`s and `Completion`s.
    struct EventLoop<'a> {
        poller: Poller,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        queue: &'a BoundedQueue<Job>,
        config: &'a ServerConfig,
        max_conns: usize,
        served: u64,
        shed: u64,
        dropped: u64,
        draining: bool,
    }

    impl EventLoop<'_> {
        /// Accepts until the listener would block. Connections beyond the
        /// admission cap get the pre-serialized 503 written best-effort
        /// (nonblocking — a hostile peer cannot stall the event thread)
        /// and are closed.
        fn accept_ready(&mut self, listener: &TcpListener, now: Instant) -> Result<()> {
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        metrics::record_connection();
                        if self.conns.len() >= self.max_conns {
                            self.shed += 1;
                            metrics::record_shed();
                            let _ = stream.set_nonblocking(true);
                            let _ = (&stream).write(&shed_payload());
                            continue; // drop closes
                        }
                        let conn = match Conn::new(stream, now) {
                            Ok(c) => c,
                            Err(_) => continue,
                        };
                        let token = self.next_token;
                        self.next_token += 1;
                        if self
                            .poller
                            .register(conn.stream.as_raw_fd(), token, Interest::READ)
                            .is_err()
                        {
                            continue; // drop closes
                        }
                        metrics::conn_opened();
                        self.conns.insert(token, conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(Error::io("accept", e)),
                }
            }
        }

        /// Routes one readiness event to the owning connection.
        fn drive(&mut self, token: u64, ev: &Event, now: Instant) {
            let Some(conn) = self.conns.get(&token) else { return }; // stale
            match conn.state {
                ConnState::Writing if ev.writable || ev.hangup => self.pump_write(token, now),
                ConnState::Reading if ev.readable || ev.hangup => self.pump_read(token, now),
                // Dispatched: backpressure — a hangup surfaces when the
                // completion tries to write.
                _ => {}
            }
        }

        /// Pumps the read side; a completed request is dispatched.
        fn pump_read(&mut self, token: u64, now: Instant) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let limits = &self.config.limits;
            match conn.on_readable(limits, now) {
                ReadEvent::NeedMore => {}
                ReadEvent::Request(request) => self.dispatch(token, request, now),
                ReadEvent::Bad { status, message } => {
                    self.answer_error(token, status, message, now)
                }
                ReadEvent::Closed => self.close(token),
            }
            self.sync_interest(token);
        }

        /// Hands a complete request to the worker pool, or sheds it with
        /// an inline 503 when the job queue is full.
        fn dispatch(&mut self, token: u64, request: Request, now: Instant) {
            match self.queue.try_push(Job { token, request }) {
                Ok(()) => {
                    self.served += 1;
                    metrics::set_queue_depth(self.queue.len());
                }
                Err(_job) => {
                    self.shed += 1;
                    metrics::record_shed();
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.begin_write(
                            shed_payload().into_owned(),
                            true,
                            now + self.config.request_timeout,
                        );
                    }
                    self.pump_write(token, now);
                }
            }
        }

        /// Answers a protocol error (400/408/413/501) and closes.
        fn answer_error(&mut self, token: u64, status: u16, message: String, now: Instant) {
            metrics::record_request("invalid", status, 0);
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let mut bytes = Vec::with_capacity(160);
            let mut response = Response::text(status, message);
            if metamess_telemetry::enabled() {
                // Protocol errors never reach the handler's tracer; mint
                // an id anyway so even a 400 is correlatable in logs (shed
                // 503s get theirs stamped into the template the same way).
                let ctx = metamess_telemetry::trace::TraceContext::start(1.0);
                response = response.with_header("x-metamess-trace-id", ctx.trace_id_hex());
            }
            response.serialize_into(&mut bytes, false);
            conn.begin_write(bytes, true, now + self.config.request_timeout);
            self.pump_write(token, now);
        }

        /// Pumps the write side; on completion either closes or re-enters
        /// keep-alive (immediately parsing carried pipelined bytes).
        fn pump_write(&mut self, token: u64, now: Instant) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            match conn.on_writable() {
                WriteEvent::NeedMore => self.sync_interest(token),
                WriteEvent::Closed => self.close(token),
                WriteEvent::Done => {
                    if conn.close_after_write || self.draining {
                        self.close(token);
                        return;
                    }
                    let limits = &self.config.limits;
                    match conn.advance_keep_alive(limits, now) {
                        ReadEvent::NeedMore => self.sync_interest(token),
                        ReadEvent::Request(request) => {
                            self.dispatch(token, request, now);
                            self.sync_interest(token);
                        }
                        ReadEvent::Bad { status, message } => {
                            self.answer_error(token, status, message, now)
                        }
                        ReadEvent::Closed => self.close(token),
                    }
                }
            }
        }

        /// Applies worker completions: stale tokens (connection already
        /// timed out or dropped) are ignored safely.
        fn apply_completions(&mut self, completions: &Mutex<Vec<Completion>>, now: Instant) {
            let batch: Vec<Completion> = std::mem::take(&mut *completions.lock());
            for c in batch {
                let Some(conn) = self.conns.get_mut(&c.token) else { continue };
                if conn.state != ConnState::Dispatched {
                    continue;
                }
                conn.begin_write(c.bytes, !c.keep_alive, now + self.config.request_timeout);
                self.pump_write(c.token, now);
            }
        }

        /// Enforces deadlines: 408 for stalled request reads, silent close
        /// for idle keep-alive connections and stalled writers. During
        /// drain, idle connections are closed immediately.
        fn sweep(&mut self, now: Instant) {
            let mut to_408: Vec<u64> = Vec::new();
            let mut to_close: Vec<u64> = Vec::new();
            for (&token, conn) in &self.conns {
                match conn.state {
                    ConnState::Reading => {
                        if conn.read_deadline.is_some_and(|d| now >= d) {
                            to_408.push(token);
                        } else if conn.is_idle()
                            && (self.draining
                                || now.duration_since(conn.idle_since) >= self.config.idle_timeout)
                        {
                            to_close.push(token);
                        }
                    }
                    ConnState::Writing => {
                        if conn.write_deadline.is_some_and(|d| now >= d) {
                            to_close.push(token);
                        }
                    }
                    ConnState::Dispatched => {}
                }
            }
            for token in to_408 {
                metrics::record_conn_timeout();
                let message = match self.conns.get(&token) {
                    Some(c) if c.head_complete() => "timed out reading request body",
                    _ => "timed out reading request head",
                };
                self.answer_error(token, 408, message.to_string(), now);
            }
            for token in to_close {
                metrics::record_conn_timeout();
                self.close(token);
            }
        }

        /// Syncs the poller's interest with the connection's state.
        fn sync_interest(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            let want = match conn.state {
                ConnState::Reading => Interest::READ,
                ConnState::Dispatched => Interest::NONE,
                ConnState::Writing => Interest::WRITE,
            };
            if want != conn.registered {
                if self.poller.modify(conn.stream.as_raw_fd(), token, want).is_err() {
                    self.close(token);
                    return;
                }
                conn.registered = want;
            }
        }

        /// Removes a connection (deregisters, closes, balances the gauge).
        fn close(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
                metrics::conn_closed();
            }
        }
    }

    /// One worker: pop a complete request, handle it (panic-isolated),
    /// serialize the response, post the completion, wake the event thread.
    fn worker_loop(
        queue: &BoundedQueue<Job>,
        completions: &Mutex<Vec<Completion>>,
        waker: &Waker,
        state: &ServeState,
        shutdown: &ShutdownHandle,
        drain_complete: &AtomicBool,
    ) {
        loop {
            match queue.pop(Duration::from_millis(50)) {
                Some(job) => {
                    metrics::set_queue_depth(queue.len());
                    let start = Instant::now();
                    let (route, response) =
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handlers::handle(state, &job.request)
                        })) {
                            Ok(answered) => answered,
                            Err(_) => {
                                metrics::record_panic();
                                // The handler unwound mid-trace: finish the
                                // orphaned trace (it still documents what
                                // the request did before dying) so this
                                // worker's next request can begin afresh.
                                let response = Response::text(500, "internal error");
                                let response = match metamess_telemetry::trace::end(u64::MAX) {
                                    Some(fin) => response
                                        .with_header("x-metamess-trace-id", fin.trace_id_hex()),
                                    None => response,
                                };
                                ("panic", response)
                            }
                        };
                    // During drain, answer but close: no new keep-alive
                    // cycles once shutdown has been requested.
                    let keep_alive = job.request.wants_keep_alive() && !shutdown.is_shutdown();
                    metrics::record_request(
                        route,
                        response.status,
                        start.elapsed().as_micros() as u64,
                    );
                    let mut bytes = Vec::with_capacity(response.body.len() + 160);
                    response.serialize_into(&mut bytes, keep_alive);
                    completions.lock().push(Completion { token: job.token, bytes, keep_alive });
                    waker.wake();
                }
                // Exit only once the event loop has finished draining AND
                // the queue is empty — dispatched work is never abandoned
                // by a live worker.
                None => {
                    if drain_complete.load(Ordering::SeqCst) && queue.is_empty() {
                        return;
                    }
                }
            }
        }
    }

    /// Polls the store signature, hot-reloading when a publish lands.
    /// Errors are swallowed: the fault model says a failed reopen keeps
    /// the previous epoch serving.
    fn poll_loop(state: &ServeState, shutdown: &ShutdownHandle, interval: Duration) {
        let mut last = Instant::now();
        while !shutdown.is_shutdown() {
            std::thread::sleep(Duration::from_millis(50).min(interval));
            if last.elapsed() >= interval {
                let _ = state.poll_reload();
                last = Instant::now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_and_queue_clamps() {
        assert_eq!(clamp_workers(0), 1);
        assert_eq!(clamp_workers(4), 4);
        assert_eq!(clamp_workers(usize::MAX), MAX_WORKERS);
        assert_eq!(clamp_queue_depth(0), 0, "queue depth 0 is shed-everything, kept");
        assert_eq!(clamp_queue_depth(64), 64);
        assert_eq!(clamp_queue_depth(usize::MAX), MAX_QUEUE_DEPTH);
    }

    #[test]
    fn default_config_is_within_clamped_bounds() {
        let c = ServerConfig::default();
        assert_eq!(clamp_workers(c.workers), c.workers);
        assert_eq!(clamp_queue_depth(c.queue_depth), c.queue_depth);
        assert!(c.drain_grace > Duration::ZERO);
    }
}
