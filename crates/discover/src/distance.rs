//! String distances for nearest-neighbour clustering.
//!
//! Refine's kNN clustering offers Levenshtein distance; we add the OSA
//! (transposition-aware) variant and a bounded early-exit implementation so
//! clustering scales to large value sets.

/// Levenshtein edit distance (insert/delete/substitute, unit costs),
/// computed over Unicode scalar values with a rolling single-row DP.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let val = (row[j] + 1).min(row[j + 1] + 1).min(prev_diag + cost);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// Bounded Levenshtein: returns `Some(d)` when `d <= max`, else `None`.
/// Uses the banded DP, O(max · min(|a|,|b|)).
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (a, b) = if a.len() > b.len() { (b, a) } else { (a, b) };
    if b.len() - a.len() > max {
        return None;
    }
    if a.is_empty() {
        return if b.len() <= max { Some(b.len()) } else { None };
    }
    const BIG: usize = usize::MAX / 2;
    let mut row: Vec<usize> = (0..=b.len()).map(|j| if j <= max { j } else { BIG }).collect();
    for (i, &ca) in a.iter().enumerate() {
        let lo = (i + 1).saturating_sub(max);
        let hi = (i + 1 + max).min(b.len());
        let mut row_min = BIG;
        let mut prev_diag;
        if lo == 0 {
            prev_diag = row[0];
            row[0] = i + 1;
            row_min = i + 1;
        } else {
            // Outside the band on the left.
            prev_diag = row[lo - 1];
            row[lo - 1] = BIG;
        }
        for j in lo.max(1)..=hi {
            let cb = b[j - 1];
            let cost = if ca == cb { 0 } else { 1 };
            let up = row[j];
            let left = if j >= 1 { row[j - 1] } else { BIG };
            let val = (left.saturating_add(1))
                .min(up.saturating_add(1))
                .min(prev_diag.saturating_add(cost));
            prev_diag = up;
            row[j] = val;
            row_min = row_min.min(val);
        }
        // Cells right of the band stay invalid.
        for cell in row.iter_mut().skip(hi + 1) {
            *cell = BIG;
        }
        if row_min > max {
            return None;
        }
    }
    let d = row[b.len()];
    if d <= max {
        Some(d)
    } else {
        None
    }
}

/// Optimal string alignment distance: Levenshtein plus adjacent
/// transposition (catches the classic `temperatrue` typo at distance 1).
pub fn osa_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, item) in d.iter_mut().enumerate() {
        item[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
            let mut v = (d[i - 1][j] + 1).min(d[i][j - 1] + 1).min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                v = v.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = v;
        }
    }
    d[n][m]
}

/// Normalized edit distance in `[0, 1]`: OSA distance divided by the longer
/// length (0 = identical, 1 = nothing shared).
pub fn normalized_distance(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let longest = la.max(lb);
    if longest == 0 {
        return 0.0;
    }
    osa_distance(a, b) as f64 / longest as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push(ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> =
        b.iter().zip(b_used.iter()).filter(|(_, u)| **u).map(|(c, _)| *c).collect();
    let t = matches_a.iter().zip(matches_b.iter()).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by shared prefix (up to 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("air_temperature", "air_temperatrue"), 2);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn osa_counts_transposition_as_one() {
        assert_eq!(osa_distance("air_temperature", "air_temperatrue"), 1);
        assert_eq!(osa_distance("ab", "ba"), 1);
        assert_eq!(osa_distance("abc", "abc"), 0);
        assert_eq!(osa_distance("ca", "abc"), 3);
    }

    #[test]
    fn bounded_agrees_with_full() {
        let pairs = [
            ("kitten", "sitting"),
            ("airtemp", "air_temp"),
            ("salinity", "salinty"),
            ("a", "zzzz"),
            ("", "xy"),
            ("same", "same"),
        ];
        for (a, b) in pairs {
            let full = levenshtein(a, b);
            for max in 0..6 {
                let bounded = levenshtein_bounded(a, b, max);
                if full <= max {
                    assert_eq!(bounded, Some(full), "{a} {b} max={max}");
                } else {
                    assert_eq!(bounded, None, "{a} {b} max={max}");
                }
            }
        }
    }

    #[test]
    fn bounded_length_gap_short_circuit() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn normalized_bounds() {
        assert_eq!(normalized_distance("", ""), 0.0);
        assert_eq!(normalized_distance("abc", "abc"), 0.0);
        assert_eq!(normalized_distance("abc", "xyz"), 1.0);
        let d = normalized_distance("airtemp", "air_temp");
        assert!(d > 0.0 && d < 0.5, "{d}");
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro_winkler("martha", "marhta") - 0.961111).abs() < 1e-4);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
    }

    #[test]
    fn jaro_winkler_prefers_shared_prefix() {
        let jw_pref = jaro_winkler("temperature", "temperatur");
        let jw_nopref = jaro_winkler("temperature", "emperaturet");
        assert!(jw_pref > jw_nopref);
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("über", "uber"), 1);
        assert_eq!(osa_distance("naïve", "naive"), 1);
    }
}
