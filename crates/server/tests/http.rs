//! Socket-level integration tests: real `TcpStream` clients driving a
//! running server thread through the robustness properties the crate
//! promises — protocol errors, size bounds, keep-alive reuse, concurrent
//! correctness, deterministic shedding, graceful drain, and hot reload.

use metamess_core::{DatasetFeature, DurableCatalog, StoreOptions, VariableFeature};
use metamess_server::{Limits, ServeState, ServeSummary, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn fixture_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metamess-http-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut store = DurableCatalog::open(dir.join("catalog"), StoreOptions::default()).unwrap();
    let mut ctd = DatasetFeature::new("2014/07/saturn01_ctd.csv");
    ctd.variables.push(VariableFeature::new("water_temperature"));
    store.put(ctd).unwrap();
    store.put(DatasetFeature::new("2014/07/jetty_met.csv")).unwrap();
    store.checkpoint().unwrap();
    drop(store);
    dir
}

struct TestServer {
    addr: SocketAddr,
    dir: PathBuf,
    shutdown: ShutdownHandle,
    thread: JoinHandle<metamess_core::Result<ServeSummary>>,
}

impl TestServer {
    fn stop(self) -> ServeSummary {
        self.shutdown.trigger();
        self.thread.join().expect("server thread").expect("serve summary")
    }
}

/// Binds a server on a free port over the given store and runs it on a
/// background thread. Tests tweak the config through the closure.
fn serve(dir: PathBuf, tweak: impl FnOnce(&mut ServerConfig)) -> TestServer {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        idle_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(5),
        drain_grace: Duration::from_millis(500),
        poll_interval: None,
        limits: Limits::default(),
        ..ServerConfig::default()
    };
    tweak(&mut config);
    let state = Arc::new(ServeState::open(&dir).expect("open store"));
    let server = Server::bind(state, config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    TestServer { addr, dir, shutdown, thread }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream
}

/// Reads exactly one response off the stream: status, lowercased headers,
/// and a `Content-Length`-delimited body.
fn read_response(stream: &mut TcpStream) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before a full head: {:?}", String::from_utf8_lossy(&buf));
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 =
        status_line.split(' ').nth(1).expect("status code").parse().expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter(|l| !l.is_empty())
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .unwrap_or(0);
    let mut body = buf.split_off(head_end);
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// One-shot exchange: connect, write the raw request bytes, read one
/// response.
fn raw(addr: SocketAddr, bytes: &[u8]) -> (u16, Vec<(String, String)>, Vec<u8>) {
    let mut stream = connect(addr);
    stream.write_all(bytes).expect("write request");
    read_response(&mut stream)
}

fn get_bytes(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: test\r\nconnection: close\r\n\r\n").into_bytes()
}

fn post_bytes(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(addr: SocketAddr, path: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    raw(addr, &get_bytes(path))
}

fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, Vec<(String, String)>, Vec<u8>) {
    raw(addr, &post_bytes(path, body))
}

#[test]
fn malformed_request_line_is_400() {
    let server = serve(fixture_store("malformed"), |_| {});
    let (status, _, body) = raw(server.addr, b"this is not http\r\n\r\n");
    assert_eq!(status, 400, "{:?}", String::from_utf8_lossy(&body));
    server.stop();
}

#[test]
fn oversized_head_is_413() {
    let server = serve(fixture_store("bighead"), |c| c.limits.max_header_bytes = 256);
    let mut request = b"GET /healthz HTTP/1.1\r\nx-pad: ".to_vec();
    request.extend(std::iter::repeat(b'a').take(1024));
    // No terminating blank line: the head keeps growing past the cap.
    let (status, _, _) = raw(server.addr, &request);
    assert_eq!(status, 413);
    server.stop();
}

#[test]
fn oversized_body_is_413_without_reading_it() {
    let server = serve(fixture_store("bigbody"), |_| {});
    // Default cap is 1 MiB; announce more and send nothing — the 413 must
    // arrive from the Content-Length header alone.
    let (status, _, _) =
        raw(server.addr, b"POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: 9999999\r\n\r\n");
    assert_eq!(status, 413);
    server.stop();
}

#[test]
fn unknown_route_is_404_and_wrong_method_is_405_with_allow() {
    let server = serve(fixture_store("routes"), |_| {});
    let (status, _, _) = get(server.addr, "/nope");
    assert_eq!(status, 404);
    let (status, headers, _) = get(server.addr, "/search");
    assert_eq!(status, 405);
    assert_eq!(header(&headers, "allow"), Some("POST"));
    server.stop();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = serve(fixture_store("keepalive"), |_| {});
    let mut stream = connect(server.addr);
    for i in 0..3 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
        let (status, headers, body) = read_response(&mut stream);
        assert_eq!(status, 200, "request {i}");
        assert_eq!(header(&headers, "connection"), Some("keep-alive"), "request {i}");
        let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["status"], "ok");
    }
    // An explicit close is honored: response says close, then EOF.
    stream.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n").unwrap();
    let (status, headers, _) = read_response(&mut stream);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("close"));
    let mut extra = [0u8; 1];
    assert_eq!(stream.read(&mut extra).expect("read after close"), 0, "expected EOF");
    let summary = server.stop();
    assert_eq!(summary.served, 4);
}

#[test]
fn pipelined_requests_in_one_segment_are_both_served() {
    let server = serve(fixture_store("pipeline"), |_| {});
    let mut stream = connect(server.addr);
    // Both requests in a single write: the second one's bytes arrive in
    // the same read as the first one's body, and must be carried over to
    // the next request instead of being truncated away.
    let body = r#"{"q":"with water_temperature"}"#;
    let mut bytes =
        format!("POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}", body.len())
            .into_bytes();
    bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n");
    stream.write_all(&bytes).unwrap();
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&body));
    let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert!(v["count"].as_u64().unwrap() >= 1, "{v}");
    let (status, _, body) = read_response(&mut stream);
    assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&body));
    let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(v["status"], "ok");
    let summary = server.stop();
    assert_eq!(summary.served, 2);
}

#[test]
fn absurd_limit_is_clamped_not_fatal() {
    let server = serve(fixture_store("hugelimit"), |_| {});
    // Used to panic the worker thread (unclamped TopK preallocation); a
    // few of these would permanently disable the whole pool.
    for _ in 0..4 {
        let (status, _, body) = post(
            server.addr,
            "/search",
            r#"{"q":"with water_temperature","limit":18446744073709551615}"#,
        );
        assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&body));
    }
    // The pool is still alive and serving.
    let (status, _, _) = get(server.addr, "/healthz");
    assert_eq!(status, 200);
    server.stop();
}

#[test]
fn concurrent_responses_match_single_threaded_bit_for_bit() {
    let server = serve(fixture_store("concurrent"), |c| c.workers = 4);
    let requests: Vec<Vec<u8>> = vec![
        post_bytes("/search", r#"{"q":"with water_temperature"}"#),
        get_bytes("/datasets/2014/07/jetty_met.csv"),
        get_bytes("/browse"),
    ];
    let baseline: Vec<(u16, Vec<u8>)> = requests
        .iter()
        .map(|r| {
            let (status, _, body) = raw(server.addr, r);
            (status, body)
        })
        .collect();
    let addr = server.addr;
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let requests = requests.clone();
            let baseline = baseline.clone();
            std::thread::spawn(move || {
                for i in 0..6 {
                    let which = (t + i) % requests.len();
                    let (status, _, body) = raw(addr, &requests[which]);
                    assert_eq!(status, baseline[which].0, "thread {t} request {i}");
                    assert_eq!(body, baseline[which].1, "thread {t} request {i} body diverged");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    let summary = server.stop();
    assert_eq!(summary.served as usize, 3 + 4 * 6);
    assert_eq!(summary.dropped, 0);
}

#[test]
fn full_queue_sheds_with_503_and_retry_after() {
    let server = serve(fixture_store("shed"), |c| {
        c.workers = 1;
        c.queue_depth = 1;
    });
    // The admission cap is workers + queue_depth = 2 connections. A holds
    // one slot with a started-but-incomplete request...
    let mut a = connect(server.addr);
    a.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n").unwrap();
    // ...and B holds the other as a served keep-alive connection. Reading
    // B's response also proves A (accepted first) is registered by now.
    let mut b = connect(server.addr);
    b.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n").unwrap();
    let (status, headers, _) = read_response(&mut b);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("keep-alive"));
    // C arrives over the cap: an immediate pre-serialized 503, never a
    // hang — the event thread writes it at accept without queueing.
    let (status, headers, _) = raw(server.addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 503);
    assert_eq!(header(&headers, "retry-after"), Some("1"));
    if metamess_telemetry::enabled() {
        // Even a shed client gets a trace id to quote back: the template
        // is stamped with a fresh id per rejection.
        let id = header(&headers, "x-metamess-trace-id").expect("shed 503 carries a trace id");
        assert_eq!(id.len(), 32, "trace id is 128-bit hex: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "non-hex trace id: {id}");
        assert!(id.chars().any(|c| c != '0'), "shed trace id never zero: {id}");
    }
    // A's slot was healthy all along: completing the request serves it.
    a.write_all(b"connection: close\r\n\r\n").unwrap();
    let (status, _, _) = read_response(&mut a);
    assert_eq!(status, 200);
    let summary = server.stop();
    assert_eq!(summary.shed, 1);
    assert_eq!(summary.dropped, 0);
    assert_eq!(summary.served, 2);
}

#[test]
fn graceful_shutdown_drains_queued_requests() {
    let server = serve(fixture_store("drain"), |c| c.workers = 1);
    // A and B are both mid-request (heads started, not finished) when the
    // shutdown lands: the drain must keep reading, parsing, and serving
    // until every accepted connection has been answered.
    let mut a = connect(server.addr);
    a.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n").unwrap();
    let mut b = connect(server.addr);
    b.write_all(b"GET /browse HTTP/1.1\r\nhost: t\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    server.shutdown.trigger();
    std::thread::sleep(Duration::from_millis(100));
    a.write_all(b"\r\n").unwrap();
    b.write_all(b"\r\n").unwrap();
    // Both in-flight requests are answered, but keep-alive is refused
    // during the drain.
    let (status, headers, _) = read_response(&mut a);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("close"), "no keep-alive during drain");
    let (status, headers, _) = read_response(&mut b);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "connection"), Some("close"));
    let summary = server.thread.join().expect("server thread").expect("serve summary");
    assert_eq!(summary.served, 2);
    assert_eq!(summary.dropped, 0, "a graceful drain never drops queued work");
}

#[test]
fn hot_reload_swaps_generation_without_dropping_service() {
    let server = serve(fixture_store("reload"), |_| {});
    let (status, _, body) = get(server.addr, "/healthz");
    assert_eq!(status, 200);
    let before: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(before["datasets"], 2);

    // Publish while serving: the shared store lock admits wranglers.
    let mut store =
        DurableCatalog::open(server.dir.join("catalog"), StoreOptions::default()).unwrap();
    store.put(DatasetFeature::new("2015/01/new_adcp.csv")).unwrap();
    store.checkpoint().unwrap();
    drop(store);

    let (status, _, body) = post(server.addr, "/admin/reload", "");
    assert_eq!(status, 200);
    let reload: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(reload["outcome"], "reloaded", "{reload}");

    let (_, _, body) = get(server.addr, "/healthz");
    let after: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(after["datasets"], 3);
    assert_eq!(after["reloads"], 1);
    assert!(after["generation"].as_u64().unwrap() > before["generation"].as_u64().unwrap());

    let summary = server.stop();
    assert_eq!(summary.reloads, 1);
    assert_eq!(summary.dropped, 0);
}

/// `/healthz` keeps the historical `shards` count and adds the
/// machine-readable `shard_states` array: one row per shard with id,
/// mode, circuit state, last observed rtt, and generation.
#[test]
fn healthz_reports_shard_states_over_the_wire() {
    use metamess_search::{Partitioner, ShardSpec};
    let dir = fixture_store("healthz-shards");
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        poll_interval: None,
        ..ServerConfig::default()
    };
    let state = Arc::new(
        ServeState::open_sharded(&dir, ShardSpec::new(2, Partitioner::Hash)).expect("open store"),
    );
    let server = Server::bind(state, config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());

    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
    assert_eq!(v["shards"], 2, "historical count field is kept: {v}");
    let rows = v["shard_states"].as_array().expect("shard_states array");
    assert_eq!(rows.len(), 2, "{v}");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row["id"], i as u64, "{v}");
        assert_eq!(row["mode"], "local", "{v}");
        assert_eq!(row["state"], "healthy", "{v}");
        assert!(row["last_rtt_us"].is_null(), "local shards have no rtt: {v}");
        assert_eq!(row["generation"], v["generation"], "{v}");
    }

    shutdown.trigger();
    thread.join().expect("server thread").expect("serve summary");
}

#[test]
fn stalled_request_gets_408() {
    let server =
        serve(fixture_store("stall"), |c| c.limits.read_timeout = Duration::from_millis(300));
    let mut stream = connect(server.addr);
    // Start a request and never finish it.
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    let (status, _, _) = read_response(&mut stream);
    assert_eq!(status, 408);
    server.stop();
}

#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let server = serve(fixture_store("prom"), |_| {});
    let (status, headers, _) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    assert!(header(&headers, "content-type").unwrap().starts_with("text/plain"));
    server.stop();
}

/// Prometheus exposition-format conformance: the 0.0.4 content-type
/// version tag, `# HELP` / `# TYPE` metadata for every family, and HELP
/// directly preceding its TYPE — the shape scrapers validate before they
/// stop warning about untyped series.
#[test]
fn metrics_exposition_is_prometheus_0_0_4_conformant() {
    let server = serve(fixture_store("prom004"), |_| {});
    // Serve one search so latency histograms exist in the snapshot.
    let (status, _, _) = post(server.addr, "/search", r#"{"q":"with water_temperature"}"#);
    assert_eq!(status, 200);
    let (status, headers, body) = get(server.addr, "/metrics");
    assert_eq!(status, 200);
    let ctype = header(&headers, "content-type").unwrap();
    assert!(
        ctype.starts_with("text/plain; version=0.0.4"),
        "scrapers key off the exposition version tag: {ctype}"
    );
    if !metamess_telemetry::enabled() {
        server.stop();
        return; // empty exposition under METAMESS_TELEMETRY=0
    }
    let text = String::from_utf8(body).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    let mut typed = 0usize;
    for (i, line) in lines.iter().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let name = rest.split(' ').next().unwrap();
            let prev = i.checked_sub(1).map(|p| lines[p]).unwrap_or("");
            assert!(
                prev.starts_with(&format!("# HELP {name} ")),
                "TYPE for {name} not directly preceded by its HELP: {prev:?}"
            );
            typed += 1;
        }
    }
    assert!(typed > 0, "no # TYPE lines in exposition:\n{text}");
    // Every sample line belongs to a family announced by a TYPE line.
    for kind in ["counter", "gauge", "histogram"] {
        assert!(text.contains(&format!(" {kind}\n")), "no {kind} family rendered:\n{text}");
    }
    server.stop();
}

/// Every handled response — success, 404, even protocol errors — carries
/// an `X-Metamess-Trace-Id` header the client can quote when reporting a
/// slow or failed request.
#[test]
fn every_response_carries_trace_id_over_the_wire() {
    if !metamess_telemetry::enabled() {
        return; // tracing is off wholesale under METAMESS_TELEMETRY=0
    }
    let server = serve(fixture_store("traceid"), |_| {});
    let mut seen = std::collections::HashSet::new();
    let exchanges: Vec<Vec<u8>> = vec![
        get_bytes("/healthz"),
        post_bytes("/search", r#"{"q":"with water_temperature"}"#),
        get_bytes("/nope"),
        // Valid-but-unknown method: routed 404 through the worker pool.
        b"BOGUS /x HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n".to_vec(),
        // Malformed method: a 400 answered straight from the event thread.
        b"bogus /x HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n".to_vec(),
    ];
    for bytes in &exchanges {
        let (_, headers, _) = raw(server.addr, bytes);
        let id = header(&headers, "x-metamess-trace-id")
            .unwrap_or_else(|| panic!("missing trace id on {:?}", String::from_utf8_lossy(bytes)));
        assert_eq!(id.len(), 32, "trace id is 128-bit hex: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "non-hex trace id: {id}");
        assert!(seen.insert(id.to_string()), "trace id reused across requests: {id}");
    }
    // The search trace is retrievable from the flight recorder by id.
    let (_, headers, _) =
        raw(server.addr, &post_bytes("/search", r#"{"q":"with water_temperature"}"#));
    let id = header(&headers, "x-metamess-trace-id").unwrap().to_string();
    let (status, _, body) = get(server.addr, &format!("/debug/traces?id={id}"));
    assert_eq!(status, 200, "{:?}", String::from_utf8_lossy(&body));
    let v: serde_json::Value = serde_json::from_slice(&body).unwrap();
    let trace = &v["traces"][0];
    assert_eq!(trace["trace_id"], serde_json::Value::String(id));
    assert_eq!(trace["spans"][0]["name"], "request");
    assert!(trace["spans"][0]["micros"].as_u64().unwrap() < 10_000_000);
    server.stop();
}

#[test]
fn slow_loris_connections_do_not_starve_healthy_clients() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let server = serve(fixture_store("loris"), |_| {});
    let addr = server.addr;
    let stop = Arc::new(AtomicBool::new(false));
    // Eight clients each trickle a request one byte per 100ms. Under the
    // old thread-per-connection design these alone would have pinned every
    // worker (the helper config has 2); under the event loop a stalled
    // read costs nothing until its bytes complete a request.
    let loris: Vec<JoinHandle<()>> = (0..8)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                for byte in b"GET /healthz HTTP/1.1\r\nhost: t\r\n".chunks(1) {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let _ = stream.write_all(byte);
                    std::thread::sleep(Duration::from_millis(100));
                }
                // Dropping the stream sends FIN so the server can reap the
                // half-request promptly instead of waiting out a timeout.
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    // Healthy clients keep getting served promptly the whole time.
    let mut worst = Duration::ZERO;
    for i in 0..10 {
        let started = std::time::Instant::now();
        let (status, _, _) = get(addr, "/healthz");
        assert_eq!(status, 200, "healthy request {i} under slow-loris load");
        worst = worst.max(started.elapsed());
    }
    assert!(worst < Duration::from_secs(2), "healthy request took {worst:?} under slow-loris load");
    stop.store(true, Ordering::Relaxed);
    for t in loris {
        t.join().expect("loris thread");
    }
    // Give the event loop a beat to observe the FINs before draining.
    std::thread::sleep(Duration::from_millis(150));
    server.stop();
}
