//! Leveled stderr event mirroring, controlled by the `METAMESS_LOG`
//! environment variable.
//!
//! Levels, most to least severe: `error`, `warn`, `info`, `debug`,
//! `trace`. `METAMESS_LOG=info` mirrors everything at info and above;
//! unset (or `off`/`0`) mirrors nothing. The variable is read once, on
//! first use. Events go to stderr so they never contaminate rendered
//! results on stdout.

use std::io::Write as _;
use std::sync::OnceLock;

/// Event severity, in decreasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-loss-adjacent problems.
    Error = 1,
    /// Suspicious but non-fatal conditions.
    Warn = 2,
    /// High-level progress (stage ran, store recovered).
    Info = 3,
    /// Per-operation detail (span durations).
    Debug = 4,
    /// Everything, including span entry.
    Trace = 5,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Parses a `METAMESS_LOG` value into a numeric threshold (0 = off).
pub(crate) fn parse_level(s: &str) -> u8 {
    match s.trim().to_ascii_lowercase().as_str() {
        "error" => 1,
        "warn" | "warning" => 2,
        "info" => 3,
        "debug" => 4,
        "trace" => 5,
        _ => 0,
    }
}

fn threshold() -> u8 {
    static THRESHOLD: OnceLock<u8> = OnceLock::new();
    *THRESHOLD.get_or_init(|| std::env::var("METAMESS_LOG").map(|v| parse_level(&v)).unwrap_or(0))
}

/// True when events at `level` should be mirrored to stderr.
pub fn log_enabled(level: Level) -> bool {
    level as u8 <= threshold()
}

/// Writes one event line to stderr. Callers should gate on
/// [`log_enabled`] (the [`crate::event!`] macro does) so message
/// formatting is skipped when mirroring is off.
pub fn log_write(level: Level, target: &str, message: &str) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "[metamess {} {target}] {message}", level.as_str());
}

/// Mirrors a formatted event to stderr when `METAMESS_LOG` admits its
/// level. The format arguments are only evaluated when the event is
/// actually emitted.
///
/// ```
/// use metamess_telemetry::{event, Level};
/// event!(Level::Info, "search", "served {} hits", 3);
/// ```
#[macro_export]
macro_rules! event {
    ($level:expr, $target:expr, $($arg:tt)*) => {
        if $crate::log_enabled($level) {
            $crate::log_write($level, $target, &format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(parse_level("error"), 1);
        assert_eq!(parse_level("WARN"), 2);
        assert_eq!(parse_level(" info "), 3);
        assert_eq!(parse_level("debug"), 4);
        assert_eq!(parse_level("trace"), 5);
        assert_eq!(parse_level("off"), 0);
        assert_eq!(parse_level(""), 0);
        assert_eq!(parse_level("nonsense"), 0);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Debug < Level::Trace);
    }
}
