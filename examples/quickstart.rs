//! Quickstart: generate a messy archive, wrangle it, search it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use metamess::prelude::*;
use metamess::search::render_results;

fn main() {
    // 1. A synthetic observatory archive (stands in for the CMOP archive):
    //    stations, cruises and gliders writing CSV/CDL/OBSLOG files with
    //    injected naming mess.
    let spec = ArchiveSpec::default();
    let archive = metamess::archive::generate(&spec);
    println!(
        "generated archive: {} files, {} datasets, {:.1} KiB",
        archive.files.len(),
        archive.truth.datasets.len(),
        archive.total_bytes() as f64 / 1024.0
    );

    // 2. Wrangle: compose the standard chain and let the scripted curator
    //    iterate run → review → improve → rerun to a fixpoint.
    let mut ctx = PipelineContext::new(
        ArchiveInput::Memory(archive.files),
        Vocabulary::observatory_default(),
    );
    let mut pipeline = Pipeline::standard();
    let curator = CurationLoop::new(CuratorPolicy::default());
    let (history, last_run) =
        curator.run_to_fixpoint(&mut pipeline, &mut ctx).expect("wrangling succeeds");

    println!("\nfinal pipeline run:");
    print!("{}", last_run.render());
    println!("curation iterations: {}", history.len());
    for step in &history {
        println!(
            "  iteration {}: {} rules accepted, {} ambiguities clarified, {:.1}% resolved",
            step.iteration,
            step.accepted,
            step.clarified,
            100.0 * step.resolution_after
        );
    }

    // 3. Search the published catalog — the poster's example information
    //    need: observations near (45.5, -124.4) in mid-2010 with
    //    temperature between 5 and 10 °C.
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let query = Query::parse(
        "near 45.5,-124.4 within 50km from 2010-04-01 to 2010-09-30 \
         with temperature between 5 and 10 limit 5",
    )
    .expect("query parses");
    let hits = engine.search(&query);
    println!("\ntop results for the poster's query:");
    print!("{}", render_results(&hits));
}
