//! Hierarchical browsing: the poster's "support hierarchical menus" and
//! "collapse or expose as needed" approach for concepts at multiple levels
//! of detail.
//!
//! A [`BrowseTree`] mirrors a taxonomy, annotating every concept with the
//! number of datasets carrying a searchable variable at-or-below it — the
//! data behind a drill-down menu: collapse `fluorescence` to see one entry,
//! expose it to see `fluores375` and `fluores400` separately.

use metamess_core::catalog::Catalog;
use metamess_core::id::DatasetId;
use metamess_core::text::normalize_term;
use metamess_vocab::{Taxonomy, TaxonomyNode, Vocabulary};
use std::collections::{BTreeMap, BTreeSet};

/// One node of the browse menu.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct BrowseNode {
    /// Concept name (canonical term or grouping label).
    pub name: String,
    /// Datasets with a searchable variable exactly at this concept.
    pub direct: usize,
    /// Datasets at this concept or anywhere below it (what a collapsed menu
    /// entry shows).
    pub cumulative: usize,
    /// Narrower concepts.
    pub children: Vec<BrowseNode>,
}

impl BrowseNode {
    /// Depth-first iterator over the subtree (self first).
    pub fn iter(&self) -> Box<dyn Iterator<Item = &BrowseNode> + '_> {
        Box::new(std::iter::once(self).chain(self.children.iter().flat_map(|c| c.iter())))
    }
}

/// A taxonomy annotated with dataset counts.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct BrowseTree {
    /// Taxonomy name.
    pub taxonomy: String,
    /// Root concepts.
    pub roots: Vec<BrowseNode>,
}

impl BrowseTree {
    /// Total datasets reachable from any root.
    pub fn total(&self) -> usize {
        self.roots.iter().map(|r| r.cumulative).sum()
    }

    /// Finds a node by concept name (case-insensitive), depth first.
    pub fn node(&self, name: &str) -> Option<&BrowseNode> {
        let key = normalize_term(name);
        self.roots.iter().flat_map(|r| r.iter()).find(|n| normalize_term(&n.name) == key)
    }

    /// Renders the drill-down outline: `concept (direct/cumulative)`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        fn rec(node: &BrowseNode, depth: usize, out: &mut String) {
            for _ in 0..depth {
                out.push_str("  ");
            }
            let _ = writeln!(out, "{} ({}/{})", node.name, node.direct, node.cumulative);
            for c in &node.children {
                rec(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "[{}]", self.taxonomy);
        for r in &self.roots {
            rec(r, 0, &mut out);
        }
        out
    }
}

/// Builds the browse tree for one taxonomy over a published catalog.
///
/// A dataset counts at concept `c` when one of its searchable variables
/// resolves to canonical name `c` (through the synonym table when needed).
pub fn browse_taxonomy(catalog: &Catalog, vocab: &Vocabulary, taxonomy: &Taxonomy) -> BrowseTree {
    // concept (normalized) → set of dataset ids directly at it
    let mut direct: BTreeMap<String, BTreeSet<DatasetId>> = BTreeMap::new();
    for d in catalog.iter() {
        for v in d.searchable_variables() {
            let canonical = match vocab.synonyms.resolve(v.search_name()) {
                Some((c, _)) => normalize_term(c),
                None => normalize_term(v.search_name()),
            };
            direct.entry(canonical).or_default().insert(d.id);
        }
    }

    fn build(
        node: &TaxonomyNode,
        direct: &BTreeMap<String, BTreeSet<DatasetId>>,
    ) -> (BrowseNode, BTreeSet<DatasetId>) {
        let own: BTreeSet<DatasetId> =
            direct.get(&normalize_term(&node.name)).cloned().unwrap_or_default();
        let mut reach = own.clone();
        let mut children = Vec::new();
        for c in &node.children {
            let (child, child_reach) = build(c, direct);
            reach.extend(child_reach);
            children.push(child);
        }
        (
            BrowseNode {
                name: node.name.clone(),
                direct: own.len(),
                cumulative: reach.len(),
                children,
            },
            reach,
        )
    }

    let roots = taxonomy.root_nodes().iter().map(|r| build(r, &direct).0).collect();
    BrowseTree { taxonomy: taxonomy.name.clone(), roots }
}

/// Builds browse trees for every taxonomy in the vocabulary.
pub fn browse_all(catalog: &Catalog, vocab: &Vocabulary) -> Vec<BrowseTree> {
    vocab.taxonomies.iter().map(|t| browse_taxonomy(catalog, vocab, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_core::feature::{DatasetFeature, NameResolution, VariableFeature};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut mk = |path: &str, vars: &[(&str, &str)]| {
            let mut d = DatasetFeature::new(path);
            for (name, canon) in vars {
                let mut v = VariableFeature::new(*name);
                v.resolve(*canon, NameResolution::KnownTranslation);
                d.variables.push(v);
            }
            c.put(d);
        };
        mk("a.csv", &[("f375", "fluores375"), ("wt", "water_temperature")]);
        mk("b.csv", &[("f400", "fluores400")]);
        mk("c.csv", &[("chl", "chlorophyll_fluorescence")]);
        mk("d.csv", &[("sal", "salinity")]);
        c
    }

    #[test]
    fn counts_roll_up() {
        let vocab = Vocabulary::observatory_default();
        let tax = vocab.taxonomies.get("observatory").unwrap();
        let tree = browse_taxonomy(&catalog(), &vocab, tax);
        let fl = tree.node("fluorescence").unwrap();
        assert_eq!(fl.direct, 0); // grouping node: nothing directly there
        assert_eq!(fl.cumulative, 3); // a, b, c through its children
        assert_eq!(tree.node("fluores375").unwrap().cumulative, 1);
        assert_eq!(tree.node("water_temperature").unwrap().direct, 1);
        assert_eq!(tree.node("salinity").unwrap().cumulative, 1);
        // a dataset is counted once per concept even with two fluor channels
        let bio = tree.node("biogeochemical").unwrap();
        assert!(bio.cumulative >= 4 - 1); // a,b,c (+d is physical)
    }

    #[test]
    fn qa_and_hidden_excluded() {
        let vocab = Vocabulary::observatory_default();
        let tax = vocab.taxonomies.get("observatory").unwrap();
        let mut c = catalog();
        let mut d = DatasetFeature::new("qa.csv");
        let mut v = VariableFeature::new("wt2");
        v.resolve("water_temperature", NameResolution::KnownTranslation);
        v.flags.qa = true;
        d.variables.push(v);
        c.put(d);
        let tree = browse_taxonomy(&c, &vocab, tax);
        assert_eq!(tree.node("water_temperature").unwrap().cumulative, 1); // unchanged
    }

    #[test]
    fn render_outline_shape() {
        let vocab = Vocabulary::observatory_default();
        let tax = vocab.taxonomies.get("observatory").unwrap();
        let tree = browse_taxonomy(&catalog(), &vocab, tax);
        let text = tree.render();
        assert!(text.contains("[observatory]"));
        assert!(text.contains("fluorescence (0/3)"));
        assert!(text.lines().any(|l| l.trim_start().starts_with("fluores375 (1/1)")));
    }

    #[test]
    fn browse_all_covers_taxonomies() {
        let vocab = Vocabulary::observatory_default();
        let trees = browse_all(&catalog(), &vocab);
        assert_eq!(trees.len(), vocab.taxonomies.len());
        assert!(trees.iter().any(|t| t.taxonomy == "observatory"));
    }

    #[test]
    fn empty_catalog_all_zero() {
        let vocab = Vocabulary::observatory_default();
        let tax = vocab.taxonomies.get("observatory").unwrap();
        let tree = browse_taxonomy(&Catalog::new(), &vocab, tax);
        assert_eq!(tree.total(), 0);
        assert!(tree.roots.iter().all(|r| r.cumulative == 0));
    }
}
