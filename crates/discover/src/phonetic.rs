//! Phonetic keys for key-collision clustering.
//!
//! Refine offers metaphone-family keyers; we implement classic **Soundex**
//! (exact to the published algorithm) and a compact **metaphone-style** code
//! that captures the consonant skeleton of English-ish identifiers. Both are
//! applied token-wise by the phonetic fingerprint keyer.

/// American Soundex code of a word: one letter + three digits.
/// Non-alphabetic input yields an empty string.
pub fn soundex(word: &str) -> String {
    let letters: Vec<char> =
        word.chars().filter(|c| c.is_ascii_alphabetic()).map(|c| c.to_ascii_uppercase()).collect();
    let Some(&first) = letters.first() else {
        return String::new();
    };
    fn code(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // 0 = vowels and the ignored H/W/Y
            _ => 0,
        }
    }
    let mut out = String::new();
    out.push(first);
    let mut last_code = code(first);
    for &c in &letters[1..] {
        let k = code(c);
        if c == 'H' || c == 'W' {
            // H and W do not reset the previous code.
            continue;
        }
        if k != 0 && k != last_code {
            out.push((b'0' + k) as char);
            if out.len() == 4 {
                return out;
            }
        }
        last_code = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    out
}

/// A compact metaphone-style consonant-skeleton code.
///
/// Rules (simplified from Philips' Metaphone, adequate for identifier
/// tokens): drop vowels except when leading, fold common digraphs
/// (PH→F, SH/CH→X, TH→0, CK→K, GH→silent-ish), map C→K/S by context,
/// collapse doubled letters.
pub fn metaphone_lite(word: &str) -> String {
    let w: Vec<char> =
        word.chars().filter(|c| c.is_ascii_alphabetic()).map(|c| c.to_ascii_uppercase()).collect();
    if w.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    let mut i = 0;
    let n = w.len();
    let is_vowel = |c: char| matches!(c, 'A' | 'E' | 'I' | 'O' | 'U');
    while i < n {
        let c = w[i];
        let next = w.get(i + 1).copied();
        // collapse doubles (except leading)
        if i > 0 && w[i - 1] == c {
            i += 1;
            continue;
        }
        match c {
            'A' | 'E' | 'I' | 'O' | 'U' => {
                if i == 0 {
                    out.push(c);
                }
            }
            'P' => {
                if next == Some('H') {
                    out.push('F');
                    i += 1;
                } else {
                    out.push('P');
                }
            }
            'S' => {
                if next == Some('H') {
                    out.push('X');
                    i += 1;
                } else {
                    out.push('S');
                }
            }
            'C' => {
                if next == Some('H') {
                    out.push('X');
                    i += 1;
                } else if next == Some('K') {
                    out.push('K');
                    i += 1;
                } else if matches!(next, Some('E') | Some('I') | Some('Y')) {
                    out.push('S');
                } else {
                    out.push('K');
                }
            }
            'T' => {
                if next == Some('H') {
                    out.push('0');
                    i += 1;
                } else {
                    out.push('T');
                }
            }
            'G' => {
                if next == Some('H') {
                    // GH: silent before a consonant / at end; F-ish folded to K
                    i += 1;
                    out.push('K');
                } else {
                    out.push('K');
                }
            }
            'D' => out.push('T'),
            'K' => out.push('K'),
            'Q' => out.push('K'),
            'X' => out.push_str("KS"),
            'Z' => out.push('S'),
            'V' => out.push('F'),
            'W' | 'Y' => {
                // keep only when followed by a vowel
                if next.is_some_and(is_vowel) {
                    out.push(c);
                }
            }
            'H' => {
                // keep H only between vowels
                let prev_vowel = i > 0 && is_vowel(w[i - 1]);
                if prev_vowel && next.is_some_and(is_vowel) {
                    out.push('H');
                }
            }
            other => out.push(other),
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_published_vectors() {
        // Canonical examples from the Soundex specification.
        assert_eq!(soundex("Robert"), "R163");
        assert_eq!(soundex("Rupert"), "R163");
        assert_eq!(soundex("Ashcraft"), "A261");
        assert_eq!(soundex("Ashcroft"), "A261");
        assert_eq!(soundex("Tymczak"), "T522");
        assert_eq!(soundex("Pfister"), "P236");
        assert_eq!(soundex("Honeyman"), "H555");
    }

    #[test]
    fn soundex_padding_and_empty() {
        assert_eq!(soundex("Lee"), "L000");
        assert_eq!(soundex(""), "");
        assert_eq!(soundex("123"), "");
    }

    #[test]
    fn soundex_case_insensitive() {
        assert_eq!(soundex("ROBERT"), soundex("robert"));
    }

    #[test]
    fn metaphone_groups_misspellings() {
        // The motivating pairs: misspellings share a code.
        assert_eq!(metaphone_lite("temperature"), metaphone_lite("temperture"));
        assert_eq!(metaphone_lite("salinity"), metaphone_lite("salinitee"));
        assert_eq!(metaphone_lite("fosfate"), metaphone_lite("phosphate"));
    }

    #[test]
    fn metaphone_distinguishes_different_words() {
        assert_ne!(metaphone_lite("temperature"), metaphone_lite("turbidity"));
        assert_ne!(metaphone_lite("salinity"), metaphone_lite("velocity"));
    }

    #[test]
    fn metaphone_digraphs() {
        assert!(metaphone_lite("photo").starts_with('F'));
        assert!(metaphone_lite("shale").starts_with('X'));
        assert!(metaphone_lite("charm").starts_with('X'));
        assert!(metaphone_lite("thick").starts_with('0'));
    }

    #[test]
    fn metaphone_c_contexts() {
        assert!(metaphone_lite("cell").starts_with('S'));
        assert!(metaphone_lite("call").starts_with('K'));
    }

    #[test]
    fn metaphone_collapses_doubles() {
        assert_eq!(metaphone_lite("bb"), metaphone_lite("b"));
        assert_eq!(metaphone_lite("aggregate"), metaphone_lite("agregate"));
    }

    #[test]
    fn metaphone_empty_and_symbols() {
        assert_eq!(metaphone_lite(""), "");
        assert_eq!(metaphone_lite("_-42"), "");
    }
}
