//! Property-based tests for core invariants.

use metamess_core::catalog::{Catalog, Mutation};
use metamess_core::feature::DatasetFeature;
use metamess_core::geo::{GeoBBox, GeoPoint};
use metamess_core::stats::NumericSummary;
use metamess_core::store::{crc32, RecoveryMode, Wal};
use metamess_core::time::{TimeInterval, Timestamp};
use metamess_core::value::Value;
use proptest::prelude::*;

fn arb_timestamp() -> impl Strategy<Value = Timestamp> {
    // Roughly 1900..2100
    (-2_208_988_800i64..4_102_444_800i64).prop_map(Timestamp)
}

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| GeoPoint { lat, lon })
}

fn arb_bbox() -> impl Strategy<Value = GeoBBox> {
    (arb_point(), arb_point()).prop_map(|(a, b)| GeoBBox {
        min_lat: a.lat.min(b.lat),
        max_lat: a.lat.max(b.lat),
        min_lon: a.lon.min(b.lon),
        max_lon: a.lon.max(b.lon),
    })
}

proptest! {
    #[test]
    fn timestamp_iso_round_trip(t in arb_timestamp()) {
        let s = t.to_iso8601();
        let back = Timestamp::parse(&s).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn timestamp_civil_round_trip(t in arb_timestamp()) {
        let (y, mo, d, h, mi, s) = t.to_civil();
        let back = Timestamp::from_ymd_hms(y, mo, d, h, mi, s).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn civil_components_in_range(t in arb_timestamp()) {
        let (_, mo, d, h, mi, s) = t.to_civil();
        prop_assert!((1..=12).contains(&mo));
        prop_assert!((1..=31).contains(&d));
        prop_assert!(h < 24 && mi < 60 && s < 60);
    }

    #[test]
    fn interval_overlap_symmetric(a in arb_timestamp(), b in arb_timestamp(),
                                  c in arb_timestamp(), d in arb_timestamp()) {
        let x = TimeInterval::new(a, b);
        let y = TimeInterval::new(c, d);
        prop_assert_eq!(x.overlaps(&y), y.overlaps(&x));
        prop_assert_eq!(x.overlap_secs(&y), y.overlap_secs(&x));
        prop_assert_eq!(x.gap_secs(&y), y.gap_secs(&x));
        // Exactly one of overlap/gap is nonzero unless both are zero (touching).
        if x.overlaps(&y) { prop_assert_eq!(x.gap_secs(&y), 0); }
        else { prop_assert!(x.gap_secs(&y) > 0); }
    }

    #[test]
    fn interval_union_contains_both(a in arb_timestamp(), b in arb_timestamp(),
                                    c in arb_timestamp(), d in arb_timestamp()) {
        let x = TimeInterval::new(a, b);
        let y = TimeInterval::new(c, d);
        let u = x.union(&y);
        prop_assert!(u.contains(x.start) && u.contains(x.end));
        prop_assert!(u.contains(y.start) && u.contains(y.end));
    }

    #[test]
    fn haversine_metric_axioms(a in arb_point(), b in arb_point()) {
        let dab = a.distance_km(&b);
        let dba = b.distance_km(&a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-6);
        // Bounded by half the Earth's circumference.
        prop_assert!(dab <= std::f64::consts::PI * metamess_core::geo::EARTH_RADIUS_KM + 1.0);
    }

    #[test]
    fn bbox_distance_zero_iff_contains(b in arb_bbox(), p in arb_point()) {
        let d = b.distance_km(&p);
        if b.contains(&p) {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
    }

    #[test]
    fn bbox_union_covers(b1 in arb_bbox(), b2 in arb_bbox(), p in arb_point()) {
        let u = b1.union(&b2);
        if b1.contains(&p) || b2.contains(&p) {
            prop_assert!(u.contains(&p));
        }
    }

    #[test]
    fn numeric_summary_merge_associative(xs in prop::collection::vec(-1e6f64..1e6, 0..200),
                                         split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = NumericSummary::new();
        for &x in &xs { whole.observe(x); }
        let mut l = NumericSummary::new();
        let mut r = NumericSummary::new();
        for &x in &xs[..split] { l.observe(x); }
        for &x in &xs[split..] { r.observe(x); }
        l.merge(&r);
        prop_assert_eq!(l.count, whole.count);
        if whole.count > 0 {
            prop_assert!((l.mean - whole.mean).abs() < 1e-6);
            prop_assert!((l.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-3);
            prop_assert_eq!(l.range(), whole.range());
        }
    }

    #[test]
    fn value_sniff_render_idempotent(raw in "[ -~]{0,24}") {
        // sniff(render(sniff(x))) == sniff(x): rendering is a fixpoint.
        let v1 = Value::sniff(&raw);
        let v2 = Value::sniff(&v1.render());
        match (&v1, &v2) {
            (Value::Float(a), Value::Float(b)) => prop_assert!((a - b).abs() <= f64::EPSILON * a.abs().max(1.0)),
            _ => prop_assert_eq!(&v1, &v2),
        }
    }

    #[test]
    fn crc_detects_mutation(data in prop::collection::vec(any::<u8>(), 1..256),
                            ix in 0usize..256, bit in 0u8..8) {
        let ix = ix % data.len();
        let mut mutated = data.clone();
        mutated[ix] ^= 1 << bit;
        prop_assert_ne!(crc32(&data), crc32(&mutated));
    }

    #[test]
    fn catalog_replay_equivalence(paths in prop::collection::vec("[a-z]{1,8}\\.csv", 1..20)) {
        let mut muts: Vec<Mutation> = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            muts.push(Mutation::Put(Box::new(DatasetFeature::new(p.clone()))));
            if i % 3 == 2 {
                muts.push(Mutation::Delete(metamess_core::DatasetId::from_path(p)));
            }
        }
        let mut a = Catalog::new();
        for m in &muts { a.apply(m); }
        let mut b = Catalog::new();
        for m in &muts { b.apply(m); }
        prop_assert_eq!(a, b);
    }

    #[test]
    fn catalog_diff_applies_to_target(paths_a in prop::collection::vec("[a-z]{1,6}", 0..10),
                                      paths_b in prop::collection::vec("[a-z]{1,6}", 0..10)) {
        let mut a = Catalog::new();
        for p in &paths_a { a.put(DatasetFeature::new(p.clone())); }
        let mut b = Catalog::new();
        for p in &paths_b { b.put(DatasetFeature::new(p.clone())); }
        let delta = a.diff(&b);
        for m in &delta { a.apply(m); }
        // After applying the diff, the entries match.
        let ids_a: Vec<_> = a.iter().map(|d| d.id).collect();
        let ids_b: Vec<_> = b.iter().map(|d| d.id).collect();
        prop_assert_eq!(ids_a, ids_b);
    }
}

#[test]
fn wal_replay_equals_memory_after_random_workload() {
    // Deterministic pseudo-random workload over a real WAL file.
    let dir = std::env::temp_dir().join(format!("metamess-proptest-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("wal.log");

    let mut mem = Catalog::new();
    {
        let mut wal = Wal::open(&wal_path, false).unwrap();
        let mut state = 0x9e3779b97f4a7c15u64;
        for i in 0..500 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let m = match state % 4 {
                0 | 1 => Mutation::Put(Box::new(DatasetFeature::new(format!("d{}.csv", i % 50)))),
                2 => Mutation::Delete(metamess_core::DatasetId::from_path(&format!(
                    "d{}.csv",
                    state % 50
                ))),
                _ => {
                    Mutation::SetProperty { key: format!("k{}", state % 5), value: format!("v{i}") }
                }
            };
            wal.append(&m).unwrap();
            mem.apply(&m);
        }
        wal.flush_and_sync().unwrap();
    }
    let replay = Wal::replay(&wal_path, RecoveryMode::Strict).unwrap();
    let mut rebuilt = Catalog::new();
    for m in &replay.mutations {
        rebuilt.apply(m);
    }
    assert_eq!(rebuilt, mem);
}
