//! The composable component abstraction: "set of composable components,
//! compose into 'metadata processing chain'; details of process different
//! for each archive".
//!
//! Since the typed-dataflow rework every component *declares* which
//! [`PipelineContext`](crate::context::PipelineContext) slots it reads and
//! writes, and runs against a [`CtxView`] scoped to that declaration. The
//! declarations drive the incremental engine: a stage whose read slots are
//! unchanged since the last run is skipped.

use crate::context::{CtxView, PipelineContext};
use metamess_core::error::Result;
use serde::{Deserialize, Serialize};

/// A named section of the shared [`PipelineContext`]. Components declare
/// the slots they read and write; the engine fingerprints slot contents to
/// decide which stages can be skipped.
///
/// [`PipelineContext`]: crate::context::PipelineContext
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Slot {
    /// The archive input plus the harvest (scan/naming) configuration.
    Archive,
    /// The working catalog.
    Working,
    /// The published catalog.
    Published,
    /// The controlled vocabulary.
    Vocab,
    /// External metadata (source → key → value).
    External,
    /// Rule proposals awaiting curator review.
    Proposals,
    /// Proposals the curator accepted.
    Accepted,
    /// Validation findings.
    Findings,
    /// Discovery provenance of synonym-table entries.
    Provenance,
    /// Dataset paths the curator expects to exist.
    Expected,
}

impl Slot {
    /// Every slot, in declaration order.
    pub const ALL: [Slot; 10] = [
        Slot::Archive,
        Slot::Working,
        Slot::Published,
        Slot::Vocab,
        Slot::External,
        Slot::Proposals,
        Slot::Accepted,
        Slot::Findings,
        Slot::Provenance,
        Slot::Expected,
    ];
}

/// Whether a stage executed or was skipped by the incremental engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageStatus {
    /// The stage executed.
    Ran,
    /// The engine skipped the stage.
    Skipped {
        /// Why the stage was skipped (e.g. "inputs unchanged").
        reason: String,
    },
}

impl Default for StageStatus {
    fn default() -> Self {
        StageStatus::Ran
    }
}

/// What one stage did, for the run report and the curator's review.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Component name.
    pub component: String,
    /// Whether the stage ran or was skipped by the incremental engine.
    #[serde(default)]
    pub status: StageStatus,
    /// Items examined (datasets, variables, values — stage-specific).
    pub processed: u64,
    /// Items changed.
    pub changed: u64,
    /// Non-fatal problems encountered.
    pub errors: Vec<String>,
    /// Free-form notes (counts of clusters found, rules applied, ...).
    pub notes: Vec<String>,
    /// Catalog-wide resolution fraction *after* this stage — the shrinking
    /// "mess that's left".
    pub resolution_after: f64,
    /// Wall-clock execution time in microseconds (explicitly 0 when
    /// skipped — the skip itself costs only a digest check).
    #[serde(default)]
    pub micros: u64,
    /// For skipped stages: how long the stage took the last time it
    /// actually executed (from the run ledger). `None` for stages that ran
    /// this time or were never recorded.
    #[serde(default)]
    pub last_micros: Option<u64>,
}

impl StageReport {
    /// Creates an empty report for a component.
    pub fn new(component: &str) -> StageReport {
        StageReport { component: component.to_string(), ..StageReport::default() }
    }

    /// Creates a report for a stage the engine skipped.
    pub fn skipped(component: &str, reason: &str) -> StageReport {
        StageReport {
            component: component.to_string(),
            status: StageStatus::Skipped { reason: reason.to_string() },
            ..StageReport::default()
        }
    }

    /// True when the engine skipped this stage.
    pub fn is_skipped(&self) -> bool {
        matches!(self.status, StageStatus::Skipped { .. })
    }

    /// Appends a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

/// A pipeline component. Implementations are the boxes of the poster's
/// process figure.
///
/// `reads`/`writes` declare the component's dataflow over the context
/// slots. The declarations must be honest: in debug builds every [`CtxView`]
/// accessor asserts it is covered by the declaration, and the incremental
/// engine skips a stage whenever the fingerprints of its declared read
/// slots are unchanged — an undeclared input would make the skip unsound.
pub trait Component {
    /// Stable component name (used in configuration and reports).
    fn name(&self) -> &'static str;

    /// Slots this component reads. A slot listed in `writes` may also be
    /// read without being declared here (read-modify-write).
    fn reads(&self) -> &'static [Slot];

    /// Slots this component writes.
    fn writes(&self) -> &'static [Slot];

    /// Runs the stage against a view scoped to the declared slots.
    fn run(&mut self, view: &mut CtxView<'_>) -> Result<StageReport>;

    /// Runs the stage directly against a context, outside the engine —
    /// declaration checks still apply. Used by tests and ad-hoc callers;
    /// the pipeline runner goes through the incremental engine instead.
    fn run_standalone(&mut self, ctx: &mut PipelineContext) -> Result<StageReport> {
        ctx.harvest.pipeline_run = ctx.run_id;
        let mut view = CtxView::scoped(ctx, self.name(), self.reads(), self.writes());
        self.run(&mut view)
    }
}
