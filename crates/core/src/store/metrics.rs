//! Telemetry handles for the durable store.
//!
//! Handles are resolved once per process and cached in a `OnceLock` so the
//! WAL append path pays one enabled-flag branch plus relaxed atomic adds —
//! never a registry lookup.

use metamess_telemetry::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

pub(crate) struct StoreMetrics {
    /// `metamess_core_wal_appends_total` — records appended to any WAL.
    pub wal_appends: Arc<Counter>,
    /// `metamess_core_wal_bytes_total` — payload + header bytes written.
    pub wal_bytes: Arc<Counter>,
    /// `metamess_core_wal_fsyncs_total` — *successful* flush_and_sync calls
    /// (covers sync-on-append, checkpoints, and explicit flushes). Failed
    /// syncs are counted in `wal_fsync_failures`, never here.
    pub wal_fsyncs: Arc<Counter>,
    /// `metamess_core_wal_fsync_failures_total` — flush_and_sync calls that
    /// returned an error (the record may not be durable).
    pub wal_fsync_failures: Arc<Counter>,
    /// `metamess_core_snapshot_writes_total` — checkpoint snapshots written.
    pub snapshot_writes: Arc<Counter>,
    /// `metamess_core_recovery_replayed_total` — WAL mutations replayed
    /// while opening stores.
    pub recovery_replayed: Arc<Counter>,
    /// `metamess_core_recovery_truncated_bytes_total` — damaged tail bytes
    /// discarded during recovery.
    pub recovery_truncated_bytes: Arc<Counter>,
    /// `metamess_core_recovery_quarantined_total` — corrupt files moved
    /// into quarantine by recovery or `fsck --repair`.
    pub recovery_quarantined: Arc<Counter>,
    /// `metamess_core_vfs_faults_injected_total` — faults injected by a
    /// [`FaultVfs`](super::FaultVfs) (non-zero only under torture testing).
    pub vfs_faults_injected: Arc<Counter>,
    /// `metamess_core_checkpoint_micros` — full checkpoint latency.
    pub checkpoint_micros: Arc<Histogram>,
    /// `metamess_core_group_commit_batches_total` — commit windows flushed
    /// by the group-commit queue (each is exactly one WAL fsync).
    pub group_commit_batches: Arc<Counter>,
    /// `metamess_core_group_commit_acked_total` — submissions acknowledged
    /// durable by the group-commit queue.
    pub group_commit_acked: Arc<Counter>,
    /// `metamess_core_group_commit_wait_micros` — time a submitter spent
    /// blocked waiting for its shared fsync.
    pub group_commit_wait_micros: Arc<Histogram>,
    /// `metamess_core_compactions_total` — WAL-into-snapshot compactions.
    pub compactions: Arc<Counter>,
    /// `metamess_core_compaction_pruned_total` — retained snapshots removed
    /// by the retention policy.
    pub compaction_pruned: Arc<Counter>,
    /// `metamess_core_compaction_micros` — full compaction latency
    /// (retain + snapshot + WAL reset + prune).
    pub compaction_micros: Arc<Histogram>,
}

pub(crate) fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metamess_telemetry::global();
        StoreMetrics {
            wal_appends: r.counter("metamess_core_wal_appends_total"),
            wal_bytes: r.counter("metamess_core_wal_bytes_total"),
            wal_fsyncs: r.counter("metamess_core_wal_fsyncs_total"),
            wal_fsync_failures: r.counter("metamess_core_wal_fsync_failures_total"),
            snapshot_writes: r.counter("metamess_core_snapshot_writes_total"),
            recovery_replayed: r.counter("metamess_core_recovery_replayed_total"),
            recovery_truncated_bytes: r.counter("metamess_core_recovery_truncated_bytes_total"),
            recovery_quarantined: r.counter("metamess_core_recovery_quarantined_total"),
            vfs_faults_injected: r.counter("metamess_core_vfs_faults_injected_total"),
            checkpoint_micros: r.histogram("metamess_core_checkpoint_micros"),
            group_commit_batches: r.counter("metamess_core_group_commit_batches_total"),
            group_commit_acked: r.counter("metamess_core_group_commit_acked_total"),
            group_commit_wait_micros: r.histogram("metamess_core_group_commit_wait_micros"),
            compactions: r.counter("metamess_core_compactions_total"),
            compaction_pruned: r.counter("metamess_core_compaction_pruned_total"),
            compaction_micros: r.histogram("metamess_core_compaction_micros"),
        }
    })
}
