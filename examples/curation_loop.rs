//! The four curatorial activities, end to end: compose the process, run and
//! rerun it, improve it between runs, and validate the results — watching
//! "the mess that's left" shrink each iteration.
//!
//! ```text
//! cargo run --example curation_loop
//! ```

use metamess::pipeline::Severity;
use metamess::prelude::*;

fn main() {
    let archive = metamess::archive::generate(&ArchiveSpec::default());
    let truth = archive.truth.clone();
    let mut ctx = PipelineContext::new(
        ArchiveInput::Memory(archive.files),
        Vocabulary::observatory_default(),
    );
    // Curatorial expectation: every known dataset must show up.
    ctx.expected_datasets = truth.datasets.iter().map(|d| d.path.clone()).collect();

    // Activity 1: create the process from composable components.
    let mut pipeline = Pipeline::standard();
    println!("process chain: {}\n", pipeline.component_names().join(" -> "));

    // Activity 3's domain knowledge: the hand-entered synonym table rows a
    // curator accumulates (simulated from the archive's ad-hoc spellings).
    let manual: Vec<(String, String)> = [
        "air_temperature",
        "water_temperature",
        "salinity",
        "specific_conductivity",
        "dissolved_oxygen",
        "turbidity",
        "chlorophyll_fluorescence",
        "wind_speed",
        "wind_direction",
        "air_pressure",
        "relative_humidity",
        "precipitation",
        "solar_radiation",
        "depth",
        "nitrate",
        "phosphate",
    ]
    .iter()
    .flat_map(|c| {
        metamess::archive::adhoc_synonyms(c).iter().map(move |v| (c.to_string(), v.to_string()))
    })
    .collect();

    // Activities 2 + 3: run, review, improve, rerun — to a fixpoint.
    let policy = CuratorPolicy { manual_synonyms: manual, ..CuratorPolicy::default() };
    let curator = CurationLoop::new(policy);
    let (history, last_run) =
        curator.run_to_fixpoint(&mut pipeline, &mut ctx).expect("loop converges");

    println!("curation history (the shrinking mess):");
    println!(
        "  {:<5} {:>9} {:>9} {:>10} {:>11} {:>10}",
        "iter", "reviewed", "accepted", "clarified", "unresolved", "resolved"
    );
    for s in &history {
        println!(
            "  {:<5} {:>9} {:>9} {:>10} {:>11} {:>9.1}%",
            s.iteration,
            s.reviewed,
            s.accepted,
            s.clarified,
            s.unresolved_after,
            100.0 * s.resolution_after
        );
    }

    println!("\nfinal run:");
    print!("{}", last_run.render());

    // Activity 4: validation findings after the final run.
    let errors = ctx.findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = ctx.findings.len() - errors;
    println!("\nvalidation: {errors} errors, {warnings} warnings");
    for f in ctx.findings.iter().take(8) {
        println!("  [{:?}] {}: {}", f.severity, f.rule, f.message);
    }
    if ctx.findings.len() > 8 {
        println!("  ... and {} more", ctx.findings.len() - 8);
    }

    println!(
        "\nvocabulary grew to version {} with {} preferred terms and {} alternates",
        ctx.vocab.version,
        ctx.vocab.synonyms.len(),
        ctx.vocab.synonyms.alternate_count()
    );

    // Score the outcome against the generator's ground truth.
    let mut correct = 0usize;
    let mut total = 0usize;
    for td in &truth.datasets {
        let Some(d) = ctx.catalogs.published.get_by_path(&td.path) else { continue };
        for tv in &td.variables {
            if ["time", "lat", "lon"].contains(&tv.harvested.as_str()) {
                continue;
            }
            let Some(v) = d.variable(&tv.harvested) else { continue };
            total += 1;
            let ok = if tv.qa {
                v.flags.qa
            } else {
                v.canonical_name.as_deref() == Some(tv.canonical.as_str()) || v.flags.ambiguous
                // exposed to the curator counts as handled
            };
            if ok {
                correct += 1;
            }
        }
    }
    println!(
        "ground-truth agreement: {correct}/{total} variables ({:.1}%)",
        100.0 * correct as f64 / total.max(1) as f64
    );
}
