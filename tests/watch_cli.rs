//! End-to-end test of continuous ingestion: `metamess watch` wrangles an
//! archive into a store, a live `metamess serve` on the same store picks
//! up a later watch cycle's publish through the in-place delta path (no
//! store reopen), and the new upload becomes searchable.
#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Command, Stdio};
use std::time::Duration;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_metamess")
}

fn run(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("binary runs");
    assert!(out.status.success(), "{:?}: {}", args, String::from_utf8_lossy(&out.stderr));
    String::from_utf8_lossy(&out.stdout).to_string()
}

/// One-shot HTTP exchange with `connection: close`; returns status + body.
fn http(addr: &str, request: String) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to server");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response to EOF");
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text.split(' ').nth(1).expect("status code").parse().expect("numeric");
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    http(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"))
}

fn post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Copies a salinity-bearing archive `.csv` (skipping the store dir) to a
/// fresh name — a new instrument upload landing in the drop box — and
/// returns its archive-relative path. Preferring a file whose header
/// literally says `salinity` keeps the later search assertion honest even
/// when the generator's mess injection renames columns elsewhere.
fn add_one_file(archive: &Path) -> String {
    let mut fallback: Option<std::path::PathBuf> = None;
    let mut stack = vec![archive.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for e in std::fs::read_dir(&dir).expect("read archive dir") {
            let p = e.expect("dir entry").path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == ".metamess") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "csv") {
                if std::fs::read_to_string(&p).is_ok_and(|c| c.contains("salinity")) {
                    return copy_as_upload(archive, &p);
                }
                fallback.get_or_insert(p);
            }
        }
    }
    copy_as_upload(archive, &fallback.expect("archive has csv files"))
}

fn copy_as_upload(archive: &Path, src: &Path) -> String {
    let dest = src.with_file_name("fresh_upload.csv");
    std::fs::copy(src, &dest).expect("copy csv");
    dest.strip_prefix(archive).expect("inside archive").to_string_lossy().replace('\\', "/")
}

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

#[test]
fn watch_feeds_a_live_serve_through_the_delta_path() {
    let dir = std::env::temp_dir().join(format!("metamess-watch-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();
    run(&["generate", dir_s, "--months", "1", "--stations", "2"]);

    // First watch run: cycle 1 wrangles the archive into the store, cycle
    // 2 sees the unchanged fingerprint and skips the pipeline entirely.
    let out = run(&["watch", dir_s, "--max-cycles", "2", "--interval-ms", "1"]);
    assert!(out.contains("cycle 1: published"), "{out}");
    assert!(out.contains("watched 2 cycle(s) (1 unchanged)"), "{out}");
    let store = dir.join(".metamess");
    let store_s = store.to_str().unwrap();

    // Serve the store the watcher just built.
    let mut child = Command::new(bin())
        .args(["serve", store_s, "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read startup line");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("address in startup line")
        .to_string();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    let datasets_before = health["datasets"].as_u64().unwrap();
    assert!(datasets_before >= 1, "{body}");

    // A new upload lands; one more watch cycle publishes it. The watcher
    // takes the store's shared lock alongside the running server — watch
    // and serve are designed to co-exist on one store.
    let uploaded = add_one_file(&dir);
    let out = run(&["watch", dir_s, "--max-cycles", "1", "--interval-ms", "1"]);
    assert!(out.contains("cycle 1: published"), "{out}");
    assert!(out.contains("resuming from"), "{out}");

    // Force a reload check now (the background poller may have beaten us
    // to it, so "unchanged" is also legitimate here).
    let (status, body) = post(&addr, "/admin/reload", "");
    assert_eq!(status, 200, "{body}");
    let reload: serde_json::Value = serde_json::from_str(&body).unwrap();
    let outcome = reload["outcome"].as_str().unwrap();
    assert!(outcome == "delta" || outcome == "unchanged", "{body}");
    if outcome == "delta" {
        assert!(reload["mutations"].as_u64().unwrap() >= 1, "{body}");
        assert!(
            reload["generation"].as_u64().unwrap()
                > reload["previous_generation"].as_u64().unwrap(),
            "{body}"
        );
    }

    // However the apply raced, it must have gone through the in-place
    // delta path — the store was never reopened for this publish.
    let (status, metrics) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let delta_applies = metrics
        .lines()
        .find_map(|l| l.strip_prefix("metamess_server_delta_applies_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(delta_applies >= 1, "no in-place delta apply recorded:\n{metrics}");

    // The served catalog grew and the new upload is searchable.
    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let health: serde_json::Value = serde_json::from_str(&body).unwrap();
    assert!(health["datasets"].as_u64().unwrap() > datasets_before, "{body}");

    // The delta-published entry is served directly…
    let (status, body) = get(&addr, &format!("/datasets/{uploaded}"));
    assert_eq!(status, 200, "upload not served: {body}");
    assert!(body.contains("fresh_upload"), "{body}");

    // …and reachable through ranked search.
    let (status, body) = post(&addr, "/search", r#"{"q":"with salinity","limit":50}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("fresh_upload"), "new upload not searchable: {body}");

    let rc = unsafe { kill(child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "kill(SIGTERM) failed");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve exited nonzero: {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
