//! The incremental pipeline engine: fingerprint-based skip-unchanged-stage
//! execution over the declared dataflow.
//!
//! # Model
//!
//! Every [`Slot`] of the [`PipelineContext`] gets a stable 64-bit **content
//! fingerprint**: catalogs hash their entries and properties (generation
//! counters excluded), the archive slot hashes the per-file
//! `(path, len, content-hash)` triples plus the scan/naming configuration
//! (via [`metamess_harvest::scan::archive_fingerprint`]), and every other
//! slot hashes its canonical JSON serialization. All of these are
//! deterministic: the underlying collections are ordered (`BTreeMap`s,
//! sorted scans), so equal content always yields an equal fingerprint.
//!
//! Before running a stage the engine combines the fingerprints of the
//! stage's declared read slots into an **input digest**. If the digest
//! matches what the [`RunLedger`] recorded for that stage, the stage is
//! skipped and reported as [`StageStatus::Skipped`]; otherwise it runs
//! against a [`CtxView`] scoped to its declaration, its written slots are
//! re-fingerprinted, and the ledger is updated. Dirtiness cascades
//! automatically: a stage that actually changes a written slot moves that
//! slot's fingerprint, which changes the input digest of every downstream
//! reader — and a stage that rewrites a slot with identical content does
//! *not* (early cutoff).
//!
//! # End-of-run digest projection
//!
//! Read-write slots (the working catalog, the vocabulary) evolve *during*
//! a run, so a stage's as-seen input digest would never match on the next
//! run even when nothing external changed. After a successful chain run
//! the engine therefore re-records, for each stage that executed, the
//! input digest computed against the **final** slot state. This is sound
//! because every stage is idempotent on its own output — re-running any
//! stage on end-of-run state is a no-op (the seed's idempotence tests
//! assert exactly this) — and it is what makes an unchanged re-run skip
//! every stage immediately. Stages that were skipped keep their previous
//! ledger entries, and a run that fails mid-chain performs no projection,
//! so stale digests only ever cause a redundant (idempotent) re-run, never
//! a wrongly skipped one.
//!
//! # Durability
//!
//! [`save_state`]/[`load_state`] persist the ledger (via the CRC-framed
//! [`metamess_core::store`] ledger format) together with the catalogs,
//! vocabulary and curation side-state, next to the catalog snapshot — so a
//! fresh process resumes incrementality instead of re-running the world.
//!
//! # Caveats
//!
//! * Stage names must be unique within a pipeline: the ledger is keyed by
//!   name. Composing the same component twice makes the second occurrence
//!   share (and clobber) the first one's record.
//! * Fingerprinting the archive slot re-scans the archive (cheap relative
//!   to parsing; for directory archives it is the same walk the harvester
//!   would do). A run where the scan stage executes therefore walks the
//!   archive twice; a run where it skips walks it once — strictly better
//!   than the pre-engine behavior on the hot (unchanged) path.

use crate::component::{Component, Slot, StageReport};
use crate::context::{ArchiveInput, CtxView, PipelineContext, ValidationFinding};
use crate::pipeline::RunReport;
use metamess_core::error::{Error, IoContext, Result};
use metamess_core::id::fnv1a;
use metamess_core::store::{
    quarantine_file, read_ledger, read_snapshot, std_vfs, write_ledger, write_snapshot,
    QuarantineReason, StageRecord,
};
use metamess_discover::RuleProposal;
use metamess_harvest::scan::{archive_fingerprint, scan_directory, scan_memory};
use metamess_telemetry::{event, labeled, Level, Stopwatch};
use metamess_vocab::Vocabulary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Bumped when the digest scheme changes, so persisted ledgers from an
/// older scheme never cause a wrong skip — every digest mismatches and the
/// chain re-runs once.
const ENGINE_VERSION: u8 = 1;

/// Fingerprints any serializable slot content via its canonical JSON form.
fn json_fp<T: Serialize>(value: &T) -> Result<u64> {
    let bytes = serde_json::to_vec(value)
        .map_err(|e| Error::invalid(format!("unencodable slot content: {e}")))?;
    Ok(fnv1a(&bytes))
}

/// Computes one slot's content fingerprint from the live context.
fn slot_fingerprint(slot: Slot, ctx: &PipelineContext) -> Result<u64> {
    Ok(match slot {
        Slot::Archive => {
            let entries = match &ctx.archive {
                ArchiveInput::Memory(files) => scan_memory(files, &ctx.harvest.scan),
                ArchiveInput::Dir(root) => scan_directory(root, &ctx.harvest.scan)?,
            };
            // the configuration is part of the input: widening the scan or
            // changing naming conventions must dirty the scan stage
            // (pipeline_run and parallelism deliberately excluded — they
            // never change what a scan produces, only provenance stamps)
            let config = json_fp(&(&ctx.harvest.scan, &ctx.harvest.naming))?;
            let mut buf = [0u8; 16];
            buf[..8].copy_from_slice(&archive_fingerprint(&entries).to_le_bytes());
            buf[8..].copy_from_slice(&config.to_le_bytes());
            fnv1a(&buf)
        }
        Slot::Working => ctx.catalogs.working.content_fingerprint(),
        Slot::Published => ctx.catalogs.published.content_fingerprint(),
        Slot::Vocab => json_fp(&ctx.vocab)?,
        Slot::External => json_fp(&ctx.external)?,
        Slot::Proposals => json_fp(&ctx.proposals)?,
        Slot::Accepted => json_fp(&ctx.accepted)?,
        Slot::Findings => json_fp(&ctx.findings)?,
        Slot::Provenance => json_fp(&ctx.discovered_provenance)?,
        Slot::Expected => json_fp(&ctx.expected_datasets)?,
    })
}

/// Per-run memo of slot fingerprints, invalidated as stages write slots.
#[derive(Default)]
struct SlotFps {
    cached: BTreeMap<Slot, u64>,
}

impl SlotFps {
    fn get(&mut self, slot: Slot, ctx: &PipelineContext) -> Result<u64> {
        if let Some(fp) = self.cached.get(&slot) {
            return Ok(*fp);
        }
        let fp = slot_fingerprint(slot, ctx)?;
        self.cached.insert(slot, fp);
        Ok(fp)
    }

    fn invalidate(&mut self, slot: Slot) {
        self.cached.remove(&slot);
    }
}

/// Combines a stage's slot fingerprints into a digest.
fn digest(name: &str, slots: &[Slot], fps: &mut SlotFps, ctx: &PipelineContext) -> Result<u64> {
    let mut buf = Vec::with_capacity(name.len() + 2 + slots.len() * 9);
    buf.push(ENGINE_VERSION);
    buf.extend_from_slice(name.as_bytes());
    buf.push(0);
    for s in slots {
        buf.push(*s as u8);
        buf.extend_from_slice(&fps.get(*s, ctx)?.to_le_bytes());
    }
    Ok(fnv1a(&buf))
}

/// Closes the wrangle trace if `run_chain` unwinds through a `?` — an
/// abandoned trace would otherwise occupy the thread-local slot and make
/// every later `trace::begin` on this thread refuse.
struct TraceGuard(bool);

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.0 {
            let _ = metamess_telemetry::trace::end(u64::MAX);
        }
    }
}

/// Runs a component chain incrementally: skips stages whose input digest
/// matches the context ledger's record, executes the rest through scoped
/// views, and updates the ledger. Called by [`crate::Pipeline::run`].
pub(crate) fn run_chain(
    components: &mut [Box<dyn Component>],
    ctx: &mut PipelineContext,
) -> Result<RunReport> {
    ctx.run_id += 1;
    ctx.harvest.pipeline_run = ctx.run_id;
    let on = metamess_telemetry::enabled();
    // Every wrangle run gets its own trace (never head-sampled away: runs
    // are rare and each one matters). Executed stages become child spans;
    // the finished trace id is persisted in the ledger so `metamess trace`
    // can show the span tree that produced a published generation.
    let trace_ctx = metamess_telemetry::TraceContext::start(1.0);
    let mut trace_guard = TraceGuard(metamess_telemetry::trace::begin(&trace_ctx, "wrangle"));
    let mut fingerprint_micros = 0u64;
    let mut fps = SlotFps::default();
    let mut report = RunReport { run_id: ctx.run_id, stages: Vec::new() };
    let mut executed: Vec<usize> = Vec::new();
    for (ix, c) in components.iter_mut().enumerate() {
        let name = c.name();
        let reads = c.reads();
        let writes = c.writes();
        let fp_timer = Stopwatch::start_if(on);
        let input = digest(name, reads, &mut fps, ctx)?;
        fingerprint_micros += fp_timer.micros();
        if ctx.ledger.get(name).map(|r| r.input_digest) == Some(input) {
            let mut sr = StageReport::skipped(name, "inputs unchanged since last run");
            // micros stays an explicit 0 — the skip cost only the digest
            // check above; what the stage cost when it last executed rides
            // along from the ledger.
            sr.micros = 0;
            sr.last_micros = ctx.ledger.get(name).map(|r| r.micros);
            sr.resolution_after = ctx.catalogs.working.resolution_fraction();
            event!(Level::Debug, "pipeline", "{name}: skipped (inputs unchanged)");
            report.stages.push(sr);
            continue;
        }
        let started = Instant::now();
        let mut sr = {
            let mut view = CtxView::scoped(ctx, name, reads, writes);
            c.run(&mut view)?
        };
        sr.micros = started.elapsed().as_micros() as u64;
        for w in writes {
            fps.invalidate(*w);
        }
        let fp_timer = Stopwatch::start_if(on);
        let output = digest(name, writes, &mut fps, ctx)?;
        fingerprint_micros += fp_timer.micros();
        ctx.ledger.record(
            name,
            StageRecord {
                input_digest: input,
                output_digest: output,
                micros: sr.micros,
                last_run: ctx.run_id,
            },
        );
        if on {
            metamess_telemetry::global()
                .histogram(&labeled("metamess_pipeline_stage_micros", "stage", name))
                .record(sr.micros);
            // a child span per executed stage under the wrangle root
            metamess_telemetry::trace::record_span(name, sr.micros, None);
        }
        event!(Level::Info, "pipeline", "{name}: ran in {}µs", sr.micros);
        executed.push(ix);
        report.stages.push(sr);
    }
    // End-of-run projection (see module docs): stages that ran get their
    // input digest re-recorded against the final slot state, so an
    // unchanged re-run skips them immediately. Skipped stages keep their
    // previous entries.
    for ix in &executed {
        let name = components[*ix].name();
        let fp_timer = Stopwatch::start_if(on);
        let input = digest(name, components[*ix].reads(), &mut fps, ctx)?;
        fingerprint_micros += fp_timer.micros();
        if let Some(rec) = ctx.ledger.stages.get_mut(name) {
            rec.input_digest = input;
        }
    }
    ctx.ledger.run_id = ctx.run_id;
    if on {
        let r = metamess_telemetry::global();
        r.counter("metamess_pipeline_stages_ran_total").add(executed.len() as u64);
        r.counter("metamess_pipeline_stages_skipped_total")
            .add((report.stages.len() - executed.len()) as u64);
        r.histogram("metamess_pipeline_fingerprint_micros").record(fingerprint_micros);
        r.gauge("metamess_pipeline_last_run_id").set(ctx.run_id as i64);
        metamess_telemetry::trace::record_span("fingerprint", fingerprint_micros, None);
    }
    if trace_guard.0 {
        trace_guard.0 = false;
        // never routed to the slow-query log: a wrangle run is expected to
        // take as long as it takes
        if let Some(fin) = metamess_telemetry::trace::end(u64::MAX) {
            ctx.ledger.trace_id = fin.trace_id_hex();
        }
    }
    Ok(report)
}

const WORKING_FILE: &str = "working.bin";
const PUBLISHED_FILE: &str = "published.bin";
const LEDGER_FILE: &str = "ledger.bin";
const VOCAB_FILE: &str = "vocabulary.json";
const SIDECAR_FILE: &str = "curation.json";

/// The context state that is neither a catalog nor the vocabulary,
/// serialized as one JSON sidecar.
#[derive(Serialize, Deserialize)]
struct Sidecar {
    run_id: u64,
    publish_count: u64,
    external: BTreeMap<String, BTreeMap<String, String>>,
    proposals: Vec<RuleProposal>,
    accepted: Vec<RuleProposal>,
    findings: Vec<ValidationFinding>,
    discovered_provenance: BTreeMap<String, String>,
    expected_datasets: Vec<String>,
}

/// Persists the pipeline state (catalogs, vocabulary, run ledger, curation
/// side-state) into `dir`, creating it if needed. A context restored with
/// [`load_state`] resumes incrementality: an unchanged archive re-run in a
/// fresh process skips every stage.
pub fn save_state(ctx: &PipelineContext, dir: impl AsRef<Path>) -> Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).io_ctx(format!("create state dir {}", dir.display()))?;
    write_snapshot(dir.join(WORKING_FILE), &ctx.catalogs.working)?;
    write_snapshot(dir.join(PUBLISHED_FILE), &ctx.catalogs.published)?;
    ctx.vocab.save(dir.join(VOCAB_FILE))?;
    let sidecar = Sidecar {
        run_id: ctx.run_id,
        publish_count: ctx.catalogs.publish_count,
        external: ctx.external.clone(),
        proposals: ctx.proposals.clone(),
        accepted: ctx.accepted.clone(),
        findings: ctx.findings.clone(),
        discovered_provenance: ctx.discovered_provenance.clone(),
        expected_datasets: ctx.expected_datasets.clone(),
    };
    let payload = serde_json::to_vec_pretty(&sidecar)
        .map_err(|e| Error::invalid(format!("unencodable curation state: {e}")))?;
    let tmp = dir.join("curation.tmp");
    std::fs::write(&tmp, &payload).io_ctx(format!("write {}", tmp.display()))?;
    std::fs::rename(&tmp, dir.join(SIDECAR_FILE)).io_ctx("rename curation state")?;
    // the ledger goes last: load_state keys off it, so earlier pieces are
    // guaranteed present whenever the ledger is
    write_ledger(dir.join(LEDGER_FILE), &ctx.ledger)?;
    Ok(())
}

/// Moves a corrupt state file into `<dir>/quarantine` with a structured
/// reason sidecar (best-effort) and reports "no resumable state". A damaged
/// resume cache costs one full re-run — never a crash or a wrong resume.
fn quarantine_state_file(dir: &Path, path: &Path, detail: String) -> Result<bool> {
    let reason = QuarantineReason {
        source: path.display().to_string(),
        detail,
        quarantined_by: "load_state".to_string(),
    };
    match quarantine_file(std_vfs().as_ref(), path, &dir.join("quarantine"), &reason) {
        Ok(dest) => event!(
            Level::Warn,
            "pipeline",
            "quarantined corrupt state file {} to {} ({})",
            path.display(),
            dest.display(),
            reason.detail
        ),
        Err(e) => event!(
            Level::Warn,
            "pipeline",
            "corrupt state file {} could not be quarantined: {e}",
            path.display()
        ),
    }
    Ok(false)
}

/// Restores state saved by [`save_state`] into `ctx`. Returns `false`
/// (leaving `ctx` untouched) when `dir` holds no complete state. A state
/// file that fails verification is quarantined into `<dir>/quarantine`
/// (with a `*.reason.json` sidecar) and the function returns `false`, so
/// the next run starts fresh instead of erroring. The archive input and
/// configuration are *not* restored — they describe where to wrangle, not
/// what was wrangled — so callers keep whatever they constructed the
/// context with.
pub fn load_state(ctx: &mut PipelineContext, dir: impl AsRef<Path>) -> Result<bool> {
    let dir = dir.as_ref();
    let ledger_path = dir.join(LEDGER_FILE);
    let ledger = match read_ledger(&ledger_path) {
        Ok(Some(l)) => l,
        Ok(None) => return Ok(false),
        Err(e) if e.is_corrupt() => return quarantine_state_file(dir, &ledger_path, e.to_string()),
        Err(e) => return Err(e),
    };
    let mut snapshots = Vec::new();
    for file in [WORKING_FILE, PUBLISHED_FILE] {
        let path = dir.join(file);
        match read_snapshot(&path) {
            Ok(Some(c)) => snapshots.push(c),
            Ok(None) => return Ok(false),
            Err(e) if e.is_corrupt() => {
                return quarantine_state_file(dir, &path, e.to_string());
            }
            Err(e) => return Err(e),
        }
    }
    let published = snapshots.pop().expect("two snapshots read");
    let working = snapshots.pop().expect("two snapshots read");
    let vocab_path = dir.join(VOCAB_FILE);
    let sidecar_path = dir.join(SIDECAR_FILE);
    if !vocab_path.exists() || !sidecar_path.exists() {
        return Ok(false);
    }
    let vocab = match Vocabulary::load(&vocab_path) {
        Ok(v) => v,
        // The vocabulary is plain JSON (no CRC frame), so any decode
        // failure on an existing file is corruption.
        Err(e) => return quarantine_state_file(dir, &vocab_path, e.to_string()),
    };
    let bytes = std::fs::read(&sidecar_path).io_ctx(format!("read {}", sidecar_path.display()))?;
    let sidecar: Sidecar = match serde_json::from_slice::<Sidecar>(&bytes) {
        Ok(s) => s,
        Err(e) => {
            return quarantine_state_file(
                dir,
                &sidecar_path,
                format!("curation state undecodable: {e}"),
            );
        }
    };
    ctx.catalogs.working = working;
    ctx.catalogs.published = published;
    ctx.catalogs.publish_count = sidecar.publish_count;
    ctx.vocab = vocab;
    ctx.external = sidecar.external;
    ctx.proposals = sidecar.proposals;
    ctx.accepted = sidecar.accepted;
    ctx.findings = sidecar.findings;
    ctx.discovered_provenance = sidecar.discovered_provenance;
    ctx.expected_datasets = sidecar.expected_datasets;
    ctx.run_id = sidecar.run_id;
    ctx.ledger = ledger;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use crate::stages::{PerformKnownTransformations, ScanArchive};
    use crate::validate::Validate;
    use crate::Publish;
    use metamess_archive::{generate, ArchiveSpec};

    fn ctx() -> PipelineContext {
        let archive = generate(&ArchiveSpec::tiny());
        PipelineContext::new(ArchiveInput::Memory(archive.files), Vocabulary::observatory_default())
    }

    #[test]
    fn digests_are_stable_and_name_scoped() {
        let c = ctx();
        let mut fps1 = SlotFps::default();
        let mut fps2 = SlotFps::default();
        let slots = [Slot::Working, Slot::Vocab];
        let a = digest("stage-a", &slots, &mut fps1, &c).unwrap();
        let b = digest("stage-a", &slots, &mut fps2, &c).unwrap();
        assert_eq!(a, b, "same state must digest identically across memos");
        let other = digest("stage-b", &slots, &mut fps1, &c).unwrap();
        assert_ne!(a, other, "digests are scoped by stage name");
        let fewer = digest("stage-a", &slots[..1], &mut fps1, &c).unwrap();
        assert_ne!(a, fewer, "digests depend on the slot set");
    }

    #[test]
    fn unchanged_rerun_skips_every_stage() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        let r1 = p.run(&mut c).unwrap();
        assert_eq!(r1.skipped_count(), 0);
        let published_fp = c.catalogs.published.content_fingerprint();
        let generation = c.catalogs.published_generation();
        let r2 = p.run(&mut c).unwrap();
        assert_eq!(r2.executed_count(), 0, "{}", r2.render());
        assert_eq!(r2.skipped_count(), 9);
        for s in &r2.stages {
            assert!(s.is_skipped(), "{} should be skipped", s.component);
        }
        assert_eq!(c.catalogs.published.content_fingerprint(), published_fp);
        assert_eq!(c.catalogs.published_generation(), generation);
        assert_eq!(r2.run_id, 2);
    }

    #[test]
    fn skipped_stage_carries_last_execution_timing() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        let r1 = p.run(&mut c).unwrap();
        let scan1 = r1.stage("scan-archive").unwrap();
        assert!(scan1.last_micros.is_none(), "a stage that ran reports its own micros");
        let r2 = p.run(&mut c).unwrap();
        let scan2 = r2.stage("scan-archive").unwrap();
        assert!(scan2.is_skipped());
        assert_eq!(scan2.micros, 0, "a skip costs only the digest check");
        assert_eq!(scan2.last_micros, Some(scan1.micros), "ledger timing rides along");
        // the ledger remembers which run last *executed* each stage
        assert_eq!(c.ledger.get("scan-archive").unwrap().last_run, 1);
        assert_eq!(c.ledger.run_id, 2);
    }

    #[test]
    fn wrangle_run_records_a_trace_id_in_the_ledger() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        if !metamess_telemetry::enabled() {
            assert_eq!(c.ledger.trace_id, "", "no trace id under METAMESS_TELEMETRY=0");
            return;
        }
        let tid = c.ledger.trace_id.clone();
        assert_eq!(tid.len(), 32, "ledger carries the 128-bit hex trace id: {tid:?}");
        // The wrangle trace sits in the flight recorder with one child
        // span per executed stage.
        let id = metamess_telemetry::trace::parse_trace_id(&tid).unwrap();
        let rec = metamess_telemetry::trace::flight().find(id).expect("wrangle trace in the ring");
        let names: Vec<&str> = rec.spans().iter().map(|s| s.name).collect();
        assert_eq!(names[0], "wrangle");
        assert!(names.contains(&"scan-archive"), "{names:?}");
        assert!(names.contains(&"publish"), "{names:?}");
        // Every run is its own trace, even an all-skipped one.
        p.run(&mut c).unwrap();
        assert_ne!(c.ledger.trace_id, tid);
    }

    #[test]
    fn archive_edit_dirties_the_scan() {
        let archive = generate(&ArchiveSpec::tiny());
        let mut files = archive.files;
        let mut c = PipelineContext::new(
            ArchiveInput::Memory(files.clone()),
            Vocabulary::observatory_default(),
        );
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        // modify one harvested file's values
        let ix = files
            .iter()
            .position(|(p, _)| c.catalogs.working.get_by_path(p).is_some())
            .expect("a harvested file");
        files[ix].1 = files[ix].1.replace("10.", "11.");
        c.archive = ArchiveInput::Memory(files);
        let r = p.run(&mut c).unwrap();
        let scan = r.stage("scan-archive").unwrap();
        assert!(!scan.is_skipped());
        // per-file incrementality inside the stage: only the edited file
        // was re-parsed
        assert_eq!(scan.changed, 1, "{:?}", scan.notes);
    }

    #[test]
    fn expected_change_reruns_only_validate() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        // expect a dataset that exists: validate must re-run, but its
        // findings are unchanged, so publish early-cuts-off and skips
        let existing = c.catalogs.working.iter().next().unwrap().path.clone();
        c.expected_datasets.push(existing);
        let r = p.run(&mut c).unwrap();
        let executed: Vec<&str> =
            r.stages.iter().filter(|s| !s.is_skipped()).map(|s| s.component.as_str()).collect();
        assert_eq!(executed, vec!["validate"], "{}", r.render());
    }

    #[test]
    fn vocab_improvement_dirties_dependents_but_not_scan() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        c.vocab.bump_version();
        let r = p.run(&mut c).unwrap();
        assert!(r.stage("scan-archive").unwrap().is_skipped(), "{}", r.render());
        assert!(!r.stage("perform-known-transformations").unwrap().is_skipped());
    }

    #[test]
    fn failed_run_recovers_without_wrong_skips() {
        let mut p = Pipeline::new(vec![
            Box::new(ScanArchive),
            Box::new(Validate::default()),
            Box::new(Publish { strict: true }),
        ]);
        let mut c = ctx();
        c.expected_datasets.push("missing/ghost.csv".into());
        let err = p.run(&mut c).unwrap_err();
        assert!(err.to_string().contains("block publish"), "{err}");
        assert!(c.catalogs.published.is_empty());
        // fix the expectation and re-run: the completed scan skips, the
        // dirty validate/publish suffix runs, and publish goes through
        c.expected_datasets.clear();
        let r = p.run(&mut c).unwrap();
        assert!(r.stage("scan-archive").unwrap().is_skipped());
        assert!(!r.stage("validate").unwrap().is_skipped());
        assert!(!r.stage("publish").unwrap().is_skipped());
        assert!(!c.catalogs.published.is_empty());
    }

    #[test]
    fn state_roundtrip_resumes_incrementality() {
        let dir =
            std::env::temp_dir().join(format!("metamess-engine-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let archive = generate(&ArchiveSpec::tiny());
        let mut c = PipelineContext::new(
            ArchiveInput::Memory(archive.files.clone()),
            Vocabulary::observatory_default(),
        );
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        save_state(&c, &dir).unwrap();

        // a fresh process: new context over the same archive
        let mut c2 = PipelineContext::new(
            ArchiveInput::Memory(archive.files),
            Vocabulary::observatory_default(),
        );
        assert!(load_state(&mut c2, &dir).unwrap());
        assert_eq!(c2.run_id, c.run_id);
        assert_eq!(
            c2.catalogs.working.content_fingerprint(),
            c.catalogs.working.content_fingerprint()
        );
        assert_eq!(c2.catalogs.publish_count, c.catalogs.publish_count);
        let r = Pipeline::standard().run(&mut c2).unwrap();
        assert_eq!(r.executed_count(), 0, "restored state must skip everything: {}", r.render());

        // loading from an empty dir is a clean miss
        let empty =
            std::env::temp_dir().join(format!("metamess-engine-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&empty);
        std::fs::create_dir_all(&empty).unwrap();
        let mut c3 = ctx();
        assert!(!load_state(&mut c3, &empty).unwrap());
        assert_eq!(c3.run_id, 0);
    }

    #[test]
    fn saved_state_is_byte_identical_across_two_reopen_cycles() {
        let base =
            std::env::temp_dir().join(format!("metamess-engine-bytes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let dirs = [base.join("save0"), base.join("save1"), base.join("save2")];

        let archive = generate(&ArchiveSpec::tiny());
        let mut c = PipelineContext::new(
            ArchiveInput::Memory(archive.files.clone()),
            Vocabulary::observatory_default(),
        );
        Pipeline::standard().run(&mut c).unwrap();
        save_state(&c, &dirs[0]).unwrap();

        // Two load→save cycles in "fresh processes": persisting restored
        // state must reproduce every artifact bit for bit — any drift here
        // would defeat fingerprint-based skipping and make resume lossy.
        for cycle in 1..3 {
            let mut fresh = PipelineContext::new(
                ArchiveInput::Memory(archive.files.clone()),
                Vocabulary::observatory_default(),
            );
            assert!(load_state(&mut fresh, &dirs[cycle - 1]).unwrap());
            save_state(&fresh, &dirs[cycle]).unwrap();
            for file in [WORKING_FILE, PUBLISHED_FILE, LEDGER_FILE, VOCAB_FILE, SIDECAR_FILE] {
                let before = std::fs::read(dirs[cycle - 1].join(file)).unwrap();
                let after = std::fs::read(dirs[cycle].join(file)).unwrap();
                assert_eq!(before, after, "cycle {cycle}: {file} drifted across save/load/save");
            }
        }
    }

    #[test]
    fn empty_delta_publish_survives_reopen() {
        let dir =
            std::env::temp_dir().join(format!("metamess-engine-emptydelta-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let archive = generate(&ArchiveSpec::tiny());
        let fresh_ctx = || {
            PipelineContext::new(
                ArchiveInput::Memory(archive.files.clone()),
                Vocabulary::observatory_default(),
            )
        };

        let mut c = fresh_ctx();
        Pipeline::standard().run(&mut c).unwrap();
        let published_fp = c.catalogs.published.content_fingerprint();
        save_state(&c, &dir).unwrap();

        // Second process: nothing changed, so publish has an empty delta
        // (it is skipped). Saving that state and reopening a third time
        // must preserve the published catalog exactly.
        let mut c2 = fresh_ctx();
        assert!(load_state(&mut c2, &dir).unwrap());
        let r = Pipeline::standard().run(&mut c2).unwrap();
        assert!(r.stage("publish").unwrap().is_skipped(), "{}", r.render());
        save_state(&c2, &dir).unwrap();

        let mut c3 = fresh_ctx();
        assert!(load_state(&mut c3, &dir).unwrap());
        assert_eq!(c3.catalogs.published.content_fingerprint(), published_fp);
        assert_eq!(c3.catalogs.publish_count, c.catalogs.publish_count);
        let r = Pipeline::standard().run(&mut c3).unwrap();
        assert_eq!(r.executed_count(), 0, "{}", r.render());
    }

    #[test]
    fn corrupt_state_is_quarantined_and_load_reports_no_state() {
        let dir =
            std::env::temp_dir().join(format!("metamess-engine-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = ctx();
        Pipeline::standard().run(&mut c).unwrap();
        save_state(&c, &dir).unwrap();

        // flip a payload byte inside the CRC-framed ledger
        let ledger = dir.join(LEDGER_FILE);
        let mut bytes = std::fs::read(&ledger).unwrap();
        let ix = bytes.len() - 2;
        bytes[ix] ^= 0x01;
        std::fs::write(&ledger, &bytes).unwrap();

        let mut c2 = ctx();
        assert!(!load_state(&mut c2, &dir).unwrap(), "corrupt ledger must not resume");
        assert_eq!(c2.run_id, 0, "context untouched");
        assert!(!ledger.exists(), "corrupt ledger moved away");
        let qdir = dir.join("quarantine");
        assert!(qdir.join("ledger.bin.0").exists());
        assert!(qdir.join("ledger.bin.0.reason.json").exists());

        // with the damage quarantined, a re-run + save works again
        save_state(&c, &dir).unwrap();
        let mut c3 = ctx();
        assert!(load_state(&mut c3, &dir).unwrap());

        // an undecodable curation sidecar is quarantined the same way
        std::fs::write(dir.join(SIDECAR_FILE), b"]{ not json").unwrap();
        let mut c4 = ctx();
        assert!(!load_state(&mut c4, &dir).unwrap());
        assert!(qdir.join("curation.json.0").exists());
    }

    struct Misdeclared;

    impl Component for Misdeclared {
        fn name(&self) -> &'static str {
            "misdeclared"
        }
        fn reads(&self) -> &'static [Slot] {
            &[Slot::Working]
        }
        fn writes(&self) -> &'static [Slot] {
            &[Slot::Working]
        }
        fn run(&mut self, view: &mut CtxView<'_>) -> Result<StageReport> {
            let _ = view.vocab(); // not declared: must trip the debug assert
            Ok(StageReport::new(self.name()))
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "undeclared read")]
    fn misdeclared_access_panics_in_debug() {
        let mut c = ctx();
        let _ = Misdeclared.run_standalone(&mut c);
    }

    #[test]
    fn declared_superset_access_is_allowed() {
        // reading a slot you declared as a write (read-modify-write) is fine
        let mut c = ctx();
        let r = PerformKnownTransformations.run_standalone(&mut c).unwrap();
        assert_eq!(r.component, "perform-known-transformations");
    }
}
