//! # metamess-formats
//!
//! The archive file formats the synthetic observatory writes and the
//! harvester reads: delimited text with observatory header conventions
//! ([`parse_csv`]), a textual NetCDF-like CDL ([`parse_cdl`]), and the
//! starred instrument cast log ([`parse_obslog`]) — plus format sniffing and
//! the writers the archive generator uses.

mod cdl;
mod csv;
mod model;
mod obslog;
mod sniff;

pub use cdl::{parse_cdl, write_cdl};
pub use csv::{parse_csv, write_csv, CsvOptions};
pub use model::{ColumnDef, FormatKind, ParsedFile};
pub use obslog::{parse_obslog, write_obslog};
pub use sniff::{parse_as, sniff, sniff_and_parse, sniff_content, sniff_extension};
