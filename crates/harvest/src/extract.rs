//! Feature extraction: one parsed file → one catalog [`DatasetFeature`].
//!
//! This is the "individual datasets scanned once, summarized into a feature"
//! step of the paper's IR architecture. Space and time are folded into the
//! dataset's bounding box and interval; every other column becomes a
//! [`VariableFeature`] with a one-pass numeric summary.

use crate::naming::PathFacts;
use metamess_core::feature::{DatasetFeature, Provenance, VariableFeature};
use metamess_core::geo::{GeoBBox, GeoPoint};
use metamess_core::stats::ColumnSummary;
use metamess_core::time::{TimeInterval, Timestamp};
use metamess_core::value::Value;
use metamess_formats::ParsedFile;

/// Column names treated as coordinate axes rather than variables.
const TIME_COLUMNS: &[&str] = &["time", "datetime", "timestamp", "date"];
const LAT_COLUMNS: &[&str] = &["lat", "latitude"];
const LON_COLUMNS: &[&str] = &["lon", "longitude", "lng"];

fn is_one_of(name: &str, set: &[&str]) -> bool {
    set.iter().any(|s| name.eq_ignore_ascii_case(s))
}

/// Extracts the catalog feature for a parsed file.
pub fn extract_feature(
    rel_path: &str,
    parsed: &ParsedFile,
    facts: &PathFacts,
    fingerprint: u64,
    file_len: u64,
    pipeline_run: u64,
) -> DatasetFeature {
    let mut feature = DatasetFeature::new(rel_path);
    feature.title = facts.title.clone().unwrap_or_else(|| rel_path.to_string());

    // Source: file metadata wins over naming convention.
    feature.source = parsed
        .meta("station")
        .or_else(|| parsed.meta("cruise"))
        .or_else(|| parsed.meta("mission"))
        .map(str::to_string)
        .or_else(|| facts.source.clone());

    // Context: platform metadata wins over the naming rule's default.
    let context = parsed.meta("platform").map(str::to_string).or_else(|| facts.context.clone());

    // External metadata: everything the file header declared.
    for (k, v) in &parsed.metadata {
        feature.external.insert(k.clone(), v.clone());
    }
    if let Some(ctx) = &context {
        feature.external.insert("context".into(), ctx.clone());
    }

    // Column summaries in one pass.
    let mut summaries: Vec<ColumnSummary> =
        parsed.columns.iter().map(|_| ColumnSummary::default()).collect();
    for row in &parsed.rows {
        for (ix, col) in parsed.columns.iter().enumerate() {
            if let Some(v) = row.get(&col.name) {
                summaries[ix].observe(v);
            } else {
                summaries[ix].observe(&Value::Null);
            }
        }
    }
    feature.record_count = parsed.rows.len() as u64;

    // Spatial extent: metadata point, extended by lat/lon columns.
    let mut bbox: Option<GeoBBox> = None;
    if let (Some(lat), Some(lon)) = (parsed.meta_f64("lat"), parsed.meta_f64("lon")) {
        if let Ok(p) = GeoPoint::new(lat, lon) {
            bbox = Some(GeoBBox::point(p));
        }
    }
    let lat_ix = parsed.columns.iter().position(|c| is_one_of(&c.name, LAT_COLUMNS));
    let lon_ix = parsed.columns.iter().position(|c| is_one_of(&c.name, LON_COLUMNS));
    if let (Some(lat_ix), Some(lon_ix)) = (lat_ix, lon_ix) {
        for row in &parsed.rows {
            let lat =
                parsed.columns.get(lat_ix).and_then(|c| row.get(&c.name)).and_then(Value::as_f64);
            let lon =
                parsed.columns.get(lon_ix).and_then(|c| row.get(&c.name)).and_then(Value::as_f64);
            if let (Some(lat), Some(lon)) = (lat, lon) {
                if let Ok(p) = GeoPoint::new(lat, lon) {
                    match bbox {
                        Some(ref mut b) => b.extend(&p),
                        None => bbox = Some(GeoBBox::point(p)),
                    }
                }
            }
        }
    }
    feature.bbox = bbox;

    // Temporal extent: time-typed columns, else `cast`-style metadata.
    let mut time: Option<TimeInterval> = None;
    for (ix, col) in parsed.columns.iter().enumerate() {
        if !is_one_of(&col.name, TIME_COLUMNS) && summaries[ix].time_count == 0 {
            continue;
        }
        if let (Some(lo), Some(hi)) = (summaries[ix].time_min, summaries[ix].time_max) {
            let iv = TimeInterval::new(Timestamp(lo), Timestamp(hi));
            time = Some(match time {
                Some(t) => t.union(&iv),
                None => iv,
            });
        }
    }
    if time.is_none() {
        if let Some(cast) = parsed.meta("cast") {
            if let Ok(t) = Timestamp::parse(cast) {
                time = Some(TimeInterval::instant(t));
            }
        }
    }
    feature.time = time;

    // Variables: every non-coordinate column.
    for (ix, col) in parsed.columns.iter().enumerate() {
        if is_one_of(&col.name, TIME_COLUMNS)
            || is_one_of(&col.name, LAT_COLUMNS)
            || is_one_of(&col.name, LON_COLUMNS)
        {
            continue;
        }
        let s = &summaries[ix];
        let mut v = VariableFeature::new(col.name.clone());
        v.unit = col.unit.clone();
        v.context = context.clone();
        v.summary = s.numeric.clone();
        v.null_count = s.nulls;
        v.total_count = s.total;
        feature.variables.push(v);
    }

    feature.provenance = Provenance {
        content_fingerprint: fingerprint,
        file_len,
        pipeline_run,
        format: parsed.format.name().to_string(),
    };
    feature
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naming::{infer_path_facts, observatory_rules};
    use metamess_formats::{parse_csv, parse_obslog, CsvOptions};

    fn facts_for(path: &str) -> PathFacts {
        infer_path_facts(&observatory_rules(), path)
    }

    #[test]
    fn station_csv_feature() {
        let text = "# station: saturn01\n# lat: 46.23\n# lon: -123.87\n# platform: buoy\n\
time,water_temperature (degC),sal (PSU),qa_level\n\
2010-06-01T00:00:00Z,10.5,28.0,1\n2010-06-02T00:00:00Z,11.0,29.5,1\n2010-06-03T00:00:00Z,,30.0,2\n";
        let parsed = parse_csv(text, &CsvOptions::default()).unwrap();
        let path = "stations/saturn01/2010/06.csv";
        let f = extract_feature(path, &parsed, &facts_for(path), 42, text.len() as u64, 1);

        assert_eq!(f.title, "Station saturn01, 2010-06");
        assert_eq!(f.source.as_deref(), Some("saturn01"));
        assert_eq!(f.record_count, 3);
        let bbox = f.bbox.unwrap();
        assert_eq!(bbox.min_lat, 46.23);
        let time = f.time.unwrap();
        assert_eq!(time.start.to_date_string(), "2010-06-01");
        assert_eq!(time.end.to_date_string(), "2010-06-03");
        // time column folded into the interval, not a variable
        assert_eq!(f.variables.len(), 3);
        let wt = f.variable("water_temperature").unwrap();
        assert_eq!(wt.unit.as_deref(), Some("degC"));
        assert_eq!(wt.value_range(), Some((10.5, 11.0)));
        assert_eq!(wt.null_count, 1);
        assert_eq!(wt.total_count, 3);
        assert_eq!(wt.context.as_deref(), Some("buoy"));
        assert_eq!(f.external.get("context").map(String::as_str), Some("buoy"));
        assert_eq!(f.provenance.content_fingerprint, 42);
        assert_eq!(f.provenance.format, "csv");
    }

    #[test]
    fn glider_track_bbox_from_columns() {
        let text = "# mission: g01\n# platform: glider\ntime,lat,lon,depth\n\
2010-03-05T00:00:00Z,46.10,-124.35,5.0\n2010-03-05T01:00:00Z,46.00,-124.20,8.0\n";
        let parsed = parse_csv(text, &CsvOptions::default()).unwrap();
        let path = "gliders/g01/track.csv";
        let f = extract_feature(path, &parsed, &facts_for(path), 1, 1, 1);
        let b = f.bbox.unwrap();
        assert_eq!(b.min_lat, 46.00);
        assert_eq!(b.max_lat, 46.10);
        assert_eq!(b.min_lon, -124.35);
        assert_eq!(b.max_lon, -124.20);
        // lat/lon are coordinates, not variables
        assert_eq!(f.variables.len(), 1);
        assert_eq!(f.variables[0].name, "depth");
        assert_eq!(f.source.as_deref(), Some("g01"));
    }

    #[test]
    fn obslog_cast_feature() {
        let text = "*HEADER\n*CRUISE: c01\n*PLATFORM: ctd\n\
*POSITION: 46.18 -123.18\n*CAST: 20100615100000\n*FIELDS: depth temp sal\n*UNITS: m degC psu\n*END\n\
1.0 12.0 28.0\n2.0 11.8 28.4\n";
        let parsed = parse_obslog(text).unwrap();
        let path = "cruises/c01/cast_01.obslog";
        let f = extract_feature(path, &parsed, &facts_for(path), 9, 9, 2);
        assert_eq!(f.title, "Cruise c01, cast 01");
        assert_eq!(f.source.as_deref(), Some("c01"));
        // no time column: cast metadata provides an instant
        let t = f.time.unwrap();
        assert_eq!(t.start, t.end);
        assert_eq!(t.start.to_iso8601(), "2010-06-15T10:00:00Z");
        assert_eq!(f.variables.len(), 3);
        assert_eq!(f.variable("temp").unwrap().context.as_deref(), Some("ctd"));
        assert_eq!(f.provenance.pipeline_run, 2);
    }

    #[test]
    fn file_without_position_or_time() {
        let text = "a,b\n1,2\n";
        let parsed = parse_csv(text, &CsvOptions::default()).unwrap();
        let f = extract_feature("misc/x.csv", &parsed, &facts_for("misc/x.csv"), 0, 0, 0);
        assert!(f.bbox.is_none());
        assert!(f.time.is_none());
        assert_eq!(f.variables.len(), 2);
        assert_eq!(f.title, "misc/x.csv");
    }

    #[test]
    fn invalid_positions_ignored() {
        let text = "# lat: 999\n# lon: -123\na\n1\n";
        let parsed = parse_csv(text, &CsvOptions::default()).unwrap();
        let f = extract_feature("misc/x.csv", &parsed, &PathFacts::default(), 0, 0, 0);
        assert!(f.bbox.is_none());
    }

    #[test]
    fn time_detected_by_content_not_name() {
        // a column full of timestamps counts toward the interval even if
        // it is not called "time"
        let text = "obs_at,v\n2010-01-01T00:00:00Z,1\n2010-01-05T00:00:00Z,2\n";
        let parsed = parse_csv(text, &CsvOptions::default()).unwrap();
        let f = extract_feature("misc/t.csv", &parsed, &PathFacts::default(), 0, 0, 0);
        let t = f.time.unwrap();
        assert_eq!(t.duration_secs(), 4 * 86_400);
        // but the column also stays a variable (it is not a known time name)
        assert!(f.variable("obs_at").is_some());
    }
}
