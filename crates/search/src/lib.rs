//! # metamess-search
//!
//! "Data Near Here": ranked similarity search over the metadata catalog —
//! query model and text query language, distance-based scoring over
//! location/time/variables with vocabulary expansion, a static R-tree and
//! interval index for candidate generation, and the text renderings of the
//! poster's search-interface and dataset-summary figures.
//!
//! ## Sharding, concurrency, top-k, and caching
//!
//! The read path is built to be parallel and allocation-lean:
//!
//! * The catalog is partitioned into shards at build time ([`ShardSpec`]):
//!   each [`ShardEngine`] has its own indexes plus pruning bounds, and the
//!   [`ShardedEngine`] coordinator fans queries out, prunes shards whose
//!   bounds exclude the query, and merges per-shard results — bit-identical
//!   to the unsharded engine at any shard count.
//! * [`QueryPlan`] precomputes vocabulary expansion, hierarchy walks and
//!   term normalization once per query (shared between candidate generation
//!   and scoring via `Vocabulary::expand_keys` / `canonical_keys`).
//! * Candidates are scored by an allocation-free fast scorer (build-time
//!   interned per-variable name keys; no normalization or `String` per
//!   candidate) into a bounded top-k heap of light `(score, shard, local)`
//!   tuples — O(n log k) instead of sorting every scored hit — optionally
//!   across `SearchEngine::workers` crossbeam scoped threads; only the
//!   final `≤ limit` survivors are materialized into [`SearchHit`]s. The
//!   rank order `(score desc, path asc)` is a strict total order, so
//!   parallel results are **bit-identical** to sequential ones for any
//!   worker count ([`TopK`] remains the general-purpose building block).
//! * A generation-stamped LRU [`ResultCache`] serves repeated queries
//!   against an unchanged published catalog without rescoring; entries are
//!   invalidated simply by the catalog generation moving on publish, and
//!   hit/miss counters are exposed for the benches. Under live delta
//!   publication the [`delta`] analysis re-stamps provably-unaffected
//!   entries in place ([`ResultCache::retarget`]) so the cache survives
//!   in-place catalog updates.

#![warn(missing_docs)]

mod browse;
mod cache;
pub mod delta;
mod engine;
mod explain;
pub mod fanout;
mod interval;
mod plan;
mod query;
mod rtree;
mod score;
mod shard;
mod summary;
mod topk;

pub use browse::{browse_all, browse_taxonomy, BrowseNode, BrowseTree};
pub use cache::{CacheStats, ResultCache, DEFAULT_CACHE_CAPACITY};
pub use delta::{compute_touches, entry_survives, TouchedDataset};
pub use engine::{SearchEngine, SearchHit, ShardedEngine};
pub use explain::SearchExplain;
pub use fanout::{ProbeSummary, ScoreWork};
pub use interval::IntervalIndex;
pub use plan::QueryPlan;
pub use query::{Query, SpatialTerm, VariableTerm, Weights, MAX_LIMIT};
pub use rtree::RTree;
pub use score::{
    prepared_term_score, score_dataset, score_dataset_prepared, spatial_score, temporal_score,
    variable_term_score, PreparedTerm, ScoreBreakdown,
};
pub use shard::{clamp_shards, Partitioner, ShardEngine, ShardSpec, MAX_SHARDS};
pub use summary::{render_results, render_summary};
pub use topk::TopK;

// Compile-time thread-safety contract: the HTTP server shares one
// `SearchEngine` (and its `ResultCache`) across worker threads behind an
// `Arc`. If a refactor ever introduces a non-`Send`/`Sync` field (an `Rc`,
// a `RefCell`, a raw pointer), this fails to build here — in the crate that
// owns the type — rather than as a confusing trait-bound error in the
// server, or worse, at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SearchEngine>();
    assert_send_sync::<ShardEngine>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<SearchHit>();
    assert_send_sync::<SearchExplain>();
};
