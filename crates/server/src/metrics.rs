//! The server's own metric families, recorded into the global
//! `metamess-telemetry` registry so `/metrics` and `metamess stats` see
//! them alongside search/store/pipeline series.
//!
//! Families:
//!
//! * `metamess_server_requests_total{route=…,status=…}` — one counter per
//!   (route, status) pair, including protocol errors under
//!   `route="invalid"`.
//! * `metamess_server_request_micros` — handler latency histogram.
//! * `metamess_server_connections_total` / `metamess_server_shed_total` —
//!   accepted vs shed connections.
//! * `metamess_server_queue_depth` — connections waiting right now.
//! * `metamess_server_reloads_total` — hot catalog reloads that swapped an
//!   epoch.
//! * `metamess_server_delta_applies_total` /
//!   `metamess_server_delta_mutations_total` — epochs produced by applying
//!   a WAL-tail delta in place (no store reopen), and the mutations those
//!   deltas carried.
//! * `metamess_server_delta_cache_survived_total` /
//!   `metamess_server_delta_cache_dropped_total` — result-cache entries
//!   re-stamped across a delta vs evicted by it.
//! * `metamess_server_delta_apply_micros` — end-to-end delta apply latency
//!   (tail read through epoch swap).
//! * `metamess_server_panics_total` — panics caught by the worker pool
//!   (the request gets a 500 or a dropped connection; the worker lives).
//! * `metamess_server_conn_open` — connections currently owned by the
//!   event loop (gauge; admission-capped at `workers + queue_depth`).
//! * `metamess_server_conn_timeouts_total` — connections closed by a
//!   deadline (idle, 408 read, or write stall).
//! * `metamess_server_drained_dropped_total` — connections still
//!   mid-request when the drain deadline expired (answered 503, closed).

use metamess_telemetry::global;

/// Records one served request: route/status counter + latency histogram.
/// The histogram carries a trace-id exemplar for the worst request seen,
/// so a bad p99 bucket in `/metrics` links straight to `/debug/traces?id=`.
pub(crate) fn record_request(route: &str, status: u16, micros: u64) {
    if !metamess_telemetry::enabled() {
        return;
    }
    // Two labels, hand-assembled in registry key syntax (the Prometheus
    // renderer splits at the first `{`).
    let name = format!("metamess_server_requests_total{{route=\"{route}\",status=\"{status}\"}}");
    global().counter(&name).add(1);
    // The handler's trace just ended on this worker thread, so its id is
    // the thread's "last" id — the exemplar for this exact request.
    global()
        .histogram("metamess_server_request_micros")
        .record_with_exemplar(micros, metamess_telemetry::trace::last_trace_id().unwrap_or(0));
}

/// Records one accepted connection.
pub(crate) fn record_connection() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_connections_total").add(1);
    }
}

/// Records one shed (503) connection.
pub(crate) fn record_shed() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_shed_total").add(1);
    }
}

/// Publishes the current accept-queue depth.
pub(crate) fn set_queue_depth(depth: usize) {
    if metamess_telemetry::enabled() {
        global().gauge("metamess_server_queue_depth").set(depth as i64);
    }
}

/// Records one epoch-swapping hot reload.
pub(crate) fn record_reload() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_reloads_total").add(1);
    }
}

/// Records one in-place delta application: the mutation count it carried,
/// how the result cache fared, and how long the whole apply took.
pub(crate) fn record_delta_apply(mutations: usize, survived: usize, dropped: usize, micros: u64) {
    if !metamess_telemetry::enabled() {
        return;
    }
    let g = global();
    g.counter("metamess_server_delta_applies_total").add(1);
    g.counter("metamess_server_delta_mutations_total").add(mutations as u64);
    g.counter("metamess_server_delta_cache_survived_total").add(survived as u64);
    g.counter("metamess_server_delta_cache_dropped_total").add(dropped as u64);
    g.histogram("metamess_server_delta_apply_micros").record(micros);
}

/// Records one caught panic (in a handler or a connection); the worker
/// survives, but a nonzero series here means a bug worth chasing.
pub(crate) fn record_panic() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_panics_total").add(1);
    }
}

/// A connection entered the event loop.
pub(crate) fn conn_opened() {
    if metamess_telemetry::enabled() {
        global().gauge("metamess_server_conn_open").inc();
    }
}

/// A connection left the event loop (any reason).
pub(crate) fn conn_closed() {
    if metamess_telemetry::enabled() {
        global().gauge("metamess_server_conn_open").dec();
    }
}

/// A connection was closed by a deadline (idle, 408 read, write stall).
pub(crate) fn record_conn_timeout() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_conn_timeouts_total").add(1);
    }
}

/// A connection was dropped at the drain deadline (answered 503).
pub(crate) fn record_drained_drop() {
    if metamess_telemetry::enabled() {
        global().counter("metamess_server_drained_dropped_total").add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_metric_renders_with_both_labels() {
        record_request("search", 200, 1234);
        let snap = global().snapshot();
        if !metamess_telemetry::enabled() {
            return; // nothing recorded under METAMESS_TELEMETRY=0
        }
        let key = "metamess_server_requests_total{route=\"search\",status=\"200\"}";
        assert!(snap.counters.contains_key(key), "missing {key}");
        let text = snap.render_prometheus();
        assert!(
            text.contains("metamess_server_requests_total{route=\"search\",status=\"200\"}"),
            "{text}"
        );
    }

    #[test]
    fn conn_gauge_balances_open_and_close() {
        if !metamess_telemetry::enabled() {
            return;
        }
        let before = global().gauge("metamess_server_conn_open").get();
        conn_opened();
        conn_opened();
        conn_closed();
        let after = global().gauge("metamess_server_conn_open").get();
        assert_eq!(after - before, 1);
        conn_closed();
        record_drained_drop();
        record_conn_timeout();
        let snap = global().snapshot();
        assert!(snap.counters.contains_key("metamess_server_drained_dropped_total"));
        assert!(snap.counters.contains_key("metamess_server_conn_timeouts_total"));
    }
}
