//! Method + path → endpoint, with proper `404` / `405` distinctions.

/// Where a request is routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /search` — ranked query.
    Search,
    /// `GET /datasets/<path>` — one dataset's catalog entry (the captured
    /// string is the percent-decoded archive-relative path).
    Dataset(String),
    /// `GET /browse` — per-taxonomy drill-down counts.
    Browse,
    /// `GET /healthz` — liveness + store generation.
    Healthz,
    /// `GET /metrics` — Prometheus exposition.
    Metrics,
    /// `GET /debug/traces` — flight-recorder / slow-query-log JSON.
    DebugTraces,
    /// `POST /admin/reload` — force a hot reload check.
    Reload,
    /// Known path, wrong method; answer `405` with this `Allow` value.
    MethodNotAllowed(&'static str),
    /// Unknown path; answer `404`.
    NotFound,
}

impl Route {
    /// Stable label for the `route` metric dimension.
    pub fn label(&self) -> &'static str {
        match self {
            Route::Search => "search",
            Route::Dataset(_) => "dataset",
            Route::Browse => "browse",
            Route::Healthz => "healthz",
            Route::Metrics => "metrics",
            Route::DebugTraces => "debug_traces",
            Route::Reload => "reload",
            Route::MethodNotAllowed(_) => "method_not_allowed",
            Route::NotFound => "not_found",
        }
    }
}

/// Routes a (method, decoded-path) pair.
pub fn route(method: &str, path: &str) -> Route {
    if let Some(rest) = path.strip_prefix("/datasets/") {
        return if method == "GET" {
            Route::Dataset(rest.to_string())
        } else {
            Route::MethodNotAllowed("GET")
        };
    }
    match (method, path) {
        ("POST", "/search") => Route::Search,
        (_, "/search") => Route::MethodNotAllowed("POST"),
        ("GET", "/browse") => Route::Browse,
        (_, "/browse") => Route::MethodNotAllowed("GET"),
        ("GET", "/healthz") => Route::Healthz,
        (_, "/healthz") => Route::MethodNotAllowed("GET"),
        ("GET", "/metrics") => Route::Metrics,
        (_, "/metrics") => Route::MethodNotAllowed("GET"),
        ("GET", "/debug/traces") => Route::DebugTraces,
        (_, "/debug/traces") => Route::MethodNotAllowed("GET"),
        ("POST", "/admin/reload") => Route::Reload,
        (_, "/admin/reload") => Route::MethodNotAllowed("POST"),
        _ => Route::NotFound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_routes() {
        assert_eq!(route("POST", "/search"), Route::Search);
        assert_eq!(route("GET", "/browse"), Route::Browse);
        assert_eq!(route("GET", "/healthz"), Route::Healthz);
        assert_eq!(route("GET", "/metrics"), Route::Metrics);
        assert_eq!(route("GET", "/debug/traces"), Route::DebugTraces);
        assert_eq!(route("POST", "/admin/reload"), Route::Reload);
        assert_eq!(
            route("GET", "/datasets/2014/07/saturn01_ctd.csv"),
            Route::Dataset("2014/07/saturn01_ctd.csv".into())
        );
    }

    #[test]
    fn wrong_method_is_405_with_allow() {
        assert_eq!(route("GET", "/search"), Route::MethodNotAllowed("POST"));
        assert_eq!(route("POST", "/healthz"), Route::MethodNotAllowed("GET"));
        assert_eq!(route("DELETE", "/datasets/x.csv"), Route::MethodNotAllowed("GET"));
        assert_eq!(route("GET", "/admin/reload"), Route::MethodNotAllowed("POST"));
        assert_eq!(route("POST", "/debug/traces"), Route::MethodNotAllowed("GET"));
    }

    #[test]
    fn unknown_path_is_404() {
        assert_eq!(route("GET", "/"), Route::NotFound);
        assert_eq!(route("GET", "/datasets"), Route::NotFound);
        assert_eq!(route("GET", "/nope"), Route::NotFound);
    }
}
