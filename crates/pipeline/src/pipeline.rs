//! The pipeline runner: composes components into the metadata processing
//! chain and runs (and re-runs) it through the incremental engine,
//! recording the shrinking "mess that's left" after every stage.

use crate::component::{Component, Slot, StageReport, StageStatus};
use crate::context::PipelineContext;
use crate::engine;
use crate::stages::{
    AddExternalMetadata, DiscoverTransformations, GenerateHierarchies, NormalizeUnits,
    PerformDiscoveredTransformations, PerformKnownTransformations, Publish, ScanArchive,
};
use crate::validate::Validate;
use metamess_core::error::Result;
use serde::{Deserialize, Serialize};

/// Report of one full pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run identifier.
    pub run_id: u64,
    /// Per-stage reports, in execution order (skipped stages included).
    pub stages: Vec<StageReport>,
}

impl RunReport {
    /// The resolution fraction trajectory across stages — the data behind
    /// the poster's two-panel process figure ("the mess that's left").
    pub fn resolution_trajectory(&self) -> Vec<(String, f64)> {
        self.stages.iter().map(|s| (s.component.clone(), s.resolution_after)).collect()
    }

    /// The report of a named stage.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.component == name)
    }

    /// Number of stages that actually executed.
    pub fn executed_count(&self) -> usize {
        self.stages.iter().filter(|s| !s.is_skipped()).count()
    }

    /// Number of stages the engine skipped.
    pub fn skipped_count(&self) -> usize {
        self.stages.iter().filter(|s| s.is_skipped()).count()
    }

    /// Renders a compact text table of the run. The stage column is sized
    /// to the longest component name, so long names never break alignment.
    /// Skipped stages show 0 micros (the skip costs only a digest check)
    /// and carry the duration of their last actual execution in the `last`
    /// column.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let name_w =
            self.stages.iter().map(|s| s.component.len()).max().unwrap_or(0).max("stage".len());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run #{:<3} {:<name_w$} {:>8} {:>9} {:>9} {:>7} {:>10} {:>9} {:>9}",
            self.run_id,
            "stage",
            "status",
            "processed",
            "changed",
            "errors",
            "resolved",
            "micros",
            "last"
        );
        for s in &self.stages {
            let status = match &s.status {
                StageStatus::Ran => "ran",
                StageStatus::Skipped { .. } => "skipped",
            };
            let last = s.last_micros.map(|m| m.to_string()).unwrap_or_else(|| "-".to_string());
            let _ = writeln!(
                out,
                "         {:<name_w$} {:>8} {:>9} {:>9} {:>7} {:>9.1}% {:>9} {:>9}",
                s.component,
                status,
                s.processed,
                s.changed,
                s.errors.len(),
                100.0 * s.resolution_after,
                s.micros,
                last
            );
        }
        let _ = writeln!(
            out,
            "         {} stage(s) ran, {} skipped (inputs unchanged)",
            self.executed_count(),
            self.skipped_count()
        );
        out
    }
}

/// A composed metadata processing chain.
pub struct Pipeline {
    components: Vec<Box<dyn Component>>,
}

impl Pipeline {
    /// Composes a pipeline from components, in execution order.
    pub fn new(components: Vec<Box<dyn Component>>) -> Pipeline {
        Pipeline { components }
    }

    /// The poster's standard chain: scan → known transforms → external
    /// metadata → discover → perform discovered → hierarchies → validate →
    /// publish.
    pub fn standard() -> Pipeline {
        Pipeline::new(vec![
            Box::new(ScanArchive),
            Box::new(PerformKnownTransformations),
            Box::new(NormalizeUnits),
            Box::new(AddExternalMetadata),
            Box::new(DiscoverTransformations::default()),
            Box::new(PerformDiscoveredTransformations),
            Box::new(GenerateHierarchies),
            Box::new(Validate::default()),
            Box::new(Publish::default()),
        ])
    }

    /// The first-run chain without discovery (the poster's left panel:
    /// known transformations only, leaving "the mess that's left").
    pub fn known_only() -> Pipeline {
        Pipeline::new(vec![
            Box::new(ScanArchive),
            Box::new(PerformKnownTransformations),
            Box::new(NormalizeUnits),
            Box::new(AddExternalMetadata),
            Box::new(GenerateHierarchies),
            Box::new(Validate::default()),
            Box::new(Publish::default()),
        ])
    }

    /// Component names, in order.
    pub fn component_names(&self) -> Vec<&'static str> {
        self.components.iter().map(|c| c.name()).collect()
    }

    /// Each component's declared dataflow: `(name, reads, writes)`.
    pub fn declarations(&self) -> Vec<(&'static str, &'static [Slot], &'static [Slot])> {
        self.components.iter().map(|c| (c.name(), c.reads(), c.writes())).collect()
    }

    /// Runs the chain through the incremental engine: stages whose declared
    /// inputs are unchanged since the context's last run are skipped (and
    /// reported as such); the rest execute in order. Stops at the first
    /// hard error.
    pub fn run(&mut self, ctx: &mut PipelineContext) -> Result<RunReport> {
        engine::run_chain(&mut self.components, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ArchiveInput;
    use metamess_archive::{generate, ArchiveSpec};
    use metamess_vocab::Vocabulary;

    fn ctx() -> PipelineContext {
        let archive = generate(&ArchiveSpec::tiny());
        PipelineContext::new(ArchiveInput::Memory(archive.files), Vocabulary::observatory_default())
    }

    #[test]
    fn standard_chain_runs_end_to_end() {
        let mut c = ctx();
        let report = Pipeline::standard().run(&mut c).unwrap();
        assert_eq!(report.run_id, 1);
        assert_eq!(report.stages.len(), 9);
        assert_eq!(report.executed_count(), 9); // first run skips nothing
        assert!(!c.catalogs.published.is_empty());
        // resolution is monotone across resolution-affecting stages
        let traj = report.resolution_trajectory();
        for w in traj.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-9,
                "resolution regressed {} -> {}: {:?}",
                w[0].0,
                w[1].0,
                traj
            );
        }
    }

    #[test]
    fn known_only_leaves_more_mess_than_standard() {
        let mut c1 = ctx();
        let r1 = Pipeline::known_only().run(&mut c1).unwrap();
        let mut c2 = ctx();
        let mut std_pipe = Pipeline::standard();
        let _first = std_pipe.run(&mut c2).unwrap();
        // accept high-confidence proposals whose pick is canonical, rerun
        c2.accepted =
            c2.proposals.iter().filter(|p| c2.vocab.synonyms.contains(&p.to)).cloned().collect();
        let r2 = std_pipe.run(&mut c2).unwrap();
        let known = r1.stages.last().unwrap().resolution_after;
        let with_discovery = r2.stages.last().unwrap().resolution_after;
        assert!(
            with_discovery > known,
            "discovery should resolve more: {with_discovery} vs {known}"
        );
    }

    #[test]
    fn rerun_is_stable_and_incremental() {
        let mut c = ctx();
        let mut p = Pipeline::standard();
        p.run(&mut c).unwrap();
        let snapshot = c.catalogs.published.clone();
        let r2 = p.run(&mut c).unwrap();
        // rescan reuses everything
        assert_eq!(r2.stage("scan-archive").unwrap().changed, 0);
        // published catalog stable when nothing was accepted in between
        assert_eq!(c.catalogs.published.len(), snapshot.len());
        assert_eq!(r2.run_id, 2);
    }

    #[test]
    fn report_render_shows_stages() {
        let mut c = ctx();
        let r = Pipeline::standard().run(&mut c).unwrap();
        let text = r.render();
        assert!(text.contains("scan-archive"));
        assert!(text.contains("publish"));
        assert!(text.contains('%'));
        assert!(text.contains("status"));
        assert!(text.contains("last"));
        assert!(text.contains("9 stage(s) ran, 0 skipped"));
    }

    #[test]
    fn render_width_adapts_to_long_stage_names() {
        let long = "a-stage-name-considerably-longer-than-thirty-six-characters";
        assert!(long.len() > 36);
        let report = RunReport {
            run_id: 7,
            stages: vec![
                StageReport::new("short"),
                StageReport::new(long),
                StageReport::skipped("skippy", "inputs unchanged"),
            ],
        };
        let text = report.render();
        let lines: Vec<&str> = text.lines().collect();
        // header + one line per stage + summary
        assert_eq!(lines.len(), 5);
        // header and stage rows align: identical lengths, columns at the
        // same offsets even with a >36-char stage name
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[0].contains(" stage "));
        assert!(lines[2].contains(long));
        assert!(lines[3].contains("skipped"));
        assert!(lines[4].contains("2 stage(s) ran, 1 skipped"));
    }

    #[test]
    fn every_stage_declares_nonempty_dataflow() {
        for pipeline in [Pipeline::standard(), Pipeline::known_only()] {
            let decls = pipeline.declarations();
            assert!(!decls.is_empty());
            let mut seen = std::collections::BTreeSet::new();
            for (name, reads, writes) in decls {
                assert!(!reads.is_empty(), "stage '{name}' declares no reads");
                assert!(!writes.is_empty(), "stage '{name}' declares no writes");
                assert!(seen.insert(name), "duplicate stage name '{name}'");
                // declarations are duplicate-free
                for (ix, s) in reads.iter().enumerate() {
                    assert!(!reads[ix + 1..].contains(s), "'{name}' repeats read {s:?}");
                }
                for (ix, s) in writes.iter().enumerate() {
                    assert!(!writes[ix + 1..].contains(s), "'{name}' repeats write {s:?}");
                }
            }
        }
    }

    #[test]
    fn custom_composition() {
        use crate::stages::{PerformKnownTransformations, ScanArchive};
        let mut p =
            Pipeline::new(vec![Box::new(ScanArchive), Box::new(PerformKnownTransformations)]);
        assert_eq!(p.component_names(), vec!["scan-archive", "perform-known-transformations"]);
        let mut c = ctx();
        let r = p.run(&mut c).unwrap();
        assert_eq!(r.stages.len(), 2);
        assert!(c.catalogs.published.is_empty()); // no publish stage
    }
}
