//! A static interval index over dataset time extents.
//!
//! Intervals are stored sorted by start with a prefix-maximum of ends;
//! stabbing/overlap queries binary-search the start array and walk only the
//! prefix that can still overlap, pruning with the max-end table. O(log n +
//! answer) in practice for the skewed, short-interval workloads catalogs
//! have.

use metamess_core::time::{TimeInterval, Timestamp};

/// Static interval index mapping intervals to payload indices.
#[derive(Debug)]
pub struct IntervalIndex {
    /// Entries sorted by (start, payload).
    starts: Vec<(TimeInterval, usize)>,
    /// `max_end[i]` = max end among `starts[..=i]`.
    max_end: Vec<Timestamp>,
}

impl IntervalIndex {
    /// Builds the index from `(interval, payload)` pairs.
    pub fn build(mut entries: Vec<(TimeInterval, usize)>) -> IntervalIndex {
        entries.sort_by(|a, b| a.0.start.cmp(&b.0.start).then(a.1.cmp(&b.1)));
        let mut max_end = Vec::with_capacity(entries.len());
        let mut cur = Timestamp(i64::MIN);
        for (iv, _) in &entries {
            if iv.end > cur {
                cur = iv.end;
            }
            max_end.push(cur);
        }
        IntervalIndex { starts: entries, max_end }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Payloads of all intervals overlapping `query`, ascending payload order.
    pub fn overlapping(&self, query: &TimeInterval) -> Vec<usize> {
        let mut out = Vec::new();
        if self.starts.is_empty() {
            return out;
        }
        // Entries with start > query.end can never overlap.
        let hi = self.starts.partition_point(|(iv, _)| iv.start <= query.end);
        // Walk backward from hi, pruning when even the best end is too early.
        let mut i = hi;
        while i > 0 {
            i -= 1;
            if self.max_end[i] < query.start {
                break; // nothing in the prefix reaches the query
            }
            let (iv, payload) = &self.starts[i];
            if iv.end >= query.start {
                out.push(*payload);
            }
        }
        out.sort_unstable();
        out
    }

    /// Payloads of intervals containing the instant `t`.
    pub fn stabbing(&self, t: Timestamp) -> Vec<usize> {
        self.overlapping(&TimeInterval::instant(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: i64, b: i64) -> TimeInterval {
        TimeInterval::new(Timestamp(a), Timestamp(b))
    }

    fn entries() -> Vec<(TimeInterval, usize)> {
        vec![
            (iv(0, 10), 0),
            (iv(5, 15), 1),
            (iv(20, 30), 2),
            (iv(25, 26), 3),
            (iv(40, 100), 4),
            (iv(50, 60), 5),
            (iv(0, 200), 6), // long interval spanning everything
        ]
    }

    fn linear(entries: &[(TimeInterval, usize)], q: &TimeInterval) -> Vec<usize> {
        let mut v: Vec<usize> =
            entries.iter().filter(|(i, _)| i.overlaps(q)).map(|(_, p)| *p).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty() {
        let ix = IntervalIndex::build(vec![]);
        assert!(ix.is_empty());
        assert!(ix.overlapping(&iv(0, 10)).is_empty());
    }

    #[test]
    fn overlap_matches_linear() {
        let e = entries();
        let ix = IntervalIndex::build(e.clone());
        assert_eq!(ix.len(), e.len());
        for q in [iv(0, 5), iv(12, 22), iv(27, 45), iv(300, 400), iv(-10, -1), iv(55, 55)] {
            assert_eq!(ix.overlapping(&q), linear(&e, &q), "query {q}");
        }
    }

    #[test]
    fn stabbing() {
        let ix = IntervalIndex::build(entries());
        assert_eq!(ix.stabbing(Timestamp(7)), vec![0, 1, 6]);
        assert_eq!(ix.stabbing(Timestamp(25)), vec![2, 3, 6]);
        assert_eq!(ix.stabbing(Timestamp(199)), vec![6]);
        assert_eq!(ix.stabbing(Timestamp(201)), Vec::<usize>::new());
    }

    #[test]
    fn closed_boundaries() {
        let ix = IntervalIndex::build(vec![(iv(10, 20), 0)]);
        assert_eq!(ix.overlapping(&iv(20, 30)), vec![0]); // touch at end
        assert_eq!(ix.overlapping(&iv(0, 10)), vec![0]); // touch at start
        assert_eq!(ix.overlapping(&iv(21, 30)), Vec::<usize>::new());
    }

    #[test]
    fn pseudo_random_against_linear() {
        // deterministic LCG workload
        let mut state = 88172645463325252u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let e: Vec<(TimeInterval, usize)> = (0..300)
            .map(|i| {
                let a = (next() % 10_000) as i64;
                let len = (next() % 500) as i64;
                (iv(a, a + len), i)
            })
            .collect();
        let ix = IntervalIndex::build(e.clone());
        for _ in 0..100 {
            let a = (next() % 11_000) as i64 - 500;
            let len = (next() % 800) as i64;
            let q = iv(a, a + len);
            assert_eq!(ix.overlapping(&q), linear(&e, &q), "query {q}");
        }
    }
}
