//! Delimited-text parser with the observatory's header conventions.
//!
//! The dialect family covers what station archives actually contain:
//!
//! * comma, tab, or semicolon delimiters (auto-detected or configured);
//! * RFC-4180 quoting with embedded delimiters, quotes, and newlines;
//! * a `#`-comment preamble whose `key: value` lines are file metadata;
//! * an optional parenthesized **units row** right under the header,
//!   e.g. `(UTC),(degC),(PSU)`;
//! * inline unit suffixes in headers, e.g. `temp (degC)`.

use crate::model::{ColumnDef, FormatKind, ParsedFile};
use metamess_core::error::{Error, Result};
use metamess_core::value::{Record, Value};

/// Parser configuration.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter; `None` auto-detects among `,`, `\t`, `;`.
    pub delimiter: Option<char>,
    /// Treat lines starting with this as metadata/comment preamble.
    pub comment: char,
    /// Recognize a parenthesized units row under the header.
    pub units_row: bool,
    /// Maximum tolerated ragged rows (rows whose field count differs from
    /// the header) before the file is rejected; ragged rows are skipped.
    pub max_ragged_rows: usize,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions { delimiter: None, comment: '#', units_row: true, max_ragged_rows: 10 }
    }
}

/// Splits one physical CSV text into logical records honoring quotes.
/// Returns rows of raw fields.
fn split_rows(text: &str, delim: char) -> Result<Vec<Vec<String>>> {
    let mut rows = Vec::new();
    let mut field = String::new();
    let mut row: Vec<String> = Vec::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if field.is_empty() {
                    in_quotes = true;
                } else {
                    return Err(Error::parse_at("csv", "quote inside unquoted field", line));
                }
            }
            '\r' => {} // tolerate CRLF
            '\n' => {
                line += 1;
                row.push(std::mem::take(&mut field));
                rows.push(std::mem::take(&mut row));
            }
            c if c == delim => {
                row.push(std::mem::take(&mut field));
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(Error::parse_at("csv", "unterminated quoted field", line));
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Auto-detects the delimiter from the first non-comment line.
fn detect_delimiter(text: &str, comment: char) -> char {
    for raw in text.lines() {
        let l = raw.trim();
        if l.is_empty() || l.starts_with(comment) {
            continue;
        }
        let counts = [
            (',', l.matches(',').count()),
            ('\t', l.matches('\t').count()),
            (';', l.matches(';').count()),
        ];
        return counts.iter().max_by_key(|(_, c)| *c).map(|(d, _)| *d).unwrap_or(',');
    }
    ','
}

/// Extracts an inline unit from a header like `temp (degC)`.
fn split_inline_unit(header: &str) -> (String, Option<String>) {
    let h = header.trim();
    if let Some(open) = h.rfind('(') {
        if let Some(close) = h[open..].find(')') {
            let unit = h[open + 1..open + close].trim();
            let name = h[..open].trim();
            if !name.is_empty() && !unit.is_empty() {
                return (name.to_string(), Some(unit.to_string()));
            }
        }
    }
    (h.to_string(), None)
}

/// True when a row looks like a parenthesized units row: every non-empty
/// field is `(...)`.
fn is_units_row(fields: &[String]) -> bool {
    let mut any = false;
    for f in fields {
        let f = f.trim();
        if f.is_empty() {
            continue;
        }
        if !(f.starts_with('(') && f.ends_with(')')) {
            return false;
        }
        any = true;
    }
    any
}

/// Parses delimited text into a [`ParsedFile`].
pub fn parse_csv(text: &str, options: &CsvOptions) -> Result<ParsedFile> {
    let mut out = ParsedFile::new(FormatKind::Csv);

    // Preamble: comment lines before the header, `key: value` harvested.
    let mut body_start = 0usize;
    for raw in text.split_inclusive('\n') {
        let trimmed = raw.trim();
        if trimmed.starts_with(options.comment) {
            let line = trimmed.trim_start_matches(options.comment).trim();
            if let Some((k, v)) = line.split_once(':') {
                out.metadata.insert(k.trim().to_ascii_lowercase(), v.trim().to_string());
            }
            body_start += raw.len();
        } else if trimmed.is_empty() {
            body_start += raw.len();
        } else {
            break;
        }
    }
    let body = &text[body_start..];
    if body.trim().is_empty() {
        return Err(Error::parse("csv", "no header row"));
    }

    let delim = options.delimiter.unwrap_or_else(|| detect_delimiter(body, options.comment));
    let mut rows = split_rows(body, delim)?;
    // Drop trailing all-empty rows.
    while rows.last().is_some_and(|r| r.iter().all(|f| f.trim().is_empty())) {
        rows.pop();
    }
    if rows.is_empty() {
        return Err(Error::parse("csv", "no header row"));
    }
    let header = rows.remove(0);
    let mut columns: Vec<ColumnDef> = Vec::with_capacity(header.len());
    for h in &header {
        let (name, unit) = split_inline_unit(h);
        if name.is_empty() {
            return Err(Error::parse("csv", "empty column name in header"));
        }
        if columns.iter().any(|c| c.name == name) {
            return Err(Error::parse("csv", format!("duplicate column '{name}'")));
        }
        columns.push(ColumnDef { name, unit, description: None });
    }

    // Optional units row.
    if options.units_row {
        if let Some(first) = rows.first() {
            if is_units_row(first) {
                let units = rows.remove(0);
                for (c, u) in columns.iter_mut().zip(units.iter()) {
                    let u = u.trim().trim_start_matches('(').trim_end_matches(')').trim();
                    if !u.is_empty() && c.unit.is_none() {
                        c.unit = Some(u.to_string());
                    }
                }
            }
        }
    }

    let mut ragged = 0usize;
    for fields in rows {
        if fields.iter().all(|f| f.trim().is_empty()) {
            continue;
        }
        if fields.len() != columns.len() {
            ragged += 1;
            if ragged > options.max_ragged_rows {
                return Err(Error::parse(
                    "csv",
                    format!("more than {} ragged rows", options.max_ragged_rows),
                ));
            }
            continue;
        }
        let mut rec = Record::new();
        for (c, f) in columns.iter().zip(fields.iter()) {
            rec.set(c.name.clone(), Value::sniff(f));
        }
        out.rows.push(rec);
    }
    out.columns = columns;
    Ok(out)
}

/// Serializes a [`ParsedFile`] back to CSV (used by the archive generator).
/// Writes the comment preamble, header (with inline units when present), and
/// rows; quotes fields containing the delimiter, quotes, or newlines.
pub fn write_csv(file: &ParsedFile, delimiter: char) -> String {
    let mut out = String::new();
    for (k, v) in &file.metadata {
        out.push_str(&format!("# {k}: {v}\n"));
    }
    let quote = |s: &str| -> String {
        if s.contains(delimiter) || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let headers: Vec<String> = file
        .columns
        .iter()
        .map(|c| match &c.unit {
            Some(u) => quote(&format!("{} ({})", c.name, u)),
            None => quote(&c.name),
        })
        .collect();
    out.push_str(&headers.join(&delimiter.to_string()));
    out.push('\n');
    for row in &file.rows {
        let fields: Vec<String> = file
            .columns
            .iter()
            .map(|c| quote(&row.get(&c.name).cloned().unwrap_or(Value::Null).render()))
            .collect();
        out.push_str(&fields.join(&delimiter.to_string()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_csv() {
        let p = parse_csv("time,temp,sal\n1,10.5,28\n2,10.6,29\n", &CsvOptions::default()).unwrap();
        assert_eq!(p.columns.len(), 3);
        assert_eq!(p.rows.len(), 2);
        assert_eq!(p.rows[0].get("temp"), Some(&Value::Float(10.5)));
        assert_eq!(p.rows[1].get("sal"), Some(&Value::Int(29)));
    }

    #[test]
    fn comment_preamble_metadata() {
        let text = "# station: saturn01\n# lat: 46.18\n# lon: -123.18\ntime,temp\n1,9.5\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(p.meta("station"), Some("saturn01"));
        assert_eq!(p.meta_f64("lat"), Some(46.18));
        assert_eq!(p.rows.len(), 1);
    }

    #[test]
    fn units_row() {
        let text = "time,temp,sal\n(UTC),(degC),(PSU)\n2010-06-01T00:00:00Z,10.5,28\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(p.column("temp").unwrap().unit.as_deref(), Some("degC"));
        assert_eq!(p.column("sal").unwrap().unit.as_deref(), Some("PSU"));
        assert_eq!(p.rows.len(), 1);
    }

    #[test]
    fn inline_header_units() {
        let text = "time (UTC),water temp (degC)\n2010-06-01,10.0\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(p.columns[1].name, "water temp");
        assert_eq!(p.columns[1].unit.as_deref(), Some("degC"));
    }

    #[test]
    fn quoted_fields() {
        let text = "name,note\n\"O'Hara, site\",\"said \"\"hi\"\"\"\nplain,\"multi\nline\"\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(p.rows[0].get("name").unwrap().as_text(), Some("O'Hara, site"));
        assert_eq!(p.rows[0].get("note").unwrap().as_text(), Some("said \"hi\""));
        assert_eq!(p.rows[1].get("note").unwrap().as_text(), Some("multi\nline"));
    }

    #[test]
    fn tab_and_semicolon_autodetect() {
        let p = parse_csv("a\tb\n1\t2\n", &CsvOptions::default()).unwrap();
        assert_eq!(p.columns.len(), 2);
        let p2 = parse_csv("a;b\n1;2\n", &CsvOptions::default()).unwrap();
        assert_eq!(p2.columns.len(), 2);
    }

    #[test]
    fn explicit_delimiter_overrides() {
        let opts = CsvOptions { delimiter: Some(';'), ..CsvOptions::default() };
        let p = parse_csv("a,b;c\n1,2;3\n", &opts).unwrap();
        // split on ';' only
        assert_eq!(p.columns.len(), 2);
        assert_eq!(p.columns[0].name, "a,b");
    }

    #[test]
    fn ragged_rows_skipped_within_budget() {
        let text = "a,b\n1,2\n3\n4,5\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        assert_eq!(p.rows.len(), 2);
        let strict = CsvOptions { max_ragged_rows: 0, ..CsvOptions::default() };
        assert!(parse_csv(text, &strict).is_err());
    }

    #[test]
    fn null_sentinels_in_cells() {
        let p = parse_csv("a,b\nNA,-9999\n", &CsvOptions::default()).unwrap();
        assert!(p.rows[0].get("a").unwrap().is_null());
        assert!(p.rows[0].get("b").unwrap().is_null());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_csv("", &CsvOptions::default()).is_err());
        assert!(parse_csv("# only: comments\n", &CsvOptions::default()).is_err());
        assert!(parse_csv("a,a\n1,2\n", &CsvOptions::default()).is_err()); // dup column
        assert!(parse_csv("a,\"b\n1,2\n", &CsvOptions::default()).is_err()); // unterminated
        assert!(parse_csv("a,b\"c\n", &CsvOptions::default()).is_err()); // stray quote
    }

    #[test]
    fn write_parse_round_trip() {
        let text = "# station: ogi01\ntime,temp (degC),note\n1,10.5,ok\n2,,\"x,y\"\n";
        let p = parse_csv(text, &CsvOptions::default()).unwrap();
        let written = write_csv(&p, ',');
        let back = parse_csv(&written, &CsvOptions::default()).unwrap();
        assert_eq!(back.columns, p.columns);
        assert_eq!(back.rows, p.rows);
        assert_eq!(back.metadata, p.metadata);
    }

    #[test]
    fn crlf_tolerated() {
        let p = parse_csv("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn trailing_blank_lines_ignored() {
        let p = parse_csv("a,b\n1,2\n\n\n", &CsvOptions::default()).unwrap();
        assert_eq!(p.rows.len(), 1);
    }
}
