//! Criterion bench: ranked-search latency vs catalog size, indexed vs
//! linear scan (supports E3's latency series and the R-tree ablation),
//! plus the parallel-scoring and result-cache variants.
//!
//! The `*-indexed` / `*-linear` series call `search_uncached` so they keep
//! measuring the scoring path itself; `cached-*` vs `cold-*` isolates the
//! generation-stamped result cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metamess_archive::ArchiveSpec;
use metamess_bench::wrangle_archive;
use metamess_search::{Query, SearchEngine};
use std::hint::black_box;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    for months in [6usize, 24] {
        let spec = ArchiveSpec { months, stations: 10, ..ArchiveSpec::default() };
        let (ctx, _) = wrangle_archive(&spec);
        let mut engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
        let n = ctx.catalogs.published.len();

        let selective =
            Query::parse("near 46.1,-123.9 within 10km during 2010-02 with nitrate limit 5")
                .unwrap();
        let broad = Query::parse(
            "near 45.5,-124.4 within 50km from 2010-04-01 to 2010-09-30 \
             with temperature between 5 and 10 limit 5",
        )
        .unwrap();

        engine.use_indexes = true;
        group.bench_with_input(BenchmarkId::new("selective-indexed", n), &n, |b, _| {
            b.iter(|| black_box(engine.search_uncached(black_box(&selective))))
        });
        group.bench_with_input(BenchmarkId::new("broad-indexed", n), &n, |b, _| {
            b.iter(|| black_box(engine.search_uncached(black_box(&broad))))
        });
        engine.use_indexes = false;
        group.bench_with_input(BenchmarkId::new("selective-linear", n), &n, |b, _| {
            b.iter(|| black_box(engine.search_uncached(black_box(&selective))))
        });
        group.bench_with_input(BenchmarkId::new("broad-linear", n), &n, |b, _| {
            b.iter(|| black_box(engine.search_uncached(black_box(&broad))))
        });

        // Parallel scoring on the full-scan (ablation) configuration: the
        // acceptance surface for the bounded top-k + worker-pool path.
        for workers in [2usize, 4] {
            engine.workers = workers;
            group.bench_with_input(
                BenchmarkId::new(format!("broad-linear-{workers}-workers"), n),
                &n,
                |b, _| b.iter(|| black_box(engine.search_uncached(black_box(&broad)))),
            );
        }
        engine.workers = 1;

        // Result cache: cold rescoring vs repeated-query hits against an
        // unchanged catalog generation.
        group.bench_with_input(BenchmarkId::new("broad-cold", n), &n, |b, _| {
            b.iter(|| black_box(engine.search_uncached(black_box(&broad))))
        });
        let _ = engine.search(&broad); // warm the cache once
        group.bench_with_input(BenchmarkId::new("broad-cached", n), &n, |b, _| {
            b.iter(|| black_box(engine.search(black_box(&broad))))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let spec = ArchiveSpec { months: 24, stations: 10, ..ArchiveSpec::default() };
    let (ctx, _) = wrangle_archive(&spec);
    c.bench_function("search/index-build-257", |b| {
        b.iter(|| {
            black_box(SearchEngine::build(black_box(&ctx.catalogs.published), ctx.vocab.clone()))
        })
    });
}

criterion_group!(benches, bench_search, bench_index_build);
criterion_main!(benches);
