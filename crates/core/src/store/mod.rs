//! Durable storage for the metadata catalog: CRC-checked WAL + snapshots.
//!
//! All file I/O goes through the [`Vfs`] trait so that crash-consistency
//! can be torture-tested with a deterministic fault-injecting
//! implementation ([`FaultVfs`]) while production uses the zero-cost
//! [`StdVfs`] passthrough. On-disk formats are specified in
//! `DESIGN.md § Durability`; [`fsck`] verifies them offline.

/// CRC-32 (ISO-HDLC) used by every on-disk frame.
pub mod crc;
mod durable;
mod frame;
pub mod fsck;
mod group_commit;
mod ledger;
mod lock;
mod metrics;
mod quarantine;
mod snapshot;
mod vfs;
mod wal;

pub use crc::{crc32, Crc32};
pub use durable::{
    CompactionPolicy, CompactionReport, DurableCatalog, RecoveryReport, StoreOptions,
};
pub use fsck::{FsckFinding, FsckReport, FsckSeverity};
pub use group_commit::{CommitTicket, GroupCommit, GroupCommitOptions};
pub use ledger::{
    read_ledger, read_ledger_with, write_ledger, write_ledger_with, RunLedger, StageRecord,
    LEDGER_MAGIC,
};
pub use lock::{lock_path, LockMode, StoreLock};
pub use quarantine::{quarantine_file, QuarantineReason, Quarantined};
pub use snapshot::{
    read_snapshot, read_snapshot_with, write_snapshot, write_snapshot_with, SNAPSHOT_MAGIC,
};
pub use vfs::{std_vfs, FaultKind, FaultPlan, FaultVfs, StdVfs, Vfs, VfsFile};
pub use wal::{RecoveryMode, ReplaySummary, TailRead, Wal, WAL_MAGIC};
