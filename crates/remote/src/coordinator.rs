//! The coordinator: scatter a query to N shardd processes, gather, and
//! merge — bit-identical to in-process sharding, with explicit policy
//! for everything that can go wrong on a network.
//!
//! # The three phases
//!
//! 1. **Probe.** Every shard is dialed in parallel with the query
//!    (unless its advertised temporal bound excludes the query — then
//!    the probe is skipped without a round trip). Probes are idempotent,
//!    so failures are retried within a budget (exponential backoff with
//!    deterministic jitter).
//! 2. **Plan.** The per-shard summaries replay the in-process
//!    coordinator's global nearest admission and full-scan decision
//!    ([`plan_scatter`]); shards that failed their probe are excluded
//!    from scoring, so a degraded answer is *exactly* what a coordinator
//!    over only the healthy shards would return.
//! 3. **Score.** Each shard with work scores it (one attempt — by the
//!    time scoring starts the shard answered its probe milliseconds ago,
//!    and the partial policy handles the rare mid-query death) and the
//!    per-shard top-`limit` lists merge under the global rank order.
//!
//! # Failure policy
//!
//! `PartialPolicy::Fail` turns any shard failure into a typed error.
//! `PartialPolicy::Degrade` drops the failed shards and marks the
//! response `partial` (surfaced as the `X-Metamess-Partial` header and a
//! JSON field by the server). A catalog-generation mismatch between
//! shards — or between phases — is never degradable: merging hits from
//! two different catalogs would be silently wrong, so it is always a
//! conflict error.
//!
//! # Circuit state
//!
//! Consecutive failures per shard drive a small circuit: `Healthy` (0),
//! `Degraded` (some), `Open` (at least `failure_threshold` — dials are
//! skipped until a cooldown elapses, then one half-open attempt may heal
//! it). The state is visible in `/healthz`, `metamess stats`, and the
//! `metamess_remote_*` metrics.

use crate::frame::{Frame, FrameKind};
use crate::metrics::remote_metrics;
use crate::transport::{TcpTransport, Transport, TransportError};
use crate::wire::{
    HelloRequest, HelloResponse, ProbeRequest, ProbeResponse, ScoreRequest, ScoreResponse,
    WireError,
};
use metamess_core::error::{Error, Result};
use metamess_search::fanout::{merge_hits, plan_scatter, probe_prunable, ProbeSummary, ScoreWork};
use metamess_search::{Query, SearchHit};
use metamess_telemetry::trace;
use parking_lot::Mutex;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to do when a shard cannot answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartialPolicy {
    /// Any shard failure fails the whole query with a typed error.
    Fail,
    /// Serve the healthy shards' merge, marked `partial: true`.
    Degrade,
}

impl PartialPolicy {
    /// Parses the CLI spelling (`fail` | `degrade`).
    pub fn parse(text: &str) -> Option<PartialPolicy> {
        match text.trim().to_ascii_lowercase().as_str() {
            "fail" => Some(PartialPolicy::Fail),
            "degrade" => Some(PartialPolicy::Degrade),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            PartialPolicy::Fail => "fail",
            PartialPolicy::Degrade => "degrade",
        }
    }
}

/// Knobs for deadlines, retries, and circuits. The defaults suit a
/// same-rack fleet; everything is overridable.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// TCP connect deadline per dial.
    pub connect_timeout: Duration,
    /// Read/write deadline per exchange.
    pub read_timeout: Duration,
    /// Retries after the first failed attempt (idempotent phases only:
    /// hello and probe; scoring gets exactly one attempt).
    pub retries: u32,
    /// First backoff step; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
    /// What a shard failure does to the query.
    pub partial_policy: PartialPolicy,
    /// Consecutive failures that trip a shard's circuit open.
    pub failure_threshold: u32,
    /// How long an open circuit blocks dials before a half-open retry.
    pub cooldown: Duration,
}

impl Default for RemoteOptions {
    fn default() -> RemoteOptions {
        RemoteOptions {
            connect_timeout: Duration::from_secs(1),
            read_timeout: Duration::from_secs(5),
            retries: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0x6d65_7461_6d65_7373, // "metamess"
            partial_policy: PartialPolicy::Fail,
            failure_threshold: 3,
            cooldown: Duration::from_secs(2),
        }
    }
}

/// A shard's circuit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
#[serde(rename_all = "lowercase")]
pub enum CircuitState {
    /// Last exchange succeeded.
    Healthy,
    /// Recent failures, below the open threshold.
    Degraded,
    /// Tripped: dials are skipped until the cooldown elapses.
    Open,
}

impl CircuitState {
    /// The spelling used in `/healthz` and stats.
    pub fn as_str(&self) -> &'static str {
        match self {
            CircuitState::Healthy => "healthy",
            CircuitState::Degraded => "degraded",
            CircuitState::Open => "open",
        }
    }
}

/// One shard's health, as reported in `/healthz` and `metamess stats`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardHealth {
    /// Shard id in the layout.
    pub shard_id: u32,
    /// Dial address.
    pub addr: String,
    /// Circuit position.
    pub state: CircuitState,
    /// Round-trip time of the last successful exchange, when any.
    pub last_rtt_us: Option<u64>,
    /// Catalog generation the shard reported at hello.
    pub generation: u64,
    /// Consecutive failures behind the circuit state.
    pub consecutive_failures: u32,
}

/// Per-shard mutable circuit bookkeeping.
#[derive(Debug, Default)]
struct CircuitInner {
    consecutive_failures: u32,
    last_rtt_us: Option<u64>,
    opened_at: Option<Instant>,
}

/// Why a shard did not produce a usable answer.
#[derive(Debug, Clone)]
enum ShardFailure {
    Transport(TransportError),
    /// The shardd answered an `Error` frame.
    Remote(String),
    /// The shardd's catalog generation no longer matches the fleet's.
    Generation(u64),
    /// The circuit was open; the dial was never attempted.
    CircuitOpen,
}

/// The remote counterpart of the in-process `ShardedEngine`: same
/// probe/score/merge surface, over [`Transport`] instead of memory.
pub struct RemoteShardSet {
    transport: Arc<dyn Transport>,
    opts: RemoteOptions,
    /// Hello responses, indexed by **shard id** (not dial order).
    hello: Vec<HelloResponse>,
    /// Transport slot per shard id (the fleet may be listed in any order).
    slots: Vec<usize>,
    /// Dial addresses per shard id, for health reporting.
    addrs: Vec<String>,
    circuits: Vec<Mutex<CircuitInner>>,
    generation: u64,
    partitioner: String,
}

impl RemoteShardSet {
    /// Dials every address, validates the fleet (one shardd per shard of
    /// one layout at one catalog generation), and returns the connected
    /// set. The addresses may list shards in any order.
    pub fn connect(addrs: &[String], opts: RemoteOptions) -> Result<RemoteShardSet> {
        let transport =
            Arc::new(TcpTransport::new(addrs.to_vec(), opts.connect_timeout, opts.read_timeout));
        RemoteShardSet::with_transport_labeled(transport, addrs.to_vec(), opts)
    }

    /// Builds a set over an arbitrary transport (the fault suite injects
    /// failures here). Shard `k` of the transport is labeled `shard[k]`.
    pub fn with_transport(
        transport: Arc<dyn Transport>,
        opts: RemoteOptions,
    ) -> Result<RemoteShardSet> {
        let labels = (0..transport.shard_count()).map(|k| format!("shard[{k}]")).collect();
        RemoteShardSet::with_transport_labeled(transport, labels, opts)
    }

    fn with_transport_labeled(
        transport: Arc<dyn Transport>,
        labels: Vec<String>,
        opts: RemoteOptions,
    ) -> Result<RemoteShardSet> {
        let n = transport.shard_count();
        if n == 0 {
            return Err(Error::invalid("a remote shard set needs at least one address"));
        }
        // Hello every slot (idempotent → retried within the budget).
        let mut by_slot: Vec<HelloResponse> = Vec::with_capacity(n);
        for slot in 0..n {
            let frame = Frame::new(FrameKind::Hello, 0, &HelloRequest::default());
            let hello: HelloResponse =
                match exchange_checked(transport.as_ref(), slot, &frame, FrameKind::HelloOk) {
                    Ok(h) => h,
                    Err(ShardFailure::Transport(e)) => {
                        return Err(transport_error(&labels[slot], "hello", &e));
                    }
                    Err(ShardFailure::Remote(m)) => {
                        return Err(Error::invalid(format!(
                            "{} rejected hello: {m}",
                            labels[slot]
                        )));
                    }
                    Err(_) => unreachable!("hello checks neither generation nor circuits"),
                };
            by_slot.push(hello);
        }
        let first = &by_slot[0];
        if first.shard_count as usize != n {
            return Err(Error::invalid(format!(
                "{} hosts shard {}/{} but {} addresses were given",
                labels[0], first.shard_id, first.shard_count, n
            )));
        }
        let mut hello: Vec<Option<HelloResponse>> = vec![None; n];
        let mut slots = vec![0usize; n];
        let mut addrs = vec![String::new(); n];
        for (slot, h) in by_slot.into_iter().enumerate() {
            if h.shard_count != first.shard_count {
                return Err(Error::invalid(format!(
                    "{} disagrees on the layout: {} shards vs {}",
                    labels[slot], h.shard_count, first.shard_count
                )));
            }
            if h.generation != first.generation {
                return Err(Error::conflict(format!(
                    "{} is at catalog generation {} but the fleet is at {}",
                    labels[slot], h.generation, first.generation
                )));
            }
            if h.partitioner != first.partitioner {
                return Err(Error::invalid(format!(
                    "{} partitions by {} but the fleet partitions by {}",
                    labels[slot], h.partitioner, first.partitioner
                )));
            }
            let id = h.shard_id as usize;
            if id >= n || hello[id].is_some() {
                return Err(Error::invalid(format!(
                    "{} hosts shard {} — duplicate or out of range for {} shards",
                    labels[slot], h.shard_id, n
                )));
            }
            slots[id] = slot;
            addrs[id] = labels[slot].clone();
            hello[id] = Some(h);
        }
        let hello: Vec<HelloResponse> =
            hello.into_iter().map(|h| h.expect("all slots placed")).collect();
        let generation = first.generation;
        let partitioner = first.partitioner.clone();
        let circuits = (0..n).map(|_| Mutex::new(CircuitInner::default())).collect();
        Ok(RemoteShardSet {
            transport,
            opts,
            hello,
            slots,
            addrs,
            circuits,
            generation,
            partitioner,
        })
    }

    /// Shards in the fleet.
    pub fn shard_count(&self) -> usize {
        self.hello.len()
    }

    /// The fleet's catalog generation (validated identical at connect).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The fleet's partitioner spelling.
    pub fn partitioner(&self) -> &str {
        &self.partitioner
    }

    /// The configured partial policy.
    pub fn partial_policy(&self) -> PartialPolicy {
        self.opts.partial_policy
    }

    /// Total datasets across the fleet.
    pub fn datasets(&self) -> u64 {
        self.hello.iter().map(|h| h.datasets).sum()
    }

    /// Per-shard health for `/healthz` and stats.
    pub fn health(&self) -> Vec<ShardHealth> {
        (0..self.hello.len())
            .map(|k| {
                let c = self.circuits[k].lock();
                ShardHealth {
                    shard_id: k as u32,
                    addr: self.addrs[k].clone(),
                    state: state_of(c.consecutive_failures, self.opts.failure_threshold),
                    last_rtt_us: c.last_rtt_us,
                    generation: self.hello[k].generation,
                    consecutive_failures: c.consecutive_failures,
                }
            })
            .collect()
    }

    /// Runs one fan-out search. See the module docs for phases and
    /// failure semantics.
    pub fn search(&self, query: &Query) -> Result<RemoteSearch> {
        let on = metamess_telemetry::enabled();
        if on {
            remote_metrics().queries.inc();
        }
        let trace_id = trace::current_trace_id().unwrap_or(0);
        let n = self.hello.len();
        let forced = query.is_empty();

        // Phase 1: probe scatter (skipped entirely for the forced full
        // scan — the in-process engine does not probe either).
        let mut summaries: Vec<ProbeSummary> = vec![ProbeSummary::default(); n];
        let mut failures: Vec<Option<ShardFailure>> = vec![None; n];
        let mut rtts: Vec<Option<u64>> = vec![None; n];
        if !forced {
            let outcomes = self.scatter(|k| {
                if probe_prunable(query, self.hello[k].bounds.time_interval().as_ref()) {
                    if on {
                        remote_metrics().probe_prunes.inc();
                    }
                    return (Ok(ProbeSummary { bound_skips: 1, ..ProbeSummary::default() }), None);
                }
                let request =
                    Frame::new(FrameKind::Probe, trace_id, &ProbeRequest { query: query.clone() });
                let started = Instant::now();
                let out = self.call_with_retries(k, &request, FrameKind::ProbeOk, true).map(
                    |r: ProbeResponse| {
                        if r.generation == self.generation {
                            Ok(r.summary)
                        } else {
                            Err(ShardFailure::Generation(r.generation))
                        }
                    },
                );
                let rtt = started.elapsed().as_micros() as u64;
                match out {
                    Ok(Ok(summary)) => (Ok(summary), Some(rtt)),
                    Ok(Err(f)) => (Err(f), Some(rtt)),
                    Err(f) => (Err(f), None),
                }
            });
            for (k, (outcome, rtt)) in outcomes.into_iter().enumerate() {
                rtts[k] = rtt;
                match outcome {
                    Ok(summary) => summaries[k] = summary,
                    Err(f) => failures[k] = Some(f),
                }
            }
            self.settle(&failures, &rtts, "probe", trace_id, on)?;
        }

        // Phase 2: replay the global admission; failed shards are
        // excluded from scoring so degrade returns exactly the
        // healthy-shard merge.
        let (_full_scan, mut works) = plan_scatter(query, &summaries);
        for (k, f) in failures.iter().enumerate() {
            if f.is_some() {
                works[k] = ScoreWork::Skip;
            }
        }

        // Phase 3: score scatter (single attempt per shard).
        let mut per_shard: Vec<Vec<SearchHit>> = vec![Vec::new(); n];
        let mut score_failures: Vec<Option<ShardFailure>> = vec![None; n];
        let mut score_rtts: Vec<Option<u64>> = vec![None; n];
        {
            let works = &works;
            let outcomes = self.scatter(|k| {
                if matches!(works[k], ScoreWork::Skip) {
                    return (Ok(Vec::new()), None);
                }
                let request = Frame::new(
                    FrameKind::Score,
                    trace_id,
                    &ScoreRequest { query: query.clone(), work: works[k].clone() },
                );
                let started = Instant::now();
                let out = self.call_with_retries(k, &request, FrameKind::ScoreOk, false).map(
                    |r: ScoreResponse| {
                        if r.generation == self.generation {
                            Ok(r.hits)
                        } else {
                            Err(ShardFailure::Generation(r.generation))
                        }
                    },
                );
                let rtt = started.elapsed().as_micros() as u64;
                match out {
                    Ok(Ok(hits)) => (Ok(hits), Some(rtt)),
                    Ok(Err(f)) => (Err(f), Some(rtt)),
                    Err(f) => (Err(f), None),
                }
            });
            for (k, (outcome, rtt)) in outcomes.into_iter().enumerate() {
                score_rtts[k] = rtt;
                match outcome {
                    Ok(hits) => per_shard[k] = hits,
                    Err(f) => score_failures[k] = Some(f),
                }
            }
        }
        self.settle(&score_failures, &score_rtts, "score", trace_id, on)?;

        let hits = merge_hits(per_shard, query.limit);
        let failed: Vec<u32> = (0..n)
            .filter(|&k| failures[k].is_some() || score_failures[k].is_some())
            .map(|k| k as u32)
            .collect();
        let partial = !failed.is_empty();
        if partial && on {
            remote_metrics().partials.inc();
        }
        Ok(RemoteSearch { hits, partial, failed, generation: self.generation })
    }

    /// Fans `call` out to every shard on scoped threads and gathers the
    /// outcomes in shard order.
    fn scatter<T: Send>(&self, call: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let n = self.hello.len();
        if n == 1 {
            return vec![call(0)];
        }
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|k| {
                    scope.spawn({
                        let call = &call;
                        move |_| call(k)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scatter call never panics")).collect()
        })
        .expect("scatter threads never panic")
    }

    /// Applies one phase's failure outcomes: record spans and rtt
    /// exemplars, update circuits, and — under the fail policy, or on
    /// any generation conflict — turn the first failure into a typed
    /// error.
    fn settle(
        &self,
        failures: &[Option<ShardFailure>],
        rtts: &[Option<u64>],
        phase: &str,
        trace_id: u128,
        on: bool,
    ) -> Result<()> {
        for (k, rtt) in rtts.iter().enumerate() {
            let Some(rtt) = *rtt else { continue };
            if on {
                remote_metrics().rtt_micros.record_with_exemplar(rtt, trace_id);
                let name = if phase == "probe" { "remote.probe" } else { "remote.score" };
                trace::record_span(name, rtt, Some(k as u32));
            }
            if failures[k].is_none() {
                self.record_success(k, rtt);
            }
        }
        for (k, failure) in failures.iter().enumerate() {
            let Some(failure) = failure else { continue };
            if !matches!(failure, ShardFailure::CircuitOpen) {
                self.record_failure(k);
            }
            if on {
                match failure {
                    ShardFailure::Transport(TransportError::Timeout) => {
                        remote_metrics().timeouts.inc()
                    }
                    ShardFailure::Transport(_) => remote_metrics().resets.inc(),
                    _ => {}
                }
            }
            // Generation conflicts are never degradable.
            if let ShardFailure::Generation(got) = failure {
                return Err(Error::conflict(format!(
                    "remote shard {k} moved to catalog generation {got} mid-query (fleet is at {})",
                    self.generation
                )));
            }
            if self.opts.partial_policy == PartialPolicy::Fail {
                return Err(self.hard_error(k, phase, failure));
            }
        }
        Ok(())
    }

    fn hard_error(&self, shard: usize, phase: &str, failure: &ShardFailure) -> Error {
        let ctx = format!("remote shard {shard} ({}) {phase}", self.addrs[shard]);
        match failure {
            ShardFailure::Transport(e) => transport_error(&ctx, "", e),
            ShardFailure::Remote(m) => Error::invalid(format!("{ctx} failed remotely: {m}")),
            ShardFailure::Generation(got) => Error::conflict(format!(
                "{ctx} is at catalog generation {got}, fleet at {}",
                self.generation
            )),
            ShardFailure::CircuitOpen => Error::io(
                ctx,
                std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "circuit open"),
            ),
        }
    }

    /// One request to one shard with the retry budget: `1 + retries`
    /// attempts when `idempotent`, exactly one otherwise. An open
    /// circuit short-circuits before any dial until its cooldown
    /// elapses (then the attempt doubles as the half-open trial).
    fn call_with_retries<T: DeserializeOwned>(
        &self,
        shard: usize,
        request: &Frame,
        expect: FrameKind,
        idempotent: bool,
    ) -> std::result::Result<T, ShardFailure> {
        {
            let c = self.circuits[shard].lock();
            if c.consecutive_failures >= self.opts.failure_threshold {
                let cooled = c.opened_at.map(|t| t.elapsed() >= self.opts.cooldown).unwrap_or(true);
                if !cooled {
                    return Err(ShardFailure::CircuitOpen);
                }
            }
        }
        let on = metamess_telemetry::enabled();
        let attempts = if idempotent { 1 + self.opts.retries } else { 1 };
        let mut last = ShardFailure::Transport(TransportError::Reset);
        for attempt in 0..attempts {
            if attempt > 0 {
                if on {
                    remote_metrics().retries.inc();
                }
                std::thread::sleep(self.backoff(shard, attempt));
            }
            if on {
                remote_metrics().dials.inc();
            }
            match exchange_checked(self.transport.as_ref(), self.slots[shard], request, expect) {
                Ok(v) => return Ok(v),
                // Only transient transport failures are worth re-dialing;
                // a remote-side error is deterministic.
                Err(f @ ShardFailure::Transport(_)) => last = f,
                Err(f) => return Err(f),
            }
        }
        Err(last)
    }

    /// Exponential backoff with deterministic full-ish jitter: half the
    /// step is fixed, half is mixed from `(seed, shard, attempt)` — no
    /// global RNG, reproducible under test.
    fn backoff(&self, shard: usize, attempt: u32) -> Duration {
        let step = self
            .opts
            .backoff_base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.opts.backoff_cap);
        let half = step.as_micros() as u64 / 2;
        let mixed =
            splitmix64(self.opts.jitter_seed ^ (shard as u64).rotate_left(17) ^ u64::from(attempt));
        Duration::from_micros(half + if half == 0 { 0 } else { mixed % (half + 1) })
    }

    fn record_success(&self, shard: usize, rtt_us: u64) {
        let mut c = self.circuits[shard].lock();
        c.consecutive_failures = 0;
        c.opened_at = None;
        c.last_rtt_us = Some(rtt_us);
        drop(c);
        self.refresh_open_gauge();
    }

    fn record_failure(&self, shard: usize) {
        let mut c = self.circuits[shard].lock();
        c.consecutive_failures = c.consecutive_failures.saturating_add(1);
        if c.consecutive_failures >= self.opts.failure_threshold {
            // (Re-)arm the cooldown from the latest failure, so a dead
            // shard is probed at most once per cooldown window.
            c.opened_at = Some(Instant::now());
        }
        drop(c);
        self.refresh_open_gauge();
    }

    fn refresh_open_gauge(&self) {
        if !metamess_telemetry::enabled() {
            return;
        }
        let open = self
            .circuits
            .iter()
            .filter(|c| c.lock().consecutive_failures >= self.opts.failure_threshold)
            .count();
        remote_metrics().open_circuits.set(open as i64);
    }
}

/// What a fan-out search returned.
#[derive(Debug, Clone)]
pub struct RemoteSearch {
    /// The merged top-`limit` hits, best first.
    pub hits: Vec<SearchHit>,
    /// True when any shard was dropped under the degrade policy.
    pub partial: bool,
    /// Shard ids that failed to contribute.
    pub failed: Vec<u32>,
    /// The fleet's catalog generation.
    pub generation: u64,
}

fn state_of(consecutive_failures: u32, threshold: u32) -> CircuitState {
    if consecutive_failures == 0 {
        CircuitState::Healthy
    } else if consecutive_failures < threshold {
        CircuitState::Degraded
    } else {
        CircuitState::Open
    }
}

/// One exchange, expecting `expect` (or an `Error` frame): transport and
/// protocol failures map to [`ShardFailure`].
fn exchange_checked<T: DeserializeOwned>(
    transport: &dyn Transport,
    slot: usize,
    request: &Frame,
    expect: FrameKind,
) -> std::result::Result<T, ShardFailure> {
    let response = transport.exchange(slot, request).map_err(ShardFailure::Transport)?;
    if response.kind == FrameKind::Error {
        let e: WireError = response
            .parse_payload()
            .unwrap_or(WireError { message: "unparseable error frame".to_string() });
        return Err(ShardFailure::Remote(e.message));
    }
    if response.kind != expect {
        return Err(ShardFailure::Transport(TransportError::Protocol(format!(
            "expected {expect:?}, got {:?}",
            response.kind
        ))));
    }
    response
        .parse_payload()
        .map_err(|e| ShardFailure::Transport(TransportError::Protocol(e.to_string())))
}

fn transport_error(ctx: &str, phase: &str, e: &TransportError) -> Error {
    let ctx = if phase.is_empty() { ctx.to_string() } else { format!("{ctx} {phase}") };
    match e {
        TransportError::Timeout => {
            Error::io(ctx, std::io::Error::new(std::io::ErrorKind::TimedOut, "deadline exceeded"))
        }
        TransportError::Reset => Error::io(
            ctx,
            std::io::Error::new(std::io::ErrorKind::ConnectionReset, "connection reset"),
        ),
        TransportError::Protocol(m) => Error::parse("remote shard response", format!("{ctx}: {m}")),
    }
}

/// SplitMix64 — the workspace's standard cheap mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_policy_parses_cli_spellings() {
        assert_eq!(PartialPolicy::parse("fail"), Some(PartialPolicy::Fail));
        assert_eq!(PartialPolicy::parse(" DEGRADE "), Some(PartialPolicy::Degrade));
        assert_eq!(PartialPolicy::parse("maybe"), None);
        for p in [PartialPolicy::Fail, PartialPolicy::Degrade] {
            assert_eq!(PartialPolicy::parse(p.as_str()), Some(p));
        }
    }

    #[test]
    fn circuit_state_thresholds() {
        assert_eq!(state_of(0, 3), CircuitState::Healthy);
        assert_eq!(state_of(1, 3), CircuitState::Degraded);
        assert_eq!(state_of(2, 3), CircuitState::Degraded);
        assert_eq!(state_of(3, 3), CircuitState::Open);
        assert_eq!(state_of(200, 3), CircuitState::Open);
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let opts = RemoteOptions::default();
        let set_opts = |o: &RemoteOptions| o.clone();
        let _ = set_opts(&opts);
        // exercise the pure pieces without a transport
        for attempt in 1..6u32 {
            let step = opts
                .backoff_base
                .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
                .min(opts.backoff_cap);
            assert!(step <= opts.backoff_cap);
        }
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
