#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint, format.
#
# Usage: scripts/verify.sh
# Run from anywhere; it cd's to the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
