//! **E3 — Figure: "Data Near Here" search interface.**
//!
//! Executes the poster's example information need — observations near
//! (45.5, −124.4) in mid-2010 with temperature between 5–10 °C — renders the
//! ranked result list the interface shows, and measures search latency vs
//! catalog size with the R-tree/interval indexes on and off (the ablation
//! the DESIGN calls out).
//!
//! ```text
//! cargo run --release -p metamess-bench --bin exp3_data_near_here [-- --json [path]]
//! ```
//!
//! `--json` additionally writes a schema-stable `BENCH_search.json` with
//! per-configuration latency percentiles (p50/p95/p99), cache hit rates,
//! and the telemetry per-phase breakdown.

use metamess_archive::ArchiveSpec;
use metamess_bench::{engine_from_ctx, json_flag, wrangle_archive, BenchReport};
use metamess_search::{render_results, Query, SearchEngine};
use std::time::{Duration, Instant};

const POSTER_QUERY: &str = "near 45.5,-124.4 within 50km from 2010-04-01 to 2010-09-30 \
                            with temperature between 5 and 10 limit 5";

/// Times `runs` uncached searches individually, returning per-run µs.
fn sample_uncached(engine: &SearchEngine, q: &Query, runs: usize) -> Vec<u64> {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.search_uncached(std::hint::black_box(q)));
            t.elapsed().as_micros() as u64
        })
        .collect()
}

/// Times `runs` cache-eligible searches individually, returning per-run µs.
fn sample_cached(engine: &SearchEngine, q: &Query, runs: usize) -> Vec<u64> {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(engine.search(std::hint::black_box(q)));
            t.elapsed().as_micros() as u64
        })
        .collect()
}

fn mean(samples: &[u64]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    Duration::from_nanos(1000 * samples.iter().sum::<u64>() / samples.len() as u64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = json_flag(&args, "BENCH_search.json");
    let mut report = BenchReport::new("search");

    println!("E3: \"Data Near Here\" ranked search\n");

    // The poster's query over the standard archive.
    let (ctx, _) = wrangle_archive(&ArchiveSpec::default());
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let q = Query::parse(POSTER_QUERY).unwrap();
    println!("query> {POSTER_QUERY}\n");
    let poster_hits = engine.search(&q);
    print!("{}", render_results(&poster_hits));
    report.set("poster.hits", poster_hits.len() as u64);
    report.set_f64("poster.top_score", poster_hits.first().map(|h| h.score).unwrap_or(0.0));

    // Latency vs catalog size, indexed vs linear scan. A *selective* query
    // (tight radius, one month, cruise-only variable) is where candidate
    // pruning pays; broad queries degenerate to a full scan by design.
    const SELECTIVE: &str = "near 46.1,-123.9 within 10km during 2010-02 with nitrate limit 5";
    println!("\nsearch latency vs catalog size (selective query, mean of 200 runs):");
    println!(
        "{:>9} {:>10} {:>14} {:>14} {:>9}",
        "datasets", "variables", "indexed", "linear scan", "speedup"
    );
    for months in [6usize, 12, 24, 48, 96] {
        let spec = ArchiveSpec { months, stations: 10, ..ArchiveSpec::default() };
        let (ctx, _) = wrangle_archive(&spec);
        let mut engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
        let q = Query::parse(SELECTIVE).unwrap();
        engine.use_indexes = true;
        let indexed = sample_uncached(&engine, &q, 200);
        engine.use_indexes = false;
        let linear = sample_uncached(&engine, &q, 200);
        let speedup = mean(&linear).as_secs_f64() / mean(&indexed).as_secs_f64();
        println!(
            "{:>9} {:>10} {:>14.2?} {:>14.2?} {:>8.2}x",
            ctx.catalogs.published.len(),
            ctx.catalogs.published.variable_count(),
            mean(&indexed),
            mean(&linear),
            speedup
        );
        let prefix = format!("latency.m{months:03}");
        report.set(&format!("{prefix}.datasets"), ctx.catalogs.published.len() as u64);
        report.set(&format!("{prefix}.variables"), ctx.catalogs.published.variable_count() as u64);
        report.record_samples(&format!("{prefix}.indexed"), &indexed);
        report.record_samples(&format!("{prefix}.linear"), &linear);
        report.set_f64(&format!("{prefix}.speedup"), speedup);
    }

    // Parallel scoring on the full-scan configuration: worker-pool scaling
    // over the largest catalog of the series (results are bit-identical to
    // sequential; only latency changes).
    println!("\nparallel scoring, full scan (poster query, mean of 200 runs):");
    let spec = ArchiveSpec { months: 96, stations: 10, ..ArchiveSpec::default() };
    let (mut ctx_par, _) = wrangle_archive(&spec);
    let q = Query::parse(POSTER_QUERY).unwrap();
    let mut sequential_mean = None;
    for workers in [1usize, 2, 4, 8] {
        ctx_par.search_parallelism = workers;
        let mut engine = engine_from_ctx(&ctx_par);
        engine.use_indexes = false;
        let samples = sample_uncached(&engine, &q, 200);
        let latency = mean(&samples);
        let base = *sequential_mean.get_or_insert(latency);
        println!(
            "  {workers} worker(s): {:>10.2?}  ({:.2}x vs sequential)",
            latency,
            base.as_secs_f64() / latency.as_secs_f64()
        );
        let prefix = format!("scaling.workers{workers}");
        report.record_samples(&prefix, &samples);
        report.set_f64(&format!("{prefix}.speedup"), base.as_secs_f64() / latency.as_secs_f64());
    }

    // Result cache: repeated queries against an unchanged published catalog
    // are served without rescoring.
    println!("\nresult cache (poster query, mean of 200 runs):");
    let engine = engine_from_ctx(&ctx_par);
    let cold = sample_uncached(&engine, &q, 200);
    let cached = sample_cached(&engine, &q, 200);
    let stats = engine.cache_stats();
    println!("  cold:   {:>10.2?}", mean(&cold));
    println!(
        "  cached: {:>10.2?}  ({:.0}x; {} hits / {} misses)",
        mean(&cached),
        mean(&cold).as_secs_f64() / mean(&cached).as_secs_f64(),
        stats.hits,
        stats.misses
    );
    report.record_samples("cache.cold", &cold);
    report.record_samples("cache.cached", &cached);
    report.set("cache.hits", stats.hits);
    report.set("cache.misses", stats.misses);
    report.set_f64("cache.hit_rate", stats.hit_rate());
    report.set_f64("cache.speedup", mean(&cold).as_secs_f64() / mean(&cached).as_secs_f64());

    // Ablation: synonym expansion on/off for a synonym-heavy query.
    println!("\nablation: vocabulary expansion (query 'with wtemp' — a curated alternate):");
    let (ctx, truth) = wrangle_archive(&ArchiveSpec::default());
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let engine_bare = SearchEngine::build(
        &ctx.catalogs.published,
        metamess_vocab::Vocabulary::new(), // empty vocabulary: no expansion
    );
    let q = Query::parse("with wtemp limit 10").unwrap();
    let with_vocab = engine.search(&q);
    let without = engine_bare.search(&q);
    let relevant: Vec<&str> =
        truth.relevant(None, None, Some("water_temperature")).map(|d| d.path.as_str()).collect();
    let hit_rate = |hits: &[metamess_search::SearchHit]| {
        hits.iter()
            .take(10)
            .filter(|h| relevant.contains(&h.path.as_str()) && h.score > 0.5)
            .count()
    };
    println!(
        "  with vocabulary:    {}/10 strong relevant hits (top score {:.2})",
        hit_rate(&with_vocab),
        with_vocab.first().map(|h| h.score).unwrap_or(0.0)
    );
    println!(
        "  without vocabulary: {}/10 strong relevant hits (top score {:.2})",
        hit_rate(&without),
        without.first().map(|h| h.score).unwrap_or(0.0)
    );
    report.set("ablation.with_vocab.strong_hits", hit_rate(&with_vocab) as u64);
    report.set("ablation.no_vocab.strong_hits", hit_rate(&without) as u64);

    // Per-phase breakdown from the telemetry histograms accumulated over
    // every search above (log-bucketed, ≤12.5% relative error).
    let snap = metamess_telemetry::global().snapshot();
    for (key, metric) in [
        ("phase.plan", "metamess_search_plan_micros"),
        ("phase.probe", "metamess_search_probe_micros"),
        ("phase.score", "metamess_search_score_micros"),
        ("phase.merge", "metamess_search_merge_micros"),
        ("query", "metamess_search_query_micros"),
    ] {
        if let Some(h) = snap.histograms.get(metric) {
            report.record_histogram(key, h);
        }
    }

    if let Some(path) = json_path {
        report.write(&path).expect("write bench report");
        println!("\nwrote {} metrics to {}", report.len(), path.display());
    }
}
