//! # metamess-discover
//!
//! Transformation discovery: the native reimplementation of the clustering
//! workflow the poster runs through Google Refine. Values harvested from an
//! archive are clustered by key collision (fingerprint, n-gram fingerprint,
//! phonetic) or nearest-neighbour edit distance, and each cluster becomes a
//! proposed `core/mass-edit` rule with a confidence score for the curator —
//! the machinery for "the mess that's left" after known translations run.

mod cluster;
mod distance;
mod keys;
mod phonetic;
mod rules;
mod unionfind;

pub use cluster::{key_collision_clusters, knn_clusters, Cluster, KnnConfig, ValueCount};
pub use distance::{
    jaro, jaro_winkler, levenshtein, levenshtein_bounded, normalized_distance, osa_distance,
};
pub use keys::{fingerprint_key, ngram_fingerprint, KeyMethod};
pub use phonetic::{metaphone_lite, soundex};
pub use rules::{
    accepted_operations, cluster_to_rule, clusters_to_rules, confidence, RuleProposal,
};
pub use unionfind::UnionFind;
