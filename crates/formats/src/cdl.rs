//! CDL-lite: a textual NetCDF-style format.
//!
//! Moored-sensor archives commonly publish NetCDF; its text rendering (CDL)
//! is what `ncdump` prints. This module parses and writes the subset the
//! synthetic archive uses:
//!
//! ```text
//! netcdf saturn01_201006 {
//! dimensions:
//!     time = 240 ;
//! variables:
//!     double water_temp(time) ;
//!         water_temp:units = "degC" ;
//!         water_temp:long_name = "water temperature" ;
//! // global attributes:
//!     :station = "saturn01" ;
//!     :latitude = 46.18 ;
//! data:
//!  water_temp = 10.1, 10.2, _ ;
//! }
//! ```
//!
//! `_` is the CDL fill/missing marker.

use crate::model::{ColumnDef, FormatKind, ParsedFile};
use metamess_core::error::{Error, Result};
use metamess_core::value::{Record, Value};

#[derive(Debug, Clone, Copy, PartialEq)]
enum Section {
    Preamble,
    Dimensions,
    Variables,
    Data,
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].replace("\\\"", "\"")
    } else {
        s.to_string()
    }
}

/// Parses CDL-lite text.
pub fn parse_cdl(text: &str) -> Result<ParsedFile> {
    let mut out = ParsedFile::new(FormatKind::Cdl);
    let mut section = Section::Preamble;
    let mut name_seen = false;
    let mut data: Vec<(String, Vec<Value>)> = Vec::new();
    // Data statements can span lines until ';'. Accumulate.
    let mut pending = String::new();

    for (ln0, raw) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with("//") {
            continue; // comments, incl. "// global attributes:"
        }
        if !name_seen {
            let rest = line
                .strip_prefix("netcdf")
                .ok_or_else(|| Error::parse_at("cdl", "expected 'netcdf <name> {'", ln))?;
            let name = rest.trim().trim_end_matches('{').trim();
            if name.is_empty() {
                return Err(Error::parse_at("cdl", "missing dataset name", ln));
            }
            out.metadata.insert("dataset_name".into(), name.to_string());
            name_seen = true;
            continue;
        }
        match line {
            "dimensions:" => {
                section = Section::Dimensions;
                continue;
            }
            "variables:" => {
                section = Section::Variables;
                continue;
            }
            "data:" => {
                section = Section::Data;
                continue;
            }
            "}" => break,
            _ => {}
        }
        match section {
            Section::Preamble => {
                return Err(Error::parse_at("cdl", format!("unexpected line '{line}'"), ln))
            }
            Section::Dimensions => {
                // `time = 240 ;` — recorded as metadata for validation.
                let stmt = line.trim_end_matches(';').trim();
                if let Some((k, v)) = stmt.split_once('=') {
                    out.metadata
                        .insert(format!("dim_{}", k.trim().to_ascii_lowercase()), v.trim().into());
                }
            }
            Section::Variables => {
                let stmt = line.trim_end_matches(';').trim();
                if let Some((lhs, rhs)) = stmt.split_once('=') {
                    // attribute: `var:attr = value` or global `:attr = value`
                    let lhs = lhs.trim();
                    let rhs = unquote(rhs.trim());
                    let (var, attr) = lhs
                        .split_once(':')
                        .ok_or_else(|| Error::parse_at("cdl", "attribute without ':'", ln))?;
                    let var = var.trim();
                    let attr = attr.trim().to_ascii_lowercase();
                    if var.is_empty() {
                        out.metadata.insert(attr, rhs);
                    } else {
                        let col =
                            out.columns.iter_mut().find(|c| c.name == var).ok_or_else(|| {
                                Error::parse_at(
                                    "cdl",
                                    format!("attribute for undeclared variable '{var}'"),
                                    ln,
                                )
                            })?;
                        match attr.as_str() {
                            "units" => col.unit = Some(rhs),
                            "long_name" => col.description = Some(rhs),
                            _ => {} // other attributes tolerated
                        }
                    }
                } else {
                    // declaration: `double water_temp(time)`
                    let mut parts = stmt.split_whitespace();
                    let _ty = parts
                        .next()
                        .ok_or_else(|| Error::parse_at("cdl", "empty declaration", ln))?;
                    let rest: String = parts.collect::<Vec<_>>().join(" ");
                    let name = rest.split('(').next().unwrap_or("").trim();
                    if name.is_empty() {
                        return Err(Error::parse_at(
                            "cdl",
                            "variable declaration without name",
                            ln,
                        ));
                    }
                    if out.columns.iter().any(|c| c.name == name) {
                        return Err(Error::parse_at(
                            "cdl",
                            format!("duplicate variable '{name}'"),
                            ln,
                        ));
                    }
                    out.columns.push(ColumnDef::new(name));
                }
            }
            Section::Data => {
                pending.push(' ');
                pending.push_str(line);
                if !line.ends_with(';') {
                    continue;
                }
                let stmt = pending.trim().trim_end_matches(';').trim().to_string();
                pending.clear();
                let (var, list) = stmt
                    .split_once('=')
                    .ok_or_else(|| Error::parse_at("cdl", "data statement without '='", ln))?;
                let var = var.trim();
                if out.column(var).is_none() {
                    return Err(Error::parse_at(
                        "cdl",
                        format!("data for undeclared variable '{var}'"),
                        ln,
                    ));
                }
                let values: Vec<Value> = list
                    .split(',')
                    .map(|tok| {
                        let tok = tok.trim();
                        if tok == "_" {
                            Value::Null
                        } else {
                            Value::sniff(&unquote(tok))
                        }
                    })
                    .collect();
                data.push((var.to_string(), values));
            }
        }
    }
    if !name_seen {
        return Err(Error::parse("cdl", "empty file"));
    }
    if !pending.trim().is_empty() {
        return Err(Error::parse("cdl", "unterminated data statement"));
    }

    // Zip per-variable data vectors into rows.
    let nrows = data.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for i in 0..nrows {
        let mut rec = Record::new();
        for col in &out.columns {
            let v = data
                .iter()
                .find(|(n, _)| n == &col.name)
                .and_then(|(_, vs)| vs.get(i).cloned())
                .unwrap_or(Value::Null);
            rec.set(col.name.clone(), v);
        }
        out.rows.push(rec);
    }
    Ok(out)
}

/// Writes a [`ParsedFile`] as CDL-lite text (inverse of [`parse_cdl`]).
pub fn write_cdl(file: &ParsedFile) -> String {
    let name = file.meta("dataset_name").unwrap_or("dataset");
    let mut out = format!("netcdf {name} {{\n");
    out.push_str("dimensions:\n");
    out.push_str(&format!("    time = {} ;\n", file.rows.len()));
    out.push_str("variables:\n");
    for c in &file.columns {
        out.push_str(&format!("    double {}(time) ;\n", c.name));
        if let Some(u) = &c.unit {
            out.push_str(&format!("        {}:units = \"{}\" ;\n", c.name, u));
        }
        if let Some(d) = &c.description {
            out.push_str(&format!("        {}:long_name = \"{}\" ;\n", c.name, d));
        }
    }
    out.push_str("// global attributes:\n");
    for (k, v) in &file.metadata {
        if k == "dataset_name" || k.starts_with("dim_") {
            continue;
        }
        match v.parse::<f64>() {
            Ok(_) => out.push_str(&format!("    :{k} = {v} ;\n")),
            Err(_) => out.push_str(&format!("    :{k} = \"{v}\" ;\n")),
        }
    }
    out.push_str("data:\n");
    // a zero-row file writes no data statements (an empty list would read
    // back as one null cell)
    let columns: &[ColumnDef] = if file.rows.is_empty() { &[] } else { &file.columns };
    for c in columns {
        let rendered: Vec<String> = file
            .rows
            .iter()
            .map(|r| {
                let v = r.get(&c.name).cloned().unwrap_or(Value::Null);
                match v {
                    Value::Null => "_".to_string(),
                    Value::Text(s) => format!("\"{s}\""),
                    other => other.render().into_owned(),
                }
            })
            .collect();
        out.push_str(&format!(" {} = {} ;\n", c.name, rendered.join(", ")));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"netcdf saturn01_201006 {
dimensions:
    time = 3 ;
variables:
    double water_temp(time) ;
        water_temp:units = "degC" ;
        water_temp:long_name = "water temperature" ;
    double sal(time) ;
        sal:units = "PSU" ;
// global attributes:
    :station = "saturn01" ;
    :latitude = 46.18 ;
    :longitude = -123.18 ;
data:
 water_temp = 10.1, 10.2, _ ;
 sal = 28.0, 28.5,
       29.0 ;
}
"#;

    #[test]
    fn parse_sample() {
        let p = parse_cdl(SAMPLE).unwrap();
        assert_eq!(p.meta("dataset_name"), Some("saturn01_201006"));
        assert_eq!(p.meta("station"), Some("saturn01"));
        assert_eq!(p.meta_f64("latitude"), Some(46.18));
        assert_eq!(p.columns.len(), 2);
        assert_eq!(p.column("water_temp").unwrap().unit.as_deref(), Some("degC"));
        assert_eq!(
            p.column("water_temp").unwrap().description.as_deref(),
            Some("water temperature")
        );
        assert_eq!(p.rows.len(), 3);
        assert!(p.rows[2].get("water_temp").unwrap().is_null()); // the `_`
        assert_eq!(p.rows[2].get("sal"), Some(&Value::Float(29.0)));
    }

    #[test]
    fn multiline_data_statement() {
        let p = parse_cdl(SAMPLE).unwrap();
        assert_eq!(p.rows[1].get("sal"), Some(&Value::Float(28.5)));
    }

    #[test]
    fn dimension_recorded() {
        let p = parse_cdl(SAMPLE).unwrap();
        assert_eq!(p.meta("dim_time"), Some("3"));
    }

    #[test]
    fn round_trip() {
        let p = parse_cdl(SAMPLE).unwrap();
        let text = write_cdl(&p);
        let back = parse_cdl(&text).unwrap();
        assert_eq!(back.columns, p.columns);
        assert_eq!(back.rows, p.rows);
        assert_eq!(back.meta("station"), Some("saturn01"));
    }

    #[test]
    fn errors() {
        assert!(parse_cdl("").is_err());
        assert!(parse_cdl("not a cdl file").is_err());
        assert!(parse_cdl("netcdf {\n}").is_err()); // missing name
                                                    // attribute for undeclared variable
        let bad = "netcdf x {\nvariables:\n    ghost:units = \"m\" ;\n}";
        assert!(parse_cdl(bad).is_err());
        // data for undeclared variable
        let bad2 = "netcdf x {\nvariables:\n    double a(time) ;\ndata:\n b = 1 ;\n}";
        assert!(parse_cdl(bad2).is_err());
        // duplicate variable
        let bad3 = "netcdf x {\nvariables:\n double a(t) ;\n double a(t) ;\n}";
        assert!(parse_cdl(bad3).is_err());
        // unterminated data
        let bad4 = "netcdf x {\nvariables:\n double a(t) ;\ndata:\n a = 1, 2\n}";
        assert!(parse_cdl(bad4).is_err());
    }

    #[test]
    fn global_attr_without_quotes() {
        let t =
            "netcdf x {\nvariables:\n    double a(t) ;\n    :depth_m = 12.5 ;\ndata:\n a = 1 ;\n}";
        let p = parse_cdl(t).unwrap();
        assert_eq!(p.meta_f64("depth_m"), Some(12.5));
    }

    #[test]
    fn ragged_data_padded_with_null() {
        let t = "netcdf x {\nvariables:\n double a(t) ;\n double b(t) ;\ndata:\n a = 1, 2, 3 ;\n b = 9 ;\n}";
        let p = parse_cdl(t).unwrap();
        assert_eq!(p.rows.len(), 3);
        assert!(p.rows[1].get("b").unwrap().is_null());
    }

    #[test]
    fn text_values_quoted() {
        let t = "netcdf x {\nvariables:\n double a(t) ;\ndata:\n a = \"hi\", 2 ;\n}";
        let p = parse_cdl(t).unwrap();
        assert_eq!(p.rows[0].get("a").unwrap().as_text(), Some("hi"));
    }
}
