//! OBSLOG: the instrument cast-log format.
//!
//! Cruise CTD casts and glider missions in the synthetic archive use a
//! starred-header text format modelled on classic hydrographic exchange
//! files (Sea-Bird `.cnv`-style):
//!
//! ```text
//! *HEADER
//! *INSTRUMENT: CTD-7
//! *STATION: saturn02
//! *POSITION: 46.1840 -123.1870
//! *CAST: 20100615120000
//! *FIELDS: depth temp sal
//! *UNITS: m degC psu
//! *END
//! 1.0 12.5 28.1
//! 2.0 12.3 28.9
//! ```
//!
//! Data lines are whitespace-separated; `-9999` is the missing marker
//! (handled by [`Value::sniff`]).

use crate::model::{ColumnDef, FormatKind, ParsedFile};
use metamess_core::error::{Error, Result};
use metamess_core::value::{Record, Value};

/// Parses OBSLOG text.
pub fn parse_obslog(text: &str) -> Result<ParsedFile> {
    let mut out = ParsedFile::new(FormatKind::Obslog);
    let mut lines = text.lines().enumerate();

    // Header block.
    let mut saw_header = false;
    let mut saw_end = false;
    let mut fields: Vec<String> = Vec::new();
    let mut units: Vec<String> = Vec::new();
    for (ln0, raw) in lines.by_ref() {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line.eq_ignore_ascii_case("*HEADER") {
                saw_header = true;
                continue;
            }
            return Err(Error::parse_at("obslog", "expected '*HEADER'", ln));
        }
        if line.eq_ignore_ascii_case("*END") {
            saw_end = true;
            break;
        }
        let stmt = line
            .strip_prefix('*')
            .ok_or_else(|| Error::parse_at("obslog", "header line must start with '*'", ln))?;
        let (key, value) = stmt
            .split_once(':')
            .ok_or_else(|| Error::parse_at("obslog", "header line without ':'", ln))?;
        let key = key.trim().to_ascii_lowercase();
        let value = value.trim();
        match key.as_str() {
            "fields" => {
                fields = value.split_whitespace().map(str::to_string).collect();
            }
            "units" => {
                units = value.split_whitespace().map(str::to_string).collect();
            }
            "position" => {
                let mut it = value.split_whitespace();
                let lat = it.next().unwrap_or("");
                let lon = it.next().unwrap_or("");
                out.metadata.insert("lat".into(), lat.to_string());
                out.metadata.insert("lon".into(), lon.to_string());
            }
            other => {
                out.metadata.insert(other.to_string(), value.to_string());
            }
        }
    }
    if !saw_header {
        return Err(Error::parse("obslog", "empty file"));
    }
    if !saw_end {
        return Err(Error::parse("obslog", "missing '*END'"));
    }
    if fields.is_empty() {
        return Err(Error::parse("obslog", "missing '*FIELDS' header"));
    }
    for (i, f) in fields.iter().enumerate() {
        if fields[..i].contains(f) {
            return Err(Error::parse("obslog", format!("duplicate field '{f}'")));
        }
    }
    for (i, name) in fields.iter().enumerate() {
        let unit = units.get(i).filter(|u| *u != "-" && !u.is_empty()).cloned();
        out.columns.push(ColumnDef { name: name.clone(), unit, description: None });
    }

    // Data block.
    for (ln0, raw) in lines {
        let ln = ln0 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split_whitespace().collect();
        if cells.len() != fields.len() {
            return Err(Error::parse_at(
                "obslog",
                format!("expected {} fields, found {}", fields.len(), cells.len()),
                ln,
            ));
        }
        let mut rec = Record::new();
        for (name, cell) in fields.iter().zip(cells) {
            rec.set(name.clone(), Value::sniff(cell));
        }
        out.rows.push(rec);
    }
    Ok(out)
}

/// Writes a [`ParsedFile`] as OBSLOG text (inverse of [`parse_obslog`]).
///
/// Text cells containing whitespace are not representable; they are written
/// with spaces replaced by underscores.
pub fn write_obslog(file: &ParsedFile) -> String {
    let mut out = String::from("*HEADER\n");
    for (k, v) in &file.metadata {
        match k.as_str() {
            "lat" | "lon" => continue, // folded into POSITION below
            _ => out.push_str(&format!("*{}: {}\n", k.to_ascii_uppercase(), v)),
        }
    }
    if let (Some(lat), Some(lon)) = (file.meta("lat"), file.meta("lon")) {
        out.push_str(&format!("*POSITION: {lat} {lon}\n"));
    }
    let names: Vec<&str> = file.columns.iter().map(|c| c.name.as_str()).collect();
    out.push_str(&format!("*FIELDS: {}\n", names.join(" ")));
    if file.columns.iter().any(|c| c.unit.is_some()) {
        let units: Vec<String> = file
            .columns
            .iter()
            .map(|c| c.unit.clone().unwrap_or_else(|| "-".to_string()))
            .collect();
        out.push_str(&format!("*UNITS: {}\n", units.join(" ")));
    }
    out.push_str("*END\n");
    for row in &file.rows {
        let cells: Vec<String> = file
            .columns
            .iter()
            .map(|c| {
                let v = row.get(&c.name).cloned().unwrap_or(Value::Null);
                let s = match v {
                    Value::Null => "-9999".to_string(),
                    other => other.render().into_owned(),
                };
                s.replace(char::is_whitespace, "_")
            })
            .collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "*HEADER\n*INSTRUMENT: CTD-7\n*STATION: saturn02\n\
*POSITION: 46.1840 -123.1870\n*CAST: 20100615120000\n*FIELDS: depth temp sal\n\
*UNITS: m degC psu\n*END\n1.0 12.5 28.1\n2.0 12.3 28.9\n3.0 -9999 29.4\n";

    #[test]
    fn parse_sample() {
        let p = parse_obslog(SAMPLE).unwrap();
        assert_eq!(p.meta("instrument"), Some("CTD-7"));
        assert_eq!(p.meta("station"), Some("saturn02"));
        assert_eq!(p.meta_f64("lat"), Some(46.184));
        assert_eq!(p.meta_f64("lon"), Some(-123.187));
        assert_eq!(p.columns.len(), 3);
        assert_eq!(p.column("temp").unwrap().unit.as_deref(), Some("degC"));
        assert_eq!(p.rows.len(), 3);
        assert!(p.rows[2].get("temp").unwrap().is_null());
    }

    #[test]
    fn cast_timestamp_compact_form() {
        let p = parse_obslog(SAMPLE).unwrap();
        let ts = metamess_core::time::Timestamp::parse(p.meta("cast").unwrap()).unwrap();
        assert_eq!(ts.to_iso8601(), "2010-06-15T12:00:00Z");
    }

    #[test]
    fn units_dash_means_none() {
        let t = "*HEADER\n*FIELDS: a b\n*UNITS: m -\n*END\n1 2\n";
        let p = parse_obslog(t).unwrap();
        assert_eq!(p.column("a").unwrap().unit.as_deref(), Some("m"));
        assert!(p.column("b").unwrap().unit.is_none());
    }

    #[test]
    fn missing_units_row_ok() {
        let t = "*HEADER\n*FIELDS: a b\n*END\n1 2\n";
        let p = parse_obslog(t).unwrap();
        assert!(p.column("a").unwrap().unit.is_none());
        assert_eq!(p.rows.len(), 1);
    }

    #[test]
    fn data_comments_skipped() {
        let t = "*HEADER\n*FIELDS: a\n*END\n1\n# comment\n2\n";
        let p = parse_obslog(t).unwrap();
        assert_eq!(p.rows.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_obslog("").is_err());
        assert!(parse_obslog("data without header\n").is_err());
        assert!(parse_obslog("*HEADER\n*FIELDS: a\n1\n").is_err()); // no *END
        assert!(parse_obslog("*HEADER\n*END\n").is_err()); // no FIELDS
        assert!(parse_obslog("*HEADER\nBADLINE\n*END\n").is_err());
        assert!(parse_obslog("*HEADER\n*NOCOLON\n*END\n").is_err());
        assert!(parse_obslog("*HEADER\n*FIELDS: a a\n*END\n").is_err()); // dup
                                                                         // wrong field count in data
        assert!(parse_obslog("*HEADER\n*FIELDS: a b\n*END\n1\n").is_err());
    }

    #[test]
    fn round_trip() {
        let p = parse_obslog(SAMPLE).unwrap();
        let text = write_obslog(&p);
        let back = parse_obslog(&text).unwrap();
        assert_eq!(back.columns, p.columns);
        assert_eq!(back.rows, p.rows);
        assert_eq!(back.meta("station"), p.meta("station"));
        assert_eq!(back.meta("lat"), p.meta("lat"));
    }
}
