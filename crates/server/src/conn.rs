//! Per-connection state machine driven by the event loop.
//!
//! A connection is always in exactly one of three states:
//!
//! ```text
//!             bytes arrive, request completes
//!   Reading ────────────────────────────────────▶ Dispatched
//!      ▲                                              │
//!      │ keep-alive (carried pipelined bytes          │ worker finishes,
//!      │ are parsed immediately)                      │ response queued
//!      │                                              ▼
//!      └───────────────────────────────────────── Writing ──▶ close
//!                                                  (when `connection: close`,
//!                                                   a protocol error, shed,
//!                                                   or drain)
//! ```
//!
//! * **Reading** — accumulating request bytes. An empty buffer means the
//!   connection is idle between keep-alive requests (bounded by the idle
//!   timeout); a non-empty buffer means a request is in flight (bounded
//!   by the read deadline armed at its first byte → 408).
//! * **Dispatched** — a complete request was handed to the worker pool.
//!   Read interest is dropped (backpressure: a pipelining client's next
//!   request stays in the kernel buffer) until the response is written.
//! * **Writing** — the serialized response drains nonblockingly, bounded
//!   by a write deadline.
//!
//! All methods are nonblocking; the event loop owns readiness and
//! deadlines. No method ever touches another connection or a lock.

use crate::http::{self, Limits, Parse, Request};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Which phase the connection is in (see the module diagram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Accumulating request bytes (idle when the buffer is empty).
    Reading,
    /// A complete request is with the worker pool.
    Dispatched,
    /// Draining a serialized response to the socket.
    Writing,
}

/// What pumping the read side produced.
#[derive(Debug)]
pub(crate) enum ReadEvent {
    /// No complete request yet; wait for more bytes.
    NeedMore,
    /// A complete request was parsed; the connection is now `Dispatched`.
    Request(Request),
    /// Protocol error; answer with this status and close.
    Bad {
        /// HTTP status to answer with (400, 413, 501).
        status: u16,
        /// Reason line for the error body.
        message: String,
    },
    /// Peer is gone (EOF or transport error); close silently.
    Closed,
}

/// What pumping the write side produced.
#[derive(Debug)]
pub(crate) enum WriteEvent {
    /// The kernel buffer filled; wait for writability.
    NeedMore,
    /// The whole response is out.
    Done,
    /// Peer is gone; close.
    Closed,
}

/// One client connection owned by the event thread.
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Current phase.
    pub state: ConnState,
    /// Interest currently registered with the poller (the event loop
    /// syncs this against the state after every transition).
    pub registered: crate::event_loop::Interest,
    /// Deadline for completing the in-flight request read (408 past it).
    pub read_deadline: Option<Instant>,
    /// Deadline for draining the pending response (close past it).
    pub write_deadline: Option<Instant>,
    /// When the connection last went idle (empty buffer, no request).
    pub idle_since: Instant,
    /// Close instead of re-entering keep-alive once the response drains.
    pub close_after_write: bool,
    buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
}

impl Conn {
    /// Wraps a freshly accepted stream (switches it to nonblocking).
    pub(crate) fn new(stream: TcpStream, now: Instant) -> std::io::Result<Conn> {
        stream.set_nonblocking(true)?;
        Ok(Conn {
            stream,
            state: ConnState::Reading,
            registered: crate::event_loop::Interest::READ,
            read_deadline: None,
            write_deadline: None,
            idle_since: now,
            close_after_write: false,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
        })
    }

    /// Idle keep-alive connection with nothing in flight?
    pub(crate) fn is_idle(&self) -> bool {
        self.state == ConnState::Reading && self.buf.is_empty()
    }

    /// Has the in-flight request's head fully arrived? (Picks the 408
    /// message: head vs body timeout.)
    pub(crate) fn head_complete(&self) -> bool {
        http::find_head_end(&self.buf).is_some()
    }

    /// Pumps readable bytes from the socket and tries to complete a
    /// request. Only meaningful in `Reading`; other states ignore the
    /// readiness (interest should be off anyway).
    pub(crate) fn on_readable(&mut self, limits: &Limits, now: Instant) -> ReadEvent {
        if self.state != ConnState::Reading {
            return ReadEvent::NeedMore;
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: silent close when idle, 400 when mid-request —
                    // exactly the blocking reader's behavior.
                    return if self.buf.is_empty() {
                        ReadEvent::Closed
                    } else {
                        ReadEvent::Bad {
                            status: 400,
                            message: "connection closed mid-request".to_string(),
                        }
                    };
                }
                Ok(n) => {
                    if self.buf.is_empty() {
                        self.read_deadline = Some(now + limits.read_timeout);
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    // Parse after every chunk so head/body caps bound the
                    // buffer even against a client streaming garbage.
                    match self.try_complete(limits) {
                        ReadEvent::NeedMore => continue,
                        terminal => return terminal,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadEvent::NeedMore,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadEvent::Closed,
            }
        }
    }

    /// Tries to parse a complete request out of the buffer.
    fn try_complete(&mut self, limits: &Limits) -> ReadEvent {
        match http::try_parse(&self.buf, limits) {
            Parse::Incomplete => ReadEvent::NeedMore,
            Parse::Complete { request, consumed } => {
                // Whatever follows the body is the next pipelined request;
                // it stays buffered (capacity retained) until the response
                // for this one has been written.
                self.buf.drain(..consumed);
                self.read_deadline = None;
                self.state = ConnState::Dispatched;
                ReadEvent::Request(request)
            }
            Parse::Error { status, message } => ReadEvent::Bad { status, message },
        }
    }

    /// Stages a serialized response and enters `Writing`.
    pub(crate) fn begin_write(&mut self, bytes: Vec<u8>, close_after: bool, deadline: Instant) {
        self.out = bytes;
        self.out_pos = 0;
        self.close_after_write = close_after;
        self.state = ConnState::Writing;
        self.write_deadline = Some(deadline);
    }

    /// Pumps the pending response into the socket.
    pub(crate) fn on_writable(&mut self) -> WriteEvent {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return WriteEvent::Closed,
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return WriteEvent::NeedMore,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return WriteEvent::Closed,
            }
        }
        let _ = self.stream.flush();
        WriteEvent::Done
    }

    /// Re-enters `Reading` after a keep-alive response. Carried pipelined
    /// bytes are parsed immediately; an empty buffer restarts the idle
    /// clock instead.
    pub(crate) fn advance_keep_alive(&mut self, limits: &Limits, now: Instant) -> ReadEvent {
        self.state = ConnState::Reading;
        self.out.clear();
        self.out_pos = 0;
        self.write_deadline = None;
        if self.buf.is_empty() {
            self.idle_since = now;
            self.read_deadline = None;
            ReadEvent::NeedMore
        } else {
            self.read_deadline = Some(now + limits.read_timeout);
            self.try_complete(limits)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::{Duration, Instant};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, Conn::new(server_side, Instant::now()).unwrap())
    }

    fn settle(client: &TcpStream) {
        // give the loopback a moment to deliver
        let _ = client;
        std::thread::sleep(Duration::from_millis(20));
    }

    #[test]
    fn request_fragmented_across_writes_completes_incrementally() {
        let (mut client, mut conn) = pair();
        let limits = Limits::default();
        use std::io::Write as _;

        client.write_all(b"GET /healthz HT").unwrap();
        settle(&client);
        match conn.on_readable(&limits, Instant::now()) {
            ReadEvent::NeedMore => {}
            other => panic!("partial head should be NeedMore, got {other:?}"),
        }
        assert!(conn.read_deadline.is_some(), "deadline armed at first byte");
        assert!(!conn.is_idle());

        client.write_all(b"TP/1.1\r\nhost: t\r\n\r\n").unwrap();
        settle(&client);
        match conn.on_readable(&limits, Instant::now()) {
            ReadEvent::Request(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/healthz");
            }
            other => panic!("expected a request, got {other:?}"),
        }
        assert_eq!(conn.state, ConnState::Dispatched);
        assert!(conn.read_deadline.is_none(), "deadline disarmed once parsed");
    }

    #[test]
    fn pipelined_bytes_are_carried_until_the_response_is_written() {
        let (mut client, mut conn) = pair();
        let limits = Limits::default();
        use std::io::{Read as _, Write as _};

        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n")
            .unwrap();
        settle(&client);
        match conn.on_readable(&limits, Instant::now()) {
            ReadEvent::Request(req) => assert_eq!(req.path, "/a"),
            other => panic!("expected /a, got {other:?}"),
        }

        // respond, then the carried second request parses with no socket read
        conn.begin_write(
            b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n".to_vec(),
            false,
            Instant::now() + Duration::from_secs(1),
        );
        match conn.on_writable() {
            WriteEvent::Done => {}
            other => panic!("tiny response should drain at once, got {other:?}"),
        }
        match conn.advance_keep_alive(&limits, Instant::now()) {
            ReadEvent::Request(req) => {
                assert_eq!(req.path, "/b");
                assert!(!req.wants_keep_alive());
            }
            other => panic!("expected carried /b, got {other:?}"),
        }

        client.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut got = [0u8; 16];
        client.read_exact(&mut got[..8]).unwrap();
        assert_eq!(&got[..8], b"HTTP/1.1");
    }

    #[test]
    fn oversized_head_is_rejected_while_reading() {
        let (mut client, mut conn) = pair();
        let limits = Limits { max_header_bytes: 64, ..Limits::default() };
        use std::io::Write as _;

        client.write_all(&vec![b'a'; 256]).unwrap();
        settle(&client);
        match conn.on_readable(&limits, Instant::now()) {
            ReadEvent::Bad { status: 413, .. } => {}
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn peer_eof_mid_request_is_a_400_and_idle_eof_is_silent() {
        let (client, mut conn) = pair();
        use std::io::Write as _;
        let limits = Limits::default();
        let mut c = client;
        c.write_all(b"GET /x HT").unwrap();
        settle(&c);
        assert!(matches!(conn.on_readable(&limits, Instant::now()), ReadEvent::NeedMore));
        drop(c);
        settle(&conn.stream);
        match conn.on_readable(&limits, Instant::now()) {
            ReadEvent::Bad { status: 400, .. } => {}
            other => panic!("expected 400 mid-request EOF, got {other:?}"),
        }

        let (client2, mut conn2) = pair();
        drop(client2);
        settle(&conn2.stream);
        assert!(matches!(conn2.on_readable(&limits, Instant::now()), ReadEvent::Closed));
    }
}
