//! Property tests: write→parse round trips for every archive format, and
//! parser robustness on arbitrary input.

use metamess_core::value::{Record, Value};
use metamess_formats::*;
use proptest::prelude::*;

/// A column name the formats can all carry (OBSLOG cannot hold whitespace).
fn arb_column() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,14}"
}

/// A cell value every format can round-trip.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1e6f64..1e6).prop_map(|f| Value::Float((f * 1000.0).round() / 1000.0)),
        "[a-zA-Z][a-zA-Z0-9_]{0,10}"
            // sentinels like "na"/"NaN"/"true" sniff into other types and
            // cannot round-trip as text — that is by design, skip them
            .prop_filter("sniffs as non-text", |s| { matches!(Value::sniff(s), Value::Text(_)) })
            .prop_map(Value::Text),
    ]
}

fn arb_parsed_file(max_cols: usize, max_rows: usize) -> impl Strategy<Value = ParsedFile> {
    (
        prop::collection::btree_set(arb_column(), 1..=max_cols),
        prop::collection::vec(prop::collection::vec(arb_value(), max_cols), 0..max_rows),
        prop::collection::btree_map("[a-z][a-z_]{0,8}", "[a-zA-Z0-9 ._-]{0,12}", 0..4),
    )
        .prop_map(|(cols, rows, mut metadata)| {
            let columns: Vec<ColumnDef> = cols
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    if i % 2 == 0 {
                        ColumnDef::with_unit(c.clone(), "degC")
                    } else {
                        ColumnDef::new(c.clone())
                    }
                })
                .collect();
            let mut out = ParsedFile::new(FormatKind::Csv);
            // metadata values must survive trimming in headers
            metadata.retain(|_, v| !v.trim().is_empty() && v.trim() == v.as_str());
            out.metadata = metadata;
            for row in rows {
                let mut r = Record::new();
                for (i, (c, v)) in columns.iter().zip(row).enumerate() {
                    // an entirely-blank CSV line is indistinguishable from no
                    // line at all; keep the first cell non-null
                    let v = if i == 0 && v.is_null() { Value::Int(0) } else { v };
                    r.set(c.name.clone(), v);
                }
                out.rows.push(r);
            }
            out.columns = columns;
            out
        })
}

proptest! {
    #[test]
    fn csv_round_trip(file in arb_parsed_file(5, 8)) {
        let text = write_csv(&file, ',');
        let back = parse_csv(&text, &CsvOptions::default()).unwrap();
        prop_assert_eq!(&back.columns, &file.columns);
        prop_assert_eq!(&back.rows, &file.rows);
        prop_assert_eq!(&back.metadata, &file.metadata);
    }

    #[test]
    fn cdl_round_trip(mut file in arb_parsed_file(4, 6)) {
        file.format = FormatKind::Cdl;
        file.metadata.insert("dataset_name".into(), "propfile".into());
        let text = write_cdl(&file);
        let back = parse_cdl(&text).unwrap();
        prop_assert_eq!(&back.columns, &file.columns);
        prop_assert_eq!(&back.rows, &file.rows);
    }

    #[test]
    fn obslog_round_trip(mut file in arb_parsed_file(4, 6)) {
        file.format = FormatKind::Obslog;
        let text = write_obslog(&file);
        let back = parse_obslog(&text).unwrap();
        prop_assert_eq!(&back.columns, &file.columns);
        prop_assert_eq!(&back.rows, &file.rows);
    }

    #[test]
    fn parsers_never_panic_on_arbitrary_text(text in "\\PC{0,300}") {
        let _ = parse_csv(&text, &CsvOptions::default());
        let _ = parse_cdl(&text);
        let _ = parse_obslog(&text);
        let _ = sniff_content(&text);
    }

    #[test]
    fn sniffer_agrees_with_writer(file in arb_parsed_file(3, 4)) {
        let csv = write_csv(&file, ',');
        // single-column CSVs have no delimiter; skip those
        if file.columns.len() > 1 {
            prop_assert_eq!(sniff_content(&csv), Some(FormatKind::Csv));
        }
        let mut cdl_file = file.clone();
        cdl_file.metadata.insert("dataset_name".into(), "x".into());
        prop_assert_eq!(sniff_content(&write_cdl(&cdl_file)), Some(FormatKind::Cdl));
        prop_assert_eq!(sniff_content(&write_obslog(&file)), Some(FormatKind::Obslog));
    }
}
