//! The shardd side of the protocol: one [`ShardEngine`] behind a TCP
//! listener, answering Hello/Probe/Score frames.
//!
//! [`ShardHost`] is the pure request handler — frame in, frame out, no
//! I/O — shared verbatim by the TCP server and the in-process
//! [`FaultTransport`](crate::fault::FaultTransport), so the fault suite
//! exercises the exact production handler. Every failure becomes an
//! `Error` frame echoing the request's trace id; the handler never
//! panics on hostile input.
//!
//! [`Shardd`] is the listener: a deliberately lean blocking accept loop
//! with a bounded thread-per-connection pool, **not** the serve crate's
//! epoll readiness loop. The dependency points the other way (the server
//! crate consumes this one for `--remote`), and the fan-in here is tiny
//! by construction — one coordinator holds a handful of pooled
//! connections per shard — so nonblocking accept + capped threads covers
//! the load without duplicating the event loop.

use crate::frame::{Frame, FrameKind};
use crate::wire::{
    HelloResponse, ProbeRequest, ProbeResponse, ScoreRequest, ScoreResponse, ShardBounds, WireError,
};
use metamess_core::catalog::Catalog;
use metamess_core::error::{Error, Result};
use metamess_search::fanout::{build_shard, generous, probe_summary, score_top};
use metamess_search::{QueryPlan, ShardEngine, ShardSpec};
use metamess_vocab::Vocabulary;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Concurrent connections one shardd serves; beyond this, new
/// connections are answered with an `Error` frame and closed.
const MAX_CONNS: usize = 64;

/// How long a connection may sit idle mid-stream before its thread gives
/// up on it.
const CONN_IDLE: Duration = Duration::from_secs(30);

/// One hosted shard: the engine, its identity in the layout, and the
/// vocabulary to plan queries with. Pure — all I/O lives in [`Shardd`].
pub struct ShardHost {
    engine: ShardEngine,
    vocab: Vocabulary,
    shard_id: u32,
    shard_count: u32,
    partitioner: String,
    generation: u64,
}

impl ShardHost {
    /// Builds shard `shard_id` of the layout `spec` over a catalog
    /// snapshot — the same partition assignment the in-process sharded
    /// engine uses, so a fleet of hosts covers the catalog exactly.
    pub fn build(
        catalog: &Catalog,
        vocab: Vocabulary,
        spec: ShardSpec,
        shard_id: usize,
    ) -> Result<ShardHost> {
        if shard_id >= spec.count() {
            return Err(Error::invalid(format!(
                "shard id {shard_id} out of range for a {}-shard layout",
                spec.count()
            )));
        }
        let engine = build_shard(catalog, &vocab, spec, shard_id);
        Ok(ShardHost {
            engine,
            vocab,
            shard_id: shard_id as u32,
            shard_count: spec.count() as u32,
            partitioner: spec.partitioner().as_str().to_string(),
            generation: catalog.generation(),
        })
    }

    /// Datasets in the hosted shard.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// True when the hosted shard is empty.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// The catalog generation the hosted engine was built against.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Answers one request frame. Infallible by construction: every
    /// error becomes an `Error` frame carrying the request's trace id.
    pub fn handle_frame(&self, request: &Frame) -> Frame {
        match self.try_handle(request) {
            Ok(response) => response,
            Err(e) => Frame::new(
                FrameKind::Error,
                request.trace_id,
                &WireError { message: e.to_string() },
            ),
        }
    }

    fn try_handle(&self, request: &Frame) -> Result<Frame> {
        match request.kind {
            FrameKind::Hello => {
                let response = HelloResponse {
                    shard_id: self.shard_id,
                    shard_count: self.shard_count,
                    partitioner: self.partitioner.clone(),
                    generation: self.generation,
                    datasets: self.engine.len() as u64,
                    bounds: ShardBounds::new(self.engine.bbox_bound(), self.engine.time_bound()),
                };
                Ok(Frame::new(FrameKind::HelloOk, request.trace_id, &response))
            }
            FrameKind::Probe => {
                let req: ProbeRequest = request.parse_payload()?;
                let plan = QueryPlan::prepare(&req.query, &self.vocab);
                let summary =
                    probe_summary(&self.engine, &req.query, &plan, generous(req.query.limit));
                let response = ProbeResponse { generation: self.generation, summary };
                Ok(Frame::new(FrameKind::ProbeOk, request.trace_id, &response))
            }
            FrameKind::Score => {
                let req: ScoreRequest = request.parse_payload()?;
                let plan = QueryPlan::prepare(&req.query, &self.vocab);
                let hits = score_top(&self.engine, &req.query, &plan, &self.vocab, &req.work);
                let response = ScoreResponse { generation: self.generation, hits };
                Ok(Frame::new(FrameKind::ScoreOk, request.trace_id, &response))
            }
            other => Err(Error::invalid(format!(
                "shardd answers Hello/Probe/Score requests, not {other:?}"
            ))),
        }
    }
}

/// A running shardd listener. Dropping it does **not** stop the server;
/// call [`Shardd::shutdown`].
pub struct Shardd {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Shardd {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and serves `host` until
    /// [`Shardd::shutdown`].
    pub fn spawn(host: Arc<ShardHost>, addr: &str) -> Result<Shardd> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| Error::io(format!("binding shardd listener on {addr}"), e))?;
        let local =
            listener.local_addr().map_err(|e| Error::io("reading shardd listener address", e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::io("setting shardd listener nonblocking", e))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_accept = stop.clone();
        let accept_thread = std::thread::spawn(move || {
            let live = Arc::new(AtomicUsize::new(0));
            while !stop_accept.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if live.load(Ordering::Relaxed) >= MAX_CONNS {
                            reject_over_capacity(stream);
                            continue;
                        }
                        live.fetch_add(1, Ordering::Relaxed);
                        let host = host.clone();
                        let live = live.clone();
                        let stop = stop_accept.clone();
                        std::thread::spawn(move || {
                            serve_connection(stream, &host, &stop);
                            live.fetch_sub(1, Ordering::Relaxed);
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(Shardd { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. In-flight connections
    /// finish their current frame and then notice the flag.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Shardd {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn reject_over_capacity(mut stream: TcpStream) {
    let frame = Frame::new(
        FrameKind::Error,
        0,
        &WireError { message: "shardd at connection capacity".to_string() },
    );
    let _ = crate::frame::write_frame(&mut stream, &frame);
}

/// One connection: read a frame, answer it, repeat until the peer hangs
/// up, the idle deadline passes, or shutdown is requested. Read errors
/// that can be answered (bad CRC, truncation, wrong version) get an
/// `Error` frame before the close, so a confused coordinator sees *why*.
fn serve_connection(mut stream: TcpStream, host: &ShardHost, stop: &AtomicBool) {
    let on = metamess_telemetry::enabled();
    stream.set_read_timeout(Some(CONN_IDLE)).ok();
    stream.set_nodelay(true).ok();
    while !stop.load(Ordering::Relaxed) {
        let request = match crate::frame::read_frame(&mut stream) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            Err(Error::Io { .. }) => break,
            Err(e) => {
                let frame = Frame::new(FrameKind::Error, 0, &WireError { message: e.to_string() });
                let _ = crate::frame::write_frame(&mut stream, &frame);
                break;
            }
        };
        // A request that arrives after shutdown is dropped, not answered:
        // the coordinator sees the close, fails the attempt, and its
        // circuit/partial machinery takes over deterministically.
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if on {
            metamess_telemetry::global().counter("metamess_remote_shardd_requests_total").inc();
        }
        let response = host.handle_frame(&request);
        if crate::frame::write_frame(&mut stream, &response).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::HelloRequest;
    use metamess_core::feature::DatasetFeature;
    use metamess_search::Query;

    fn tiny_catalog() -> Catalog {
        let mut c = Catalog::new();
        for i in 0..8 {
            let mut d = DatasetFeature::new(format!("d{i}.csv"));
            d.title = format!("dataset {i}");
            c.put(d);
        }
        c
    }

    #[test]
    fn handler_answers_hello_probe_score_and_rejects_the_rest() {
        let c = tiny_catalog();
        let host = ShardHost::build(&c, Vocabulary::observatory_default(), ShardSpec::single(), 0)
            .unwrap();
        let hello = host.handle_frame(&Frame::new(FrameKind::Hello, 7, &HelloRequest::default()));
        assert_eq!(hello.kind, FrameKind::HelloOk);
        assert_eq!(hello.trace_id, 7, "responses echo the request trace id");
        let parsed: HelloResponse = hello.parse_payload().unwrap();
        assert_eq!(parsed.shard_id, 0);
        assert_eq!(parsed.datasets, 8);

        let probe = host.handle_frame(&Frame::new(
            FrameKind::Probe,
            9,
            &ProbeRequest { query: Query::new() },
        ));
        assert_eq!(probe.kind, FrameKind::ProbeOk);

        // a response kind as a request is a clean error, not a panic
        let bogus = host.handle_frame(&Frame::new(FrameKind::ScoreOk, 3, &()));
        assert_eq!(bogus.kind, FrameKind::Error);
        assert_eq!(bogus.trace_id, 3);

        // garbage payload under a valid kind: typed error
        let garbage = Frame { kind: FrameKind::Probe, trace_id: 1, payload: b"not json".to_vec() };
        assert_eq!(host.handle_frame(&garbage).kind, FrameKind::Error);
    }

    #[test]
    fn out_of_range_shard_id_is_rejected_at_build() {
        let c = tiny_catalog();
        let spec = ShardSpec::new(2, metamess_search::Partitioner::Hash);
        assert!(ShardHost::build(&c, Vocabulary::observatory_default(), spec, 2).is_err());
    }
}
