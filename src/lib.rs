//! # metamess — Taming the Metadata Mess
//!
//! A full Rust implementation of the metadata-wrangling system described in
//! V.M. Megler, *"Taming the Metadata Mess"* (ICDE 2013) and the underlying
//! *Data Near Here* ranked search for scientific data (Megler & Maier,
//! 2011/2012).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — value model, catalog features, durable snapshot+WAL store
//! * [`vocab`] — synonym tables, taxonomies, units, curation registry
//! * [`transform`] — Google-Refine-compatible rules + GREL expressions
//! * [`discover`] — clustering-based transformation discovery
//! * [`formats`] — archive file formats (CSV dialects, CDL-lite, OBSLOG)
//! * [`archive`] — deterministic synthetic observatory archive (ground truth)
//! * [`harvest`] — scanning, naming conventions, feature extraction
//! * [`search`] — "Data Near Here" ranked search + summary pages
//! * [`pipeline`] — the composable wrangling process and curation loop
//! * [`telemetry`] — metrics registry, spans, and exposition formats
//! * [`remote`] — the remote shard protocol: `shardd` processes hosting
//!   catalog shards and the scatter-gather coordinator dialing them
//! * [`server`] — embedded HTTP search service with bounded concurrency,
//!   load shedding, and hot catalog reload
//!
//! ## Quickstart
//!
//! ```
//! use metamess::prelude::*;
//!
//! // 1. a (synthetic) archive of scientific files
//! let archive = metamess::archive::generate(&ArchiveSpec::tiny());
//!
//! // 2. wrangle it: scan → transform → discover → validate → publish
//! let mut ctx = PipelineContext::new(
//!     ArchiveInput::Memory(archive.files),
//!     Vocabulary::observatory_default(),
//! );
//! let mut pipeline = Pipeline::standard();
//! let curator = CurationLoop::new(CuratorPolicy::default());
//! curator.run_to_fixpoint(&mut pipeline, &mut ctx).unwrap();
//!
//! // 3. search the published catalog
//! let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
//! let query = Query::parse("near 46.2,-123.9 with water_temperature").unwrap();
//! let hits = engine.search(&query);
//! assert!(!hits.is_empty());
//! ```

pub use metamess_archive as archive;
pub use metamess_core as core;
pub use metamess_discover as discover;
pub use metamess_formats as formats;
pub use metamess_harvest as harvest;
pub use metamess_pipeline as pipeline;
pub use metamess_remote as remote;
pub use metamess_search as search;
pub use metamess_server as server;
pub use metamess_telemetry as telemetry;
pub use metamess_transform as transform;
pub use metamess_vocab as vocab;

pub mod fsck;
pub mod telemetry_io;

/// The names most programs need, in one import.
pub mod prelude {
    pub use metamess_archive::{ArchiveSpec, GeneratedArchive, GroundTruth, MessCategory};
    pub use metamess_core::{
        Catalog, DatasetFeature, DatasetId, DurableCatalog, GeoBBox, GeoPoint, NameResolution,
        Record, StoreOptions, TimeInterval, Timestamp, Value, VariableFeature,
    };
    pub use metamess_harvest::{HarvestConfig, ScanConfig};
    pub use metamess_pipeline::{
        ArchiveInput, CurationLoop, CuratorPolicy, Pipeline, PipelineContext,
    };
    pub use metamess_search::{Query, SearchEngine, SearchHit};
    pub use metamess_transform::{parse_operations, Operation};
    pub use metamess_vocab::Vocabulary;
}
