//! Store-level metrics assembly, shared by `GET /metrics` and the CLI's
//! `metamess stats`.
//!
//! Both consumers must emit **identical expositions for the same
//! snapshot**, so the assembly lives in exactly one place: persisted
//! cross-process history (`<store>/state/telemetry.json`), merged with the
//! live in-process registry, plus run-ledger-derived gauges (per-stage
//! timings survive even runs that had telemetry disabled).

use metamess_telemetry::{labeled, MetricsSnapshot};
use std::path::Path;

/// Builds the full metrics snapshot for a store: persisted history +
/// live registry + ledger gauges.
pub fn store_snapshot(store_dir: &Path) -> MetricsSnapshot {
    let mut snap =
        metamess_telemetry::load_snapshot(&metamess_telemetry::telemetry_path(store_dir))
            .unwrap_or_default();
    snap.merge(&metamess_telemetry::global().snapshot());
    if let Ok(Some(ledger)) =
        metamess_core::store::read_ledger(store_dir.join("state").join("ledger.bin"))
    {
        snap.gauges.insert("metamess_pipeline_last_run_id".to_string(), ledger.run_id as i64);
        for (stage, rec) in &ledger.stages {
            let name = labeled("metamess_pipeline_stage_last_micros", "stage", stage);
            snap.gauges.insert(name, rec.micros as i64);
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpstore(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("metamess-expo-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(d.join("state")).unwrap();
        d
    }

    #[test]
    fn persisted_history_is_folded_in() {
        let dir = tmpstore("hist");
        let r = metamess_telemetry::MetricsRegistry::new(true);
        r.counter("metamess_expose_test_total").add(9);
        std::fs::write(metamess_telemetry::telemetry_path(&dir), r.snapshot().render_json())
            .unwrap();
        let snap = store_snapshot(&dir);
        assert!(snap.counters["metamess_expose_test_total"] >= 9);
    }

    #[test]
    fn empty_store_yields_live_only_snapshot() {
        let dir = tmpstore("empty");
        let snap = store_snapshot(&dir);
        // No persisted file, no ledger: only whatever the live global
        // registry holds (possibly nothing).
        assert!(!snap.gauges.contains_key("metamess_pipeline_last_run_id"));
    }
}
