//! # metamess-telemetry
//!
//! Dependency-light observability for the metamess workspace
//! (std + `parking_lot`, plus `serde_json` for snapshot persistence): a
//! global [`MetricsRegistry`] of named counters, gauges and log-bucketed
//! histograms, lightweight duration [`Span`]s, and leveled stderr event
//! mirroring via `METAMESS_LOG`.
//!
//! ## Design
//!
//! * **Lock-free hot path.** Updating a metric is a handful of relaxed
//!   atomic operations. Registration (first lookup of a name) takes the
//!   registry lock once; hot paths cache their `Arc` handles in
//!   `OnceLock` statics.
//! * **Single-branch disabled path.** Every instrumentation site first
//!   checks [`enabled`] — one relaxed load and a branch. When disabled
//!   there is no clock read, no lock, and no allocation (verified by the
//!   `telemetry_overhead` bench in `metamess-bench`).
//! * **Snapshot-on-read.** Reporting clones the current values into a
//!   [`MetricsSnapshot`], which renders as a human table, Prometheus text
//!   ([`MetricsSnapshot::render_prometheus`]) or JSON
//!   ([`MetricsSnapshot::render_json`]), and merges losslessly with
//!   snapshots persisted by earlier processes.
//!
//! ## Naming scheme
//!
//! `metamess_<crate>_<name>` with `_total` for counters and `_micros` for
//! duration histograms; per-entity series append a Prometheus label via
//! [`labeled`], e.g. `metamess_pipeline_stage_micros{stage="publish"}`.
//!
//! ## Environment
//!
//! * `METAMESS_LOG` — `error`/`warn`/`info`/`debug`/`trace` mirrors
//!   events and span durations to stderr (default: off).
//! * `METAMESS_TELEMETRY` — `0`/`off`/`false` starts the global registry
//!   disabled (default: enabled).
//! * `METAMESS_TRACE_BUFFER` — flight-recorder capacity in completed
//!   traces (default 256, clamped; see [`trace`]).
//!
//! ## Tracing
//!
//! Aggregates answer "where does time go on average"; the [`trace`]
//! module answers "why was *this* request slow": request-scoped
//! [`TraceContext`]s, parent-linked span trees, a bounded flight
//! recorder, and a sampling-exempt slow-query log.

#![warn(missing_docs)]

pub mod io;
mod log;
mod metric;
mod registry;
mod span;
pub mod trace;

pub use crate::log::{log_enabled, log_write, Level};
pub use io::{load_snapshot, parse_json, persist_merged, telemetry_path};
pub use metric::{bucket_bound, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{labeled, MetricsRegistry, MetricsSnapshot};
pub use span::{Span, Stopwatch};
pub use trace::{FinishedTrace, FlightRecorder, OwnedSpan, OwnedTrace, TraceContext};

use std::sync::OnceLock;

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let on = match std::env::var("METAMESS_TELEMETRY") {
            Ok(v) => !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "off" | "false"),
            Err(_) => true,
        };
        MetricsRegistry::new(on)
    })
}

/// Whether the global registry is recording — the one branch every
/// disabled-path instrumentation site pays.
pub fn enabled() -> bool {
    global().enabled()
}

#[cfg(test)]
pub(crate) mod test_support {
    /// Serializes unit tests that flip the global enabled flag (span and
    /// trace tests share the registry, so the flips must not interleave).
    pub(crate) static ENABLED_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("metamess_lib_test_total").add(2);
        assert!(global().snapshot().counters["metamess_lib_test_total"] >= 2);
    }
}
