//! Variable taxonomies: hierarchical groupings of canonical terms.
//!
//! The poster's "Concepts at multiple levels of detail" category
//! (fluorescence vs `fluores375`, `fluores400`) is handled by grouping
//! variables under concept nodes so the UI can "collapse or expose as
//! needed" and "support hierarchical menus". "Link to multiple taxonomies"
//! (source-context naming) is handled by keeping several named taxonomies
//! side by side in a [`TaxonomySet`].

use metamess_core::error::{Error, Result};
use metamess_core::text::normalize_term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A node in a taxonomy: a concept that may contain narrower concepts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomyNode {
    /// Concept name (a canonical vocabulary term or a pure grouping label).
    pub name: String,
    /// Narrower concepts, in insertion order.
    pub children: Vec<TaxonomyNode>,
}

impl TaxonomyNode {
    fn new(name: impl Into<String>) -> TaxonomyNode {
        TaxonomyNode { name: name.into(), children: Vec::new() }
    }
}

/// A single named hierarchy of concepts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Taxonomy {
    /// Taxonomy name, e.g. `"cmop-variables"` or `"cf-standard-names"`.
    pub name: String,
    roots: Vec<TaxonomyNode>,
}

impl Taxonomy {
    /// Creates an empty taxonomy.
    pub fn new(name: impl Into<String>) -> Taxonomy {
        Taxonomy { name: name.into(), roots: Vec::new() }
    }

    /// Inserts a concept path, creating intermediate nodes as needed.
    /// `["physical", "temperature", "water_temperature"]` creates three
    /// nested nodes. Idempotent.
    pub fn insert_path(&mut self, path: &[&str]) -> Result<()> {
        if path.is_empty() {
            return Err(Error::invalid("empty taxonomy path"));
        }
        if path.iter().any(|p| normalize_term(p).is_empty()) {
            return Err(Error::invalid("blank segment in taxonomy path"));
        }
        let mut nodes = &mut self.roots;
        for seg in path {
            let pos = nodes.iter().position(|n| normalize_term(&n.name) == normalize_term(seg));
            let ix = match pos {
                Some(ix) => ix,
                None => {
                    nodes.push(TaxonomyNode::new(*seg));
                    nodes.len() - 1
                }
            };
            nodes = &mut nodes[ix].children;
        }
        Ok(())
    }

    /// Finds the path from a root to the (first) node named `name`,
    /// root first. Case-insensitive.
    pub fn path_of(&self, name: &str) -> Option<Vec<String>> {
        fn walk(
            nodes: &[TaxonomyNode],
            key: &str,
            prefix: &mut Vec<String>,
        ) -> Option<Vec<String>> {
            for n in nodes {
                prefix.push(n.name.clone());
                if normalize_term(&n.name) == key {
                    return Some(prefix.clone());
                }
                if let Some(found) = walk(&n.children, key, prefix) {
                    return Some(found);
                }
                prefix.pop();
            }
            None
        }
        walk(&self.roots, &normalize_term(name), &mut Vec::new())
    }

    /// True when a node named `name` exists anywhere in the hierarchy.
    pub fn contains(&self, name: &str) -> bool {
        self.path_of(name).is_some()
    }

    /// Broader concepts of `name` (its ancestors, nearest first).
    pub fn ancestors(&self, name: &str) -> Vec<String> {
        match self.path_of(name) {
            Some(mut path) => {
                path.pop();
                path.reverse();
                path
            }
            None => Vec::new(),
        }
    }

    /// All concepts strictly below `name` (depth-first order).
    pub fn descendants(&self, name: &str) -> Vec<String> {
        fn find<'a>(nodes: &'a [TaxonomyNode], key: &str) -> Option<&'a TaxonomyNode> {
            for n in nodes {
                if normalize_term(&n.name) == key {
                    return Some(n);
                }
                if let Some(f) = find(&n.children, key) {
                    return Some(f);
                }
            }
            None
        }
        fn collect(node: &TaxonomyNode, out: &mut Vec<String>) {
            for c in &node.children {
                out.push(c.name.clone());
                collect(c, out);
            }
        }
        let mut out = Vec::new();
        if let Some(n) = find(&self.roots, &normalize_term(name)) {
            collect(n, &mut out);
        }
        out
    }

    /// Direct children of `name` ("expose one level", for hierarchical menus).
    pub fn children_of(&self, name: &str) -> Vec<String> {
        fn find<'a>(nodes: &'a [TaxonomyNode], key: &str) -> Option<&'a TaxonomyNode> {
            for n in nodes {
                if normalize_term(&n.name) == key {
                    return Some(n);
                }
                if let Some(f) = find(&n.children, key) {
                    return Some(f);
                }
            }
            None
        }
        find(&self.roots, &normalize_term(name))
            .map(|n| n.children.iter().map(|c| c.name.clone()).collect())
            .unwrap_or_default()
    }

    /// Root concepts.
    pub fn roots(&self) -> impl Iterator<Item = &str> {
        self.roots.iter().map(|n| n.name.as_str())
    }

    /// Root nodes with full structure (for tree-walking consumers such as
    /// hierarchical browse menus).
    pub fn root_nodes(&self) -> &[TaxonomyNode] {
        &self.roots
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        fn count(nodes: &[TaxonomyNode]) -> usize {
            nodes.iter().map(|n| 1 + count(&n.children)).sum()
        }
        count(&self.roots)
    }

    /// Renders an indented outline (for curator review and the examples).
    pub fn render_outline(&self) -> String {
        fn rec(nodes: &[TaxonomyNode], depth: usize, out: &mut String) {
            for n in nodes {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push_str(&n.name);
                out.push('\n');
                rec(&n.children, depth + 1, out);
            }
        }
        let mut out = String::new();
        rec(&self.roots, 0, &mut out);
        out
    }

    /// Lowest common ancestor distance between two concepts: number of edges
    /// from each to their deepest shared ancestor, or `None` when either is
    /// absent or they share no root. Used by search to score hierarchy
    /// closeness.
    pub fn relatedness(&self, a: &str, b: &str) -> Option<usize> {
        let pa = self.path_of(a)?;
        let pb = self.path_of(b)?;
        let shared = pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count();
        if shared == 0 {
            return None;
        }
        Some((pa.len() - shared) + (pb.len() - shared))
    }
}

/// A set of named taxonomies ("link to multiple taxonomies").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomySet {
    taxonomies: BTreeMap<String, Taxonomy>,
}

impl TaxonomySet {
    /// Creates an empty set.
    pub fn new() -> TaxonomySet {
        TaxonomySet::default()
    }

    /// Adds or replaces a taxonomy.
    pub fn insert(&mut self, t: Taxonomy) {
        self.taxonomies.insert(t.name.clone(), t);
    }

    /// Gets a taxonomy by name.
    pub fn get(&self, name: &str) -> Option<&Taxonomy> {
        self.taxonomies.get(name)
    }

    /// Mutable access, creating an empty taxonomy when missing.
    pub fn get_or_create(&mut self, name: &str) -> &mut Taxonomy {
        self.taxonomies.entry(name.to_string()).or_insert_with(|| Taxonomy::new(name))
    }

    /// Iterates taxonomies by name.
    pub fn iter(&self) -> impl Iterator<Item = &Taxonomy> {
        self.taxonomies.values()
    }

    /// Number of taxonomies.
    pub fn len(&self) -> usize {
        self.taxonomies.len()
    }

    /// True when no taxonomies exist.
    pub fn is_empty(&self) -> bool {
        self.taxonomies.is_empty()
    }

    /// The hierarchy path of `term` in the first taxonomy that knows it.
    pub fn path_of(&self, term: &str) -> Option<(String, Vec<String>)> {
        for t in self.taxonomies.values() {
            if let Some(p) = t.path_of(term) {
                return Some((t.name.clone(), p));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Taxonomy {
        let mut t = Taxonomy::new("vars");
        t.insert_path(&["physical", "temperature", "water_temperature"]).unwrap();
        t.insert_path(&["physical", "temperature", "air_temperature"]).unwrap();
        t.insert_path(&["physical", "salinity"]).unwrap();
        t.insert_path(&["biological", "fluorescence", "fluores375"]).unwrap();
        t.insert_path(&["biological", "fluorescence", "fluores400"]).unwrap();
        t
    }

    #[test]
    fn insert_is_idempotent() {
        let mut t = sample();
        let before = t.node_count();
        t.insert_path(&["physical", "temperature", "water_temperature"]).unwrap();
        assert_eq!(t.node_count(), before);
    }

    #[test]
    fn path_and_ancestors() {
        let t = sample();
        assert_eq!(
            t.path_of("water_temperature").unwrap(),
            vec!["physical".to_string(), "temperature".into(), "water_temperature".into()]
        );
        assert_eq!(
            t.ancestors("water_temperature"),
            vec!["temperature".to_string(), "physical".into()]
        );
        assert!(t.ancestors("missing").is_empty());
    }

    #[test]
    fn descendants_collapse_level() {
        let t = sample();
        let d = t.descendants("fluorescence");
        assert_eq!(d, vec!["fluores375".to_string(), "fluores400".into()]);
        let all = t.descendants("physical");
        assert!(all.contains(&"water_temperature".to_string()));
        assert!(all.contains(&"salinity".to_string()));
    }

    #[test]
    fn children_one_level() {
        let t = sample();
        assert_eq!(
            t.children_of("temperature"),
            vec!["water_temperature".to_string(), "air_temperature".into()]
        );
        assert!(t.children_of("fluores375").is_empty());
    }

    #[test]
    fn contains_case_insensitive() {
        let t = sample();
        assert!(t.contains("Fluorescence"));
        assert!(!t.contains("nitrogen"));
    }

    #[test]
    fn relatedness_distances() {
        let t = sample();
        // siblings under temperature: distance 2
        assert_eq!(t.relatedness("water_temperature", "air_temperature"), Some(2));
        // same node: 0
        assert_eq!(t.relatedness("salinity", "salinity"), Some(0));
        // parent-child: 1
        assert_eq!(t.relatedness("temperature", "air_temperature"), Some(1));
        // different roots: None
        assert_eq!(t.relatedness("salinity", "fluores375"), None);
        // unknown: None
        assert_eq!(t.relatedness("salinity", "unknown"), None);
    }

    #[test]
    fn invalid_paths_rejected() {
        let mut t = Taxonomy::new("x");
        assert!(t.insert_path(&[]).is_err());
        assert!(t.insert_path(&["a", " "]).is_err());
    }

    #[test]
    fn outline_renders_indented() {
        let t = sample();
        let o = t.render_outline();
        assert!(o.contains("physical\n  temperature\n    water_temperature"));
    }

    #[test]
    fn set_multiple_taxonomies() {
        let mut s = TaxonomySet::new();
        s.insert(sample());
        let alt = s.get_or_create("instruments");
        alt.insert_path(&["ctd", "salinity"]).unwrap();
        assert_eq!(s.len(), 2);
        // path_of finds the first taxonomy (BTreeMap order: "instruments" < "vars")
        let (tax, path) = s.path_of("salinity").unwrap();
        assert_eq!(tax, "instruments");
        assert_eq!(path, vec!["ctd".to_string(), "salinity".into()]);
        assert!(s.get("vars").unwrap().contains("fluores400"));
    }

    #[test]
    fn serde_round_trip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Taxonomy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
