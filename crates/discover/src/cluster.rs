//! Clustering of variant metadata values — the "discover transformations"
//! stage of the poster's wrangling process.
//!
//! Two families, mirroring Google Refine:
//!
//! * **Key collision** ([`key_collision_clusters`]) — values sharing a
//!   normalized key form a cluster. High precision, recall limited by the
//!   keyer.
//! * **Nearest neighbour** ([`knn_clusters`]) — values within an edit-
//!   distance radius are linked; blocking keeps the candidate set sub-
//!   quadratic. Higher recall, lower precision.

use crate::distance::levenshtein_bounded;
use crate::keys::KeyMethod;
use crate::unionfind::UnionFind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One value to cluster, with its occurrence count (Refine clusters facet
/// choices, which carry counts; counts pick the canonical spelling).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueCount {
    /// The raw value.
    pub value: String,
    /// Number of rows carrying it.
    pub count: u64,
}

impl ValueCount {
    /// Convenience constructor.
    pub fn new(value: impl Into<String>, count: u64) -> ValueCount {
        ValueCount { value: value.into(), count }
    }
}

/// A discovered cluster of variant values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Member values with counts, ordered by descending count then value.
    pub members: Vec<ValueCount>,
    /// The shared key (key collision) or a representative (kNN).
    pub key: String,
    /// Method that produced the cluster.
    pub method: String,
    /// Cohesion in `[0, 1]`: 1 = members are near-identical. For key
    /// collision this is based on pairwise normalized distance; for kNN it is
    /// derived from the link distances.
    pub cohesion: f64,
}

impl Cluster {
    /// Total row count across members.
    pub fn total_count(&self) -> u64 {
        self.members.iter().map(|m| m.count).sum()
    }

    /// The proposed canonical value: the most frequent member (ties broken
    /// lexicographically, matching the deterministic member order).
    pub fn canonical(&self) -> &str {
        &self.members[0].value
    }

    /// The variant values (everything except the canonical pick).
    pub fn variants(&self) -> impl Iterator<Item = &ValueCount> {
        self.members.iter().skip(1)
    }
}

fn sort_members(members: &mut [ValueCount]) {
    members.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
}

fn mean_pairwise_similarity(members: &[ValueCount]) -> f64 {
    if members.len() < 2 {
        return 1.0;
    }
    // Case differences are cosmetic for cohesion purposes: `AIR TEMP` and
    // `air_temp` are near-certain variants, so compare casefolded.
    let folded: Vec<String> = members.iter().map(|m| m.value.to_lowercase()).collect();
    let mut total = 0.0;
    let mut pairs = 0u64;
    for i in 0..folded.len() {
        for j in (i + 1)..folded.len() {
            total += 1.0 - crate::distance::normalized_distance(&folded[i], &folded[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Groups values whose key (under `method`) collides. Only groups with two
/// or more distinct values become clusters. Output is deterministic: clusters
/// sorted by key.
///
/// ```
/// use metamess_discover::{key_collision_clusters, KeyMethod, ValueCount};
///
/// let values = vec![
///     ValueCount::new("air_temp", 40),
///     ValueCount::new("airTemp", 3),
///     ValueCount::new("salinity", 20),
/// ];
/// let clusters = key_collision_clusters(&values, KeyMethod::IdentifierFingerprint);
/// assert_eq!(clusters.len(), 1);
/// assert_eq!(clusters[0].canonical(), "air_temp"); // the frequent spelling wins
/// ```
pub fn key_collision_clusters(values: &[ValueCount], method: KeyMethod) -> Vec<Cluster> {
    let mut by_key: BTreeMap<String, Vec<ValueCount>> = BTreeMap::new();
    for v in values {
        let key = method.key(&v.value);
        if key.is_empty() {
            continue; // unkeyable values (pure punctuation) never cluster
        }
        by_key.entry(key).or_default().push(v.clone());
    }
    let mut out = Vec::new();
    for (key, mut members) in by_key {
        // merge duplicates of the same literal value
        members.sort_by(|a, b| a.value.cmp(&b.value));
        members.dedup_by(|a, b| {
            if a.value == b.value {
                b.count += a.count;
                true
            } else {
                false
            }
        });
        if members.len() < 2 {
            continue;
        }
        sort_members(&mut members);
        let cohesion = mean_pairwise_similarity(&members);
        out.push(Cluster { members, key, method: method.name(), cohesion });
    }
    out
}

/// Configuration for nearest-neighbour clustering.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnnConfig {
    /// Maximum edit distance to link two values.
    pub radius: usize,
    /// Block values by this keyer before pairing; `None` compares every pair
    /// (quadratic — only for small sets or the blocking ablation).
    pub blocking: Option<KeyMethod>,
    /// Ignore values shorter than this (tiny strings link spuriously).
    pub min_length: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig { radius: 2, blocking: Some(KeyMethod::NgramFingerprint { n: 1 }), min_length: 4 }
    }
}

/// Links values within `config.radius` edit distance into clusters.
///
/// With blocking, only values sharing a block key are compared — Refine's
/// "blocking chars" idea; the n=1 n-gram key blocks on the character set,
/// which edit-distance-close strings nearly always share.
pub fn knn_clusters(values: &[ValueCount], config: &KnnConfig) -> Vec<Cluster> {
    // Deduplicate literal values first.
    let mut uniq: BTreeMap<String, u64> = BTreeMap::new();
    for v in values {
        *uniq.entry(v.value.clone()).or_insert(0) += v.count;
    }
    let items: Vec<ValueCount> =
        uniq.into_iter().map(|(value, count)| ValueCount { value, count }).collect();
    let n = items.len();
    let mut uf = UnionFind::new(n);
    let mut link_distances: Vec<Vec<usize>> = vec![Vec::new(); n];

    let compare = |uf: &mut UnionFind, dists: &mut Vec<Vec<usize>>, i: usize, j: usize| {
        let a = &items[i].value;
        let b = &items[j].value;
        if a.chars().count() < config.min_length || b.chars().count() < config.min_length {
            return;
        }
        if let Some(d) = levenshtein_bounded(a, b, config.radius) {
            if d > 0 {
                uf.union(i, j);
                dists[i].push(d);
                dists[j].push(d);
            }
        }
    };

    match &config.blocking {
        Some(method) => {
            let mut blocks: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            for (ix, it) in items.iter().enumerate() {
                blocks.entry(method.key(&it.value)).or_default().push(ix);
            }
            for block in blocks.values() {
                for (a, &i) in block.iter().enumerate() {
                    for &j in &block[a + 1..] {
                        compare(&mut uf, &mut link_distances, i, j);
                    }
                }
            }
        }
        None => {
            for i in 0..n {
                for j in (i + 1)..n {
                    compare(&mut uf, &mut link_distances, i, j);
                }
            }
        }
    }

    let mut out = Vec::new();
    for group in uf.groups() {
        if group.len() < 2 {
            continue;
        }
        let mut members: Vec<ValueCount> = group.iter().map(|&ix| items[ix].clone()).collect();
        sort_members(&mut members);
        // Cohesion from link distances: 1 - mean(d)/radius, clamped.
        let ds: Vec<usize> =
            group.iter().flat_map(|&ix| link_distances[ix].iter().copied()).collect();
        let cohesion = if ds.is_empty() {
            0.0
        } else {
            let mean = ds.iter().sum::<usize>() as f64 / ds.len() as f64;
            (1.0 - mean / (config.radius.max(1) as f64 + 1.0)).clamp(0.0, 1.0)
        };
        let key = members[0].value.clone();
        out.push(Cluster { members, key, method: format!("knn-lev{}", config.radius), cohesion });
    }
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(pairs: &[(&str, u64)]) -> Vec<ValueCount> {
        pairs.iter().map(|(v, c)| ValueCount::new(*v, *c)).collect()
    }

    #[test]
    fn key_collision_basic() {
        let values = vc(&[("air_temp", 10), ("airTemp", 3), ("AIR TEMP", 1), ("salinity", 20)]);
        let clusters = key_collision_clusters(&values, KeyMethod::IdentifierFingerprint);
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.members.len(), 3);
        assert_eq!(c.canonical(), "air_temp"); // highest count
        assert_eq!(c.total_count(), 14);
        assert!(c.cohesion > 0.3);
    }

    #[test]
    fn key_collision_merges_duplicate_literals() {
        let values = vc(&[("x_y", 1), ("x_y", 2), ("xY", 1)]);
        let clusters = key_collision_clusters(&values, KeyMethod::IdentifierFingerprint);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members[0], ValueCount::new("x_y", 3));
    }

    #[test]
    fn key_collision_singletons_are_not_clusters() {
        let values = vc(&[("alpha", 1), ("beta", 1)]);
        assert!(key_collision_clusters(&values, KeyMethod::Fingerprint).is_empty());
    }

    #[test]
    fn key_collision_deterministic_order() {
        let values = vc(&[("b a", 1), ("a b", 1), ("z w", 1), ("w z", 1)]);
        let c1 = key_collision_clusters(&values, KeyMethod::Fingerprint);
        let c2 = key_collision_clusters(&values, KeyMethod::Fingerprint);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 2);
        assert!(c1[0].key < c1[1].key);
    }

    #[test]
    fn canonical_tie_broken_lexicographically() {
        let values = vc(&[("a b", 5), ("b a", 5)]);
        let clusters = key_collision_clusters(&values, KeyMethod::Fingerprint);
        assert_eq!(clusters[0].canonical(), "a b");
    }

    #[test]
    fn knn_links_misspellings() {
        let values = vc(&[
            ("air_temperature", 50),
            ("air_temperatrue", 2), // transposition (distance 2 in Levenshtein)
            ("air_temperture", 1),  // dropped letter
            ("salinity", 30),
        ]);
        let clusters = knn_clusters(&values, &KnnConfig::default());
        assert_eq!(clusters.len(), 1);
        let c = &clusters[0];
        assert_eq!(c.canonical(), "air_temperature");
        assert_eq!(c.members.len(), 3);
        assert_eq!(c.method, "knn-lev2");
    }

    #[test]
    fn knn_radius_controls_linking() {
        let values = vc(&[("abcdef", 1), ("abcxyz", 1)]); // distance 3
        let tight = knn_clusters(&values, &KnnConfig { radius: 2, blocking: None, min_length: 4 });
        assert!(tight.is_empty());
        let loose = knn_clusters(&values, &KnnConfig { radius: 3, blocking: None, min_length: 4 });
        assert_eq!(loose.len(), 1);
    }

    #[test]
    fn knn_min_length_guards_short_strings() {
        let values = vc(&[("do", 5), ("dox", 1), ("ph", 9)]);
        let clusters = knn_clusters(&values, &KnnConfig::default());
        assert!(clusters.is_empty());
    }

    #[test]
    fn knn_blocking_equivalent_on_typical_data() {
        // Blocking on the character-set key keeps distance<=1 doubles together.
        let values = vc(&[
            ("water_temperature", 9),
            ("water_temperatuer", 1), // transposition: same char set
            ("turbidity", 5),
            ("turbiditty", 1), // doubled letter: same char set
        ]);
        let blocked = knn_clusters(&values, &KnnConfig::default());
        let unblocked =
            knn_clusters(&values, &KnnConfig { blocking: None, ..KnnConfig::default() });
        assert_eq!(blocked.len(), 2);
        // Same clusters either way for this data.
        assert_eq!(blocked, unblocked);
    }

    #[test]
    fn knn_transitive_chains_merge() {
        let values = vc(&[("aaaa", 1), ("aaab", 1), ("aabb", 1)]);
        let clusters =
            knn_clusters(&values, &KnnConfig { radius: 1, blocking: None, min_length: 4 });
        // aaaa-aaab at 1, aaab-aabb at 1 → one cluster of three
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].members.len(), 3);
    }

    #[test]
    fn knn_identical_values_do_not_self_cluster() {
        let values = vc(&[("same", 2), ("same", 3)]);
        let clusters =
            knn_clusters(&values, &KnnConfig { radius: 2, blocking: None, min_length: 4 });
        assert!(clusters.is_empty());
    }

    #[test]
    fn cohesion_higher_for_tighter_clusters() {
        let tight = vc(&[("abcdefgh", 1), ("abcdefgx", 1)]);
        let loose = vc(&[("abcdefgh", 1), ("abxxefgh", 1)]);
        let cfg = KnnConfig { radius: 3, blocking: None, min_length: 4 };
        let ct = knn_clusters(&tight, &cfg);
        let cl = knn_clusters(&loose, &cfg);
        assert!(ct[0].cohesion > cl[0].cohesion);
    }
}
