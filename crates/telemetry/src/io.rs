//! Cross-process snapshot persistence.
//!
//! Wrangle and search runs are short-lived processes, so their registries
//! vanish on exit. To make `metamess stats` (and a later `metamess serve`'s
//! `/metrics`) agree on history, processes persist a merged
//! [`MetricsSnapshot`] as `<store>/state/telemetry.json` using the
//! snapshot's own JSON exposition format: counters and histograms
//! accumulate across runs, gauges keep the latest value. Histogram bucket
//! bounds are pure functions of the bucket index, so merging across
//! processes is lossless.
//!
//! [`parse_json`] is the exact inverse of
//! [`MetricsSnapshot::render_json`]; keeping both halves in this crate is
//! what guarantees every consumer (CLI `stats`, the HTTP `/metrics`
//! endpoint, benches) reads and emits identical expositions for the same
//! snapshot.
//!
//! Persistence is best-effort: a missing or undecodable file reads as
//! empty, and stats never block wrangling or search.

use crate::metric::HistogramSnapshot;
use crate::registry::MetricsSnapshot;
use std::path::{Path, PathBuf};

/// Where a store keeps its persisted telemetry snapshot.
pub fn telemetry_path(store_dir: &Path) -> PathBuf {
    store_dir.join("state").join("telemetry.json")
}

/// Reads a snapshot previously written with
/// [`MetricsSnapshot::render_json`]. Missing or undecodable content reads
/// as `None`.
pub fn load_snapshot(path: &Path) -> Option<MetricsSnapshot> {
    let text = std::fs::read_to_string(path).ok()?;
    parse_json(&text)
}

/// Parses the JSON exposition produced by
/// [`MetricsSnapshot::render_json`]. Returns `None` on any structural
/// mismatch — a truncated or foreign document must not be mistaken for an
/// empty snapshot.
pub fn parse_json(text: &str) -> Option<MetricsSnapshot> {
    let v: serde_json::Value = serde_json::from_str(text).ok()?;
    let mut out = MetricsSnapshot::default();
    for (k, n) in v.get("counters")?.as_object()? {
        out.counters.insert(k.clone(), n.as_u64()?);
    }
    for (k, n) in v.get("gauges")?.as_object()? {
        out.gauges.insert(k.clone(), n.as_i64()?);
    }
    for (k, h) in v.get("histograms")?.as_object()? {
        let mut snap = HistogramSnapshot {
            count: h.get("count")?.as_u64()?,
            sum: h.get("sum")?.as_u64()?,
            min: h.get("min")?.as_u64()?,
            max: h.get("max")?.as_u64()?,
            buckets: Vec::new(),
            exemplar: None,
        };
        for b in h.get("buckets")?.as_array()? {
            snap.buckets.push((b.get(0)?.as_u64()?, b.get(1)?.as_u64()?));
        }
        // "exemplar" is optional (older files omit it), but when present it
        // must be well-formed — same strictness as the rest of the schema.
        if let Some(ex) = h.get("exemplar") {
            let value = ex.get("value")?.as_u64()?;
            let id = crate::trace::parse_trace_id(ex.get("trace_id")?.as_str()?)?;
            snap.exemplar = Some((value, id));
        }
        out.histograms.insert(k.clone(), snap);
    }
    Some(out)
}

/// Folds the live global registry into the snapshot persisted at `path`
/// and writes the merge back. Returns the merged snapshot. A no-op when
/// nothing was recorded (so disabled-telemetry runs leave no file behind).
pub fn persist_merged(path: &Path) -> std::io::Result<MetricsSnapshot> {
    let mut snap = load_snapshot(path).unwrap_or_default();
    let live = crate::global().snapshot();
    snap.merge(&live);
    if live.is_empty() || snap.is_empty() {
        return Ok(snap);
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, snap.render_json())?;
    Ok(snap)
}

/// Deletes the persisted snapshot and zeroes the live registry.
pub fn reset(path: &Path) -> std::io::Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    crate::global().reset();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn tmp(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("metamess-tio-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d.join("state").join("telemetry.json")
    }

    fn sample() -> MetricsSnapshot {
        let r = MetricsRegistry::new(true);
        r.counter("metamess_tio_total").add(4);
        r.gauge("metamess_tio_gauge").set(-3);
        let h = r.histogram("metamess_tio_micros");
        h.record(7);
        h.record(9000);
        r.snapshot()
    }

    #[test]
    fn json_round_trips_in_memory() {
        let snap = sample();
        assert_eq!(parse_json(&snap.render_json()).unwrap(), snap);
    }

    #[test]
    fn snapshot_round_trips_through_file() {
        let snap = sample();
        let path = tmp("rt");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, snap.render_json()).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), snap);
    }

    #[test]
    fn prometheus_exposition_is_identical_across_a_round_trip() {
        // The contract behind `stats --prometheus` vs `/metrics`: a
        // snapshot persisted to disk and read back must render the same
        // exposition byte-for-byte.
        let snap = sample();
        let reread = parse_json(&snap.render_json()).unwrap();
        assert_eq!(reread.render_prometheus(), snap.render_prometheus());
    }

    #[test]
    fn shard_metrics_round_trip_identically() {
        // `metamess stats` and the server's `/metrics` both render a
        // persisted-and-merged snapshot; the shard scatter-gather metrics
        // must survive that loop like every other family — same JSON, same
        // Prometheus text.
        let r = MetricsRegistry::new(true);
        r.counter("metamess_search_shards_visited_total").add(6);
        r.counter("metamess_search_shards_pruned_total").add(2);
        let probe = r.histogram("metamess_search_shard_probe_micros");
        probe.record(12);
        probe.record(340);
        r.histogram("metamess_search_shard_score_micros").record(77);
        let snap = r.snapshot();
        let reread = parse_json(&snap.render_json()).unwrap();
        assert_eq!(reread, snap);
        assert_eq!(reread.render_prometheus(), snap.render_prometheus());
        assert_eq!(reread.counters["metamess_search_shards_visited_total"], 6);
        assert_eq!(reread.counters["metamess_search_shards_pruned_total"], 2);
        assert_eq!(reread.histograms["metamess_search_shard_probe_micros"].count, 2);
    }

    #[test]
    fn missing_or_garbage_reads_as_none() {
        let path = tmp("miss");
        assert!(load_snapshot(&path).is_none());
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not json").unwrap();
        assert!(load_snapshot(&path).is_none());
        std::fs::write(&path, b"{\"counters\":{}}").unwrap();
        assert!(load_snapshot(&path).is_none(), "truncated schema is rejected");
    }

    #[test]
    fn reset_removes_file() {
        let path = tmp("reset");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"{}").unwrap();
        reset(&path).unwrap();
        assert!(!path.exists());
        reset(&path).unwrap(); // idempotent
    }
}
