//! Catalog shards: partitioning, per-shard indexes, and pruning bounds.
//!
//! A [`ShardEngine`] is one slice of the catalog with its own R-tree,
//! interval index, and term postings, plus *pruning bounds* — the union of
//! its members' bounding boxes and time intervals. The coordinator (see
//! `engine.rs`) probes every shard, but a shard whose bound cannot
//! intersect the query window skips its index walk entirely, and a shard
//! that ends up with no candidates is never scored at all.
//!
//! # Partitioner contract
//!
//! A partitioner maps every dataset to exactly one shard, deterministically
//! from the catalog snapshot (catalog iteration order is `DatasetId`
//! order). The assignment only affects *where* a dataset lives, never
//! *whether* it is considered: the coordinator unions per-shard candidate
//! sets, so results are bit-identical for every partitioner and shard
//! count. Spatial/temporal partitioners exist purely to make the pruning
//! bounds tight — co-locating datasets that are close in space (or time)
//! means selective queries rule out whole shards.
//!
//! # Determinism of the nearest-neighbour merge
//!
//! `RTree::nearest` emits items in `(distance, payload index)` order, and
//! shard members keep ascending global-index order, so each shard's
//! nearest list is its `generous`-smallest under the global total order
//! `(distance, global index)`. Merging the per-shard lists under that same
//! order and truncating therefore selects exactly the set the unsharded
//! engine's single `nearest` call would.

use crate::engine::SearchHit;
use crate::interval::IntervalIndex;
use crate::plan::QueryPlan;
use crate::query::{Query, SpatialTerm};
use crate::rtree::RTree;
use crate::score::{intern, score_dataset_fast, score_dataset_prepared, PreparedTerm, VarKey};
use metamess_core::feature::DatasetFeature;
use metamess_core::geo::GeoBBox;
use metamess_core::text::normalize_term;
use metamess_core::time::TimeInterval;
use metamess_vocab::Vocabulary;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;

/// Hard ceiling on the shard count. Beyond a few hundred shards the
/// per-shard fixed probe cost dominates any pruning win, and an absurd
/// `--shards` must not allocate an absurd number of index structures.
pub const MAX_SHARDS: usize = 256;

/// Clamps a requested shard count into the supported `1..=MAX_SHARDS`
/// range (0 means "unsharded", i.e. one shard).
pub fn clamp_shards(requested: usize) -> usize {
    requested.clamp(1, MAX_SHARDS)
}

/// How datasets are assigned to shards at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioner {
    /// Mixed `DatasetId` modulo shard count: uniform load, loose bounds.
    Hash,
    /// Contiguous ranges of datasets ordered by bbox centre (datasets
    /// without a bbox fill the trailing shards): tight spatial bounds.
    Spatial,
    /// Contiguous ranges ordered by interval start (timeless datasets
    /// trail): tight temporal bounds.
    Temporal,
}

impl Partitioner {
    /// Parses the CLI spelling (`hash` | `spatial` | `temporal`).
    pub fn parse(text: &str) -> Option<Partitioner> {
        match text.trim().to_ascii_lowercase().as_str() {
            "hash" => Some(Partitioner::Hash),
            "spatial" => Some(Partitioner::Spatial),
            "temporal" => Some(Partitioner::Temporal),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Partitioner::Hash => "hash",
            Partitioner::Spatial => "spatial",
            Partitioner::Temporal => "temporal",
        }
    }

    /// Maps each dataset (in catalog order) to a shard in `0..count`.
    pub(crate) fn assign(&self, datasets: &[DatasetFeature], count: usize) -> Vec<usize> {
        match self {
            Partitioner::Hash => {
                datasets.iter().map(|d| (mix64(d.id.0) % count as u64) as usize).collect()
            }
            Partitioner::Spatial => contiguous_by_key(datasets.len(), count, |ix| {
                datasets[ix].bbox.as_ref().map(|b| {
                    let c = b.center();
                    (c.lon, c.lat)
                })
            }),
            Partitioner::Temporal => contiguous_by_key(datasets.len(), count, |ix| {
                datasets[ix].time.as_ref().map(|t| (t.start.0 as f64, t.end.0 as f64))
            }),
        }
    }
}

/// SplitMix64 finalizer: `DatasetId`s are FNV hashes of paths, whose low
/// bits correlate; mixing keeps the modulo assignment uniform.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sorts `0..n` by an optional key (`None` sorts last, ties broken by
/// index for determinism) and cuts the order into `count` contiguous
/// chunks.
fn contiguous_by_key<K: PartialOrd>(
    n: usize,
    count: usize,
    key: impl Fn(usize) -> Option<K>,
) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| match (key(a), key(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal).then_with(|| a.cmp(&b)),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => a.cmp(&b),
    });
    let chunk = n.div_ceil(count).max(1);
    let mut out = vec![0usize; n];
    for (pos, &ix) in order.iter().enumerate() {
        out[ix] = (pos / chunk).min(count - 1);
    }
    out
}

/// How a sharded engine is laid out: shard count plus partitioner. The
/// count is clamped to `1..=MAX_SHARDS` at construction, so a spec is
/// always valid by the time it reaches a builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    count: usize,
    partitioner: Partitioner,
}

impl ShardSpec {
    /// A spec with a clamped shard count.
    pub fn new(count: usize, partitioner: Partitioner) -> ShardSpec {
        ShardSpec { count: clamp_shards(count), partitioner }
    }

    /// The unsharded layout: one hash shard.
    pub fn single() -> ShardSpec {
        ShardSpec::new(1, Partitioner::Hash)
    }

    /// Shards in the layout (always `1..=MAX_SHARDS`).
    pub fn count(&self) -> usize {
        self.count
    }

    /// The partitioner assigning datasets to shards.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }
}

impl Default for ShardSpec {
    fn default() -> ShardSpec {
        ShardSpec::single()
    }
}

/// What one shard's probe produced.
#[derive(Debug, Default)]
pub(crate) struct ShardProbe {
    /// Local indices selected by the window/term indexes. Kept as a flat
    /// vector (one allocation, not a node per candidate); [`finish`]
    /// restores the sorted-deduplicated set semantics.
    ///
    /// [`finish`]: ShardProbe::finish
    pub certain: Vec<usize>,
    /// Nearest-neighbour candidates as `(distance, global ix, local ix)`,
    /// merged globally by the coordinator before any is admitted.
    pub near: Vec<(f64, usize, usize)>,
    /// Index walks skipped because the shard bound excluded the query.
    pub bound_skips: usize,
}

impl ShardProbe {
    /// Sorts and deduplicates the candidate list, restoring exactly the
    /// ascending unique order the old `BTreeSet` representation kept.
    /// Idempotent; called after every batch of insertions.
    pub(crate) fn finish(&mut self) {
        self.certain.sort_unstable();
        self.certain.dedup();
    }
}

/// One slice of the catalog with its own indexes and pruning bounds.
pub struct ShardEngine {
    datasets: Vec<DatasetFeature>,
    /// Precomputed normalized name keys per dataset (searchable variables
    /// in iteration order), so candidate scoring never normalizes or
    /// resolves a spelling. Interned: repeated names share one `Arc<str>`.
    var_keys: Vec<Vec<VarKey>>,
    /// Local index → position in the full catalog order. Strictly
    /// increasing (members are added in catalog order), which the
    /// nearest-merge determinism argument relies on.
    global_ix: Vec<usize>,
    rtree: RTree,
    intervals: IntervalIndex,
    terms: BTreeMap<Arc<str>, Vec<usize>>,
    /// Union of member bboxes (None when no member has one).
    bbox_bound: Option<GeoBBox>,
    /// Union of member time intervals (None when no member has one).
    time_bound: Option<TimeInterval>,
}

impl ShardEngine {
    /// Builds one shard over `members` (`(global index, feature)` pairs in
    /// ascending global order).
    pub(crate) fn build(members: Vec<(usize, DatasetFeature)>, vocab: &Vocabulary) -> ShardEngine {
        let mut datasets = Vec::with_capacity(members.len());
        let mut var_keys = Vec::with_capacity(members.len());
        let mut global_ix = Vec::with_capacity(members.len());
        let mut spatial_entries = Vec::new();
        let mut time_entries = Vec::new();
        let mut terms: BTreeMap<Arc<str>, Vec<usize>> = BTreeMap::new();
        let mut interner: HashSet<Arc<str>> = HashSet::new();
        let mut bbox_bound: Option<GeoBBox> = None;
        let mut time_bound: Option<TimeInterval> = None;
        for (gix, d) in members {
            let ix = datasets.len();
            global_ix.push(gix);
            if let Some(b) = &d.bbox {
                spatial_entries.push((*b, ix));
                bbox_bound = Some(match bbox_bound {
                    Some(acc) => acc.union(b),
                    None => *b,
                });
            }
            if let Some(t) = &d.time {
                time_entries.push((*t, ix));
                time_bound = Some(match time_bound {
                    Some(acc) => TimeInterval::new(acc.start.min(t.start), acc.end.max(t.end)),
                    None => *t,
                });
            }
            for v in d.searchable_variables() {
                // index under the canonical concept and every hierarchy
                // ancestor (shared helper with query planning), plus the
                // raw and search spellings
                let mut keys: BTreeSet<String> = vocab.canonical_keys(v.search_name());
                keys.insert(normalize_term(&v.name));
                keys.insert(normalize_term(v.search_name()));
                for k in keys {
                    let posting = terms.entry(intern(&mut interner, k)).or_default();
                    if posting.last() != Some(&ix) {
                        posting.push(ix);
                    }
                }
            }
            var_keys.push(
                d.searchable_variables().map(|v| VarKey::build(v, vocab, &mut interner)).collect(),
            );
            datasets.push(d);
        }
        ShardEngine {
            rtree: RTree::build(spatial_entries),
            intervals: IntervalIndex::build(time_entries),
            terms,
            bbox_bound,
            time_bound,
            datasets,
            var_keys,
            global_ix,
        }
    }

    /// Datasets in this shard.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// True when the shard holds no datasets.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// The dataset at a local index.
    pub fn dataset(&self, local_ix: usize) -> &DatasetFeature {
        &self.datasets[local_ix]
    }

    /// Union of member bounding boxes (the spatial pruning bound).
    pub fn bbox_bound(&self) -> Option<&GeoBBox> {
        self.bbox_bound.as_ref()
    }

    /// Union of member time intervals (the temporal pruning bound).
    pub fn time_bound(&self) -> Option<&TimeInterval> {
        self.time_bound.as_ref()
    }

    /// Candidate generation against this shard's indexes. Window walks are
    /// skipped (and counted) when the shard bound excludes the query;
    /// nearest-neighbour lists are always collected — distance has no
    /// bound — and merged globally by the coordinator.
    pub(crate) fn probe(&self, query: &Query, plan: &QueryPlan, generous: usize) -> ShardProbe {
        let mut p = ShardProbe::default();
        if let Some(spatial) = &query.spatial {
            match spatial {
                SpatialTerm::Near { point, radius_km } => {
                    self.collect_near(point, generous, &mut p);
                    let window = near_window(point, *radius_km);
                    if self.bound_admits_bbox(&window) {
                        p.certain.extend(self.rtree.intersecting(&window));
                    } else if !self.rtree.is_empty() {
                        p.bound_skips += 1;
                    }
                }
                SpatialTerm::Region(region) => {
                    if self.bound_admits_bbox(region) {
                        p.certain.extend(self.rtree.intersecting(region));
                    } else if !self.rtree.is_empty() {
                        p.bound_skips += 1;
                    }
                    self.collect_near(&region.center(), generous, &mut p);
                }
            }
        }
        if let Some(window) = &query.time {
            let expanded = expanded_time(window);
            if self.time_bound.as_ref().is_some_and(|b| b.overlaps(&expanded)) {
                p.certain.extend(self.intervals.overlapping(&expanded));
            } else if !self.intervals.is_empty() {
                p.bound_skips += 1;
            }
        }
        for keys in &plan.term_keys {
            for k in keys {
                if let Some(postings) = self.terms.get(k.as_str()) {
                    p.certain.extend(postings.iter().copied());
                }
            }
        }
        p.finish();
        p
    }

    fn bound_admits_bbox(&self, window: &GeoBBox) -> bool {
        self.bbox_bound.as_ref().is_some_and(|b| b.intersects(window))
    }

    fn collect_near(
        &self,
        point: &metamess_core::geo::GeoPoint,
        generous: usize,
        p: &mut ShardProbe,
    ) {
        for (ix, dist) in self.rtree.nearest(point, generous) {
            p.near.push((dist, self.global_ix[ix], ix));
        }
    }

    /// Scores one local candidate allocation-free, returning only the
    /// combined total — bit-identical to `score_hit(...).score` (the
    /// engine asserts so in debug builds when materializing the top k).
    pub(crate) fn score_fast(
        &self,
        query: &Query,
        prepared: &[PreparedTerm],
        local_ix: usize,
    ) -> f64 {
        score_dataset_fast(query, prepared, &self.datasets[local_ix], &self.var_keys[local_ix])
    }

    /// Scores one local candidate exactly.
    pub(crate) fn score_hit(
        &self,
        query: &Query,
        prepared: &[PreparedTerm],
        vocab: &Vocabulary,
        local_ix: usize,
    ) -> SearchHit {
        let d = &self.datasets[local_ix];
        let breakdown = score_dataset_prepared(query, prepared, d, vocab);
        SearchHit {
            id: d.id,
            path: d.path.clone(),
            title: d.title.clone(),
            score: breakdown.total,
            breakdown,
        }
    }
}

/// The "everything within 4 radii" window a `near` clause probes — shared
/// by every shard so the sharded and unsharded candidate sets agree by
/// construction.
pub(crate) fn near_window(point: &metamess_core::geo::GeoPoint, radius_km: f64) -> GeoBBox {
    let dlat = 4.0 * radius_km / 111.0;
    let dlon = 4.0 * radius_km / (111.0 * point.lat.to_radians().cos().max(0.1));
    GeoBBox {
        min_lat: (point.lat - dlat).max(-90.0),
        max_lat: (point.lat + dlat).min(90.0),
        min_lon: (point.lon - dlon).max(-180.0),
        max_lon: (point.lon + dlon).min(180.0),
    }
}

/// The padded window a time clause probes (similarity ranking wants
/// near-misses as candidates too).
pub(crate) fn expanded_time(window: &TimeInterval) -> TimeInterval {
    let pad = (window.duration_secs() as i64).max(86_400);
    TimeInterval::new(window.start.plus_seconds(-pad), window.end.plus_seconds(pad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_core::geo::GeoPoint;
    use metamess_core::time::Timestamp;

    fn feature(path: &str, lat: f64, lon: f64, month: u32) -> DatasetFeature {
        let mut d = DatasetFeature::new(path);
        d.bbox = Some(GeoBBox::point(GeoPoint::new(lat, lon).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2012, month, 1).unwrap(),
            Timestamp::from_ymd(2012, month, 28).unwrap(),
        ));
        d
    }

    #[test]
    fn clamp_shards_bounds_every_input() {
        assert_eq!(clamp_shards(0), 1);
        assert_eq!(clamp_shards(1), 1);
        assert_eq!(clamp_shards(97), 97);
        assert_eq!(clamp_shards(MAX_SHARDS), MAX_SHARDS);
        assert_eq!(clamp_shards(MAX_SHARDS + 1), MAX_SHARDS);
        assert_eq!(clamp_shards(usize::MAX), MAX_SHARDS);
    }

    #[test]
    fn spec_clamps_on_construction() {
        assert_eq!(ShardSpec::new(0, Partitioner::Hash).count(), 1);
        assert_eq!(ShardSpec::new(4096, Partitioner::Spatial).count(), MAX_SHARDS);
        assert_eq!(ShardSpec::default(), ShardSpec::single());
        assert_eq!(ShardSpec::single().count(), 1);
    }

    #[test]
    fn partitioner_parses_cli_spellings() {
        assert_eq!(Partitioner::parse("hash"), Some(Partitioner::Hash));
        assert_eq!(Partitioner::parse(" SPATIAL "), Some(Partitioner::Spatial));
        assert_eq!(Partitioner::parse("temporal"), Some(Partitioner::Temporal));
        assert_eq!(Partitioner::parse("geo"), None);
        for p in [Partitioner::Hash, Partitioner::Spatial, Partitioner::Temporal] {
            assert_eq!(Partitioner::parse(p.as_str()), Some(p));
        }
    }

    #[test]
    fn every_partitioner_assigns_every_dataset_exactly_once() {
        let datasets: Vec<DatasetFeature> = (0..23)
            .map(|i| feature(&format!("d{i}.csv"), 45.0 + i as f64 * 0.1, -124.0, 1 + i % 12))
            .collect();
        for p in [Partitioner::Hash, Partitioner::Spatial, Partitioner::Temporal] {
            let assignment = p.assign(&datasets, 4);
            assert_eq!(assignment.len(), datasets.len());
            assert!(assignment.iter().all(|&s| s < 4), "{p:?}");
            // deterministic
            assert_eq!(assignment, p.assign(&datasets, 4));
        }
    }

    #[test]
    fn spatial_partitioner_places_unlocated_datasets_last() {
        let mut datasets: Vec<DatasetFeature> =
            (0..8).map(|i| feature(&format!("d{i}.csv"), 45.0 + i as f64, -124.0, 1)).collect();
        let mut bare = DatasetFeature::new("bare.csv");
        bare.time = None;
        datasets.push(bare);
        let assignment = Partitioner::Spatial.assign(&datasets, 3);
        assert_eq!(assignment[8], 2, "dataset without bbox must land in the last shard");
        let temporal = Partitioner::Temporal.assign(&datasets, 3);
        assert_eq!(temporal[8], 2, "dataset without time must land in the last shard");
    }

    #[test]
    fn shard_bounds_cover_all_members() {
        let vocab = Vocabulary::observatory_default();
        let members: Vec<(usize, DatasetFeature)> = (0..6)
            .map(|i| {
                (i, feature(&format!("d{i}.csv"), 44.0 + i as f64, -124.0 + i as f64, 1 + i as u32))
            })
            .collect();
        let features: Vec<DatasetFeature> = members.iter().map(|(_, d)| d.clone()).collect();
        let shard = ShardEngine::build(members, &vocab);
        let bbox = shard.bbox_bound().expect("members have bboxes");
        let time = shard.time_bound().expect("members have intervals");
        for d in &features {
            let b = d.bbox.as_ref().unwrap();
            assert!(bbox.intersects(b));
            assert!(time.overlaps(d.time.as_ref().unwrap()));
            assert!(bbox.min_lat <= b.min_lat && bbox.max_lat >= b.max_lat);
        }
        assert_eq!(shard.len(), 6);
    }

    #[test]
    fn empty_shard_probe_is_empty() {
        let vocab = Vocabulary::observatory_default();
        let shard = ShardEngine::build(Vec::new(), &vocab);
        assert!(shard.is_empty());
        let q =
            Query::parse("near 45.0,-124.0 from 2012-01-01 to 2012-02-01 with salinity").unwrap();
        let plan = QueryPlan::prepare(&q, &vocab);
        let p = shard.probe(&q, &plan, 50);
        assert!(p.certain.is_empty());
        assert!(p.near.is_empty());
        assert_eq!(p.bound_skips, 0, "an empty shard has nothing to prune");
    }

    #[test]
    fn bound_excludes_far_query_window() {
        let vocab = Vocabulary::observatory_default();
        let members: Vec<(usize, DatasetFeature)> =
            (0..4).map(|i| (i, feature(&format!("d{i}.csv"), 45.0, -124.0, 6))).collect();
        let shard = ShardEngine::build(members, &vocab);
        // Region query on the other side of the globe: the bound excludes
        // it, so the intersect walk is skipped — but nearest still runs.
        let q = Query::parse("in 50.0,-10.0..51.0,-9.0").unwrap();
        let plan = QueryPlan::prepare(&q, &vocab);
        let p = shard.probe(&q, &plan, 50);
        assert_eq!(p.bound_skips, 1);
        assert_eq!(p.near.len(), 4, "nearest candidates are distance-based, never pruned");
    }
}
