//! Lexer for the GREL expression subset.
//!
//! GREL (Google Refine Expression Language) expressions appear inside
//! exported operation JSON, e.g. `value.trim().toLowercase()` or
//! `if(isBlank(value), "unknown", value)`. This lexer produces the token
//! stream the parser consumes.

use metamess_core::error::{Error, Result};

/// A GREL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`value`, `trim`, `true`, ...).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// String literal (single- or double-quoted).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` or `and`
    And,
    /// `||` or `or`
    Or,
    /// `!` or `not`
    Not,
}

/// Lexes a GREL expression into tokens.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Eq);
                    i += 2;
                } else {
                    return Err(Error::parse("grel", "single '=' (use '==')"));
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    tokens.push(Token::And);
                    i += 2;
                } else {
                    return Err(Error::parse("grel", "single '&' (use '&&')"));
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    tokens.push(Token::Or);
                    i += 2;
                } else {
                    return Err(Error::parse("grel", "single '|' (use '||')"));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let d = bytes[i];
                    if d == '\\' {
                        match bytes.get(i + 1) {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('\\') => s.push('\\'),
                            Some(&q) if q == quote => s.push(q),
                            Some(&other) => {
                                s.push('\\');
                                s.push(other);
                            }
                            None => return Err(Error::parse("grel", "dangling escape")),
                        }
                        i += 2;
                        continue;
                    }
                    if d == quote {
                        closed = true;
                        i += 1;
                        break;
                    }
                    s.push(d);
                    i += 1;
                }
                if !closed {
                    return Err(Error::parse("grel", "unterminated string literal"));
                }
                tokens.push(Token::Str(s));
            }
            '.' => {
                // Distinguish member access from a leading-dot float (.5).
                if bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    let start = i;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    let n: f64 = text
                        .parse()
                        .map_err(|_| Error::parse("grel", format!("bad number '{text}'")))?;
                    tokens.push(Token::Number(n));
                } else {
                    tokens.push(Token::Dot);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == '.'
                    && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == 'e' || bytes[i] == 'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == '+' || bytes[j] == '-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| Error::parse("grel", format!("bad number '{text}'")))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let word: String = bytes[start..i].iter().collect();
                match word.as_str() {
                    "and" => tokens.push(Token::And),
                    "or" => tokens.push(Token::Or),
                    "not" => tokens.push(Token::Not),
                    _ => tokens.push(Token::Ident(word)),
                }
            }
            other => {
                return Err(Error::parse("grel", format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_method_chain() {
        let t = lex("value.trim().toLowercase()").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("value".into()),
                Token::Dot,
                Token::Ident("trim".into()),
                Token::LParen,
                Token::RParen,
                Token::Dot,
                Token::Ident("toLowercase".into()),
                Token::LParen,
                Token::RParen,
            ]
        );
    }

    #[test]
    fn lex_strings_with_escapes() {
        let t = lex(r#"replace(value, 'a\'b', "c\"d")"#).unwrap();
        assert!(matches!(&t[4], Token::Str(s) if s == "a'b"));
        assert!(matches!(&t[6], Token::Str(s) if s == "c\"d"));
    }

    #[test]
    fn lex_numbers() {
        let t = lex("1 2.5 .5 1e3 2E-2").unwrap();
        let nums: Vec<f64> = t
            .iter()
            .map(|t| match t {
                Token::Number(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(nums, vec![1.0, 2.5, 0.5, 1000.0, 0.02]);
    }

    #[test]
    fn lex_operators() {
        let t = lex("a == b != c <= d >= e && f || !g").unwrap();
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::And));
        assert!(t.contains(&Token::Or));
        assert!(t.contains(&Token::Not));
    }

    #[test]
    fn lex_word_operators() {
        let t = lex("a and b or not c").unwrap();
        assert_eq!(t.iter().filter(|x| **x == Token::And).count(), 1);
        assert_eq!(t.iter().filter(|x| **x == Token::Or).count(), 1);
        assert_eq!(t.iter().filter(|x| **x == Token::Not).count(), 1);
    }

    #[test]
    fn lex_errors() {
        assert!(lex("a = b").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn lex_empty() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   ").unwrap().is_empty());
    }
}
