//! Minimal HTTP/1.1 parsing and serialization, free of any I/O.
//!
//! The event loop accumulates bytes per connection and calls [`try_parse`]
//! after every chunk: a pure, incremental parser that either needs more
//! bytes, yields a complete [`Request`] (reporting how many bytes it
//! consumed, so pipelined followers survive), or rejects the prefix with a
//! status to answer. All the defensive properties of the old blocking
//! reader are kept — bounded head and body sizes (`413`), unsupported
//! constructs (`Transfer-Encoding`) rejected with `501` rather than
//! misparsed — while the deadlines (`408`, idle) moved to the event
//! loop where they belong.
//!
//! On the write side, [`Response::serialize_into`] renders a response
//! into a reusable byte buffer without `format!` (static header
//! fragments + manual integer formatting), and the fixed responses the
//! server sends on its hot shed/timeout paths are pre-serialized once
//! into static blobs.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::OnceLock;
use std::time::Duration;

/// Read-side bounds for one request.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (413 beyond this).
    pub max_header_bytes: usize,
    /// Maximum bytes of body (413 beyond this).
    pub max_body_bytes: usize,
    /// Deadline for reading one full request once its first byte arrived
    /// (408 beyond this).
    pub read_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 8 * 1024,
            max_body_bytes: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, Default)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Percent-decoded path, query string removed.
    pub path: String,
    /// Decoded query parameters.
    pub query: BTreeMap<String, String>,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.0` (keep-alive must be asked for explicitly).
    pub http10: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client wants the connection kept open after the
    /// response (HTTP/1.1 defaults to yes, 1.0 to no).
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection").map(str::to_ascii_lowercase) {
            Some(v) if v.contains("close") => false,
            Some(v) if v.contains("keep-alive") => true,
            _ => !self.http10,
        }
    }

    /// Whether a query flag like `?explain=1` is set truthy.
    pub fn query_flag(&self, name: &str) -> bool {
        matches!(self.query.get(name).map(String::as_str), Some("1") | Some("true") | Some(""))
    }
}

/// What [`try_parse`] made of the buffered bytes so far.
#[derive(Debug)]
pub enum Parse {
    /// Not enough bytes for a complete request yet.
    Incomplete,
    /// A complete, well-formed request.
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer it consumed (head + body); anything after
        /// belongs to the next pipelined request.
        consumed: usize,
    },
    /// Protocol-level problem; answer with this status and close.
    Error {
        /// HTTP status to answer with (400, 413, 501).
        status: u16,
        /// Human-readable reason for the error body.
        message: String,
    },
}

fn proto_err(status: u16, message: impl Into<String>) -> Parse {
    Parse::Error { status, message: message.into() }
}

/// Incremental request parser: pure function of the bytes buffered so far.
///
/// Call it after every read; it never consumes anything itself (the caller
/// drains `consumed` bytes on `Complete`). The head cap fires as soon as
/// the buffer outgrows `max_header_bytes` without a blank line, and the
/// body cap fires from the `Content-Length` header alone — an oversized
/// body is rejected without ever being buffered.
pub fn try_parse(buf: &[u8], limits: &Limits) -> Parse {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > limits.max_header_bytes {
                return proto_err(
                    413,
                    format!("request head exceeds {} bytes", limits.max_header_bytes),
                );
            }
            return Parse::Incomplete;
        }
    };

    let mut req = match parse_head(&buf[..head_end]) {
        Ok(r) => r,
        Err(out) => return out,
    };

    let content_length = match req.header("content-length") {
        None => 0usize,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => return proto_err(400, format!("unparseable content-length: {v:?}")),
        },
    };
    if req.header("transfer-encoding").is_some() {
        return proto_err(501, "transfer-encoding is not supported");
    }
    if content_length > limits.max_body_bytes {
        return proto_err(
            413,
            format!("body of {content_length} bytes exceeds {} bytes", limits.max_body_bytes),
        );
    }
    let consumed = head_end + content_length;
    if buf.len() < consumed {
        return Parse::Incomplete;
    }
    req.body = buf[head_end..consumed].to_vec();
    Parse::Complete { request: req, consumed }
}

/// Index just past the `\r\n\r\n` terminating the head, if present.
pub(crate) fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

fn parse_head(head: &[u8]) -> Result<Request, Parse> {
    let text =
        std::str::from_utf8(head).map_err(|_| proto_err(400, "request head is not valid utf-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(proto_err(400, format!("malformed request line: {request_line:?}"))),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(proto_err(400, format!("malformed method: {method:?}")));
    }
    if !target.starts_with('/') {
        return Err(proto_err(400, format!("request target must be absolute: {target:?}")));
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        other => return Err(proto_err(400, format!("unsupported protocol: {other:?}"))),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| proto_err(400, format!("malformed header line: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(proto_err(400, format!("malformed header name: {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let mut query = BTreeMap::new();
    for pair in raw_query.unwrap_or_default().split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(k, true), percent_decode(v, true));
    }

    Ok(Request {
        method: method.to_string(),
        path: percent_decode(raw_path, false),
        query,
        headers,
        body: Vec::new(),
        http10,
    })
}

/// Decodes `%XX` escapes (and `+` as space inside query strings). Invalid
/// escapes pass through literally — a lookup for a weird path should 404,
/// not 500.
pub fn percent_decode(s: &str, plus_as_space: bool) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => match (hex(bytes.get(i + 1)), hex(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

/// One response, written with `Content-Length` and an explicit
/// `Connection` header.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Retry-After`, `Allow`).
    pub extra_headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response from an already-rendered document.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response (newline-terminated).
    pub fn text(status: u16, message: impl AsRef<str>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: format!("{}\n", message.as_ref()).into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// Renders the response into `out` (appended). `keep_alive` decides
    /// the `Connection` header; the caller closes the connection when it
    /// is `false`.
    ///
    /// This is the hot serialization path: static byte fragments plus
    /// manual decimal formatting, so a steady-state response costs no
    /// `format!` machinery and — with a reused `out` — no allocation
    /// beyond what the body itself needed.
    pub fn serialize_into(&self, out: &mut Vec<u8>, keep_alive: bool) {
        out.extend_from_slice(b"HTTP/1.1 ");
        push_decimal(out, self.status as u64);
        out.push(b' ');
        out.extend_from_slice(status_text(self.status).as_bytes());
        out.extend_from_slice(b"\r\ncontent-type: ");
        out.extend_from_slice(self.content_type.as_bytes());
        out.extend_from_slice(b"\r\ncontent-length: ");
        push_decimal(out, self.body.len() as u64);
        out.extend_from_slice(b"\r\nconnection: ");
        out.extend_from_slice(if keep_alive { b"keep-alive".as_slice() } else { b"close" });
        out.extend_from_slice(b"\r\n");
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
    }

    /// Serializes the response into `w`. Convenience for blocking callers
    /// (tests, one-shot rejects); the server's event loop uses
    /// [`Response::serialize_into`] and writes on readiness.
    pub fn write_to(&self, w: &mut dyn Write, keep_alive: bool) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(self.body.len() + 128);
        self.serialize_into(&mut bytes, keep_alive);
        w.write_all(&bytes)?;
        w.flush()
    }
}

/// Appends `n` in decimal without going through `format!`.
fn push_decimal(out: &mut Vec<u8>, mut n: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

/// The pre-serialized `503 Retry-After: 1` shed response (connection
/// close). Written as-is on every shed path — over-capacity accepts,
/// full job queue, drain-deadline leftovers — when telemetry is off, so
/// shedding costs no per-connection serialization at all. With
/// telemetry on, the shed paths use [`shed_response_stamped`] instead.
pub(crate) fn shed_response_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let mut out = Vec::new();
        Response::text(503, "server at capacity, retry shortly")
            .with_header("retry-after", "1")
            .serialize_into(&mut out, false);
        out
    })
}

/// The placeholder stamped into the shed template's trace-id header,
/// overwritten in place by [`shed_response_stamped`].
const SHED_ZERO_ID: &str = "00000000000000000000000000000000";

/// The shed blob with a zeroed `x-metamess-trace-id` header, plus the
/// byte offset of the 32-hex id region inside it.
fn shed_template() -> &'static (Vec<u8>, usize) {
    static TPL: OnceLock<(Vec<u8>, usize)> = OnceLock::new();
    TPL.get_or_init(|| {
        let mut out = Vec::new();
        Response::text(503, "server at capacity, retry shortly")
            .with_header("retry-after", "1")
            .with_header("x-metamess-trace-id", SHED_ZERO_ID)
            .serialize_into(&mut out, false);
        let needle = format!("x-metamess-trace-id: {SHED_ZERO_ID}");
        let at = out
            .windows(needle.len())
            .position(|w| w == needle.as_bytes())
            .expect("shed template carries the trace-id header");
        (out, at + "x-metamess-trace-id: ".len())
    })
}

/// A copy of the shed 503 with `trace_id` stamped into its
/// `x-metamess-trace-id` header, so even a shed client gets an id it can
/// quote back. One memcpy of the template plus 32 byte stores — no
/// formatting, no serialization — keeping the shed path's zero-allocation
/// spirit (the copy is unavoidable: the blob differs per connection).
pub(crate) fn shed_response_stamped(trace_id: u128) -> Vec<u8> {
    let (template, at) = shed_template();
    let mut out = template.clone();
    const HEX: &[u8; 16] = b"0123456789abcdef";
    for (i, byte) in out[*at..*at + 32].iter_mut().enumerate() {
        *byte = HEX[((trace_id >> (124 - 4 * i)) & 0xf) as usize];
    }
    out
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_is_found() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn parse_head_accepts_a_full_request() {
        let req = parse_head(
            b"POST /search?explain=1&x=a+b HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query["explain"], "1");
        assert_eq!(req.query["x"], "a b");
        assert_eq!(req.header("content-length"), Some("2"));
        assert!(req.wants_keep_alive());
        assert!(req.query_flag("explain"));
    }

    #[test]
    fn parse_head_rejects_garbage() {
        for bad in [
            &b"not a request\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"get /x HTTP/1.1\r\n\r\n",
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
        ] {
            match parse_head(bad) {
                Err(Parse::Error { status: 400, .. }) => {}
                other => {
                    panic!("expected 400 for {:?}, got {other:?}", String::from_utf8_lossy(bad))
                }
            }
        }
    }

    #[test]
    fn try_parse_is_incremental_and_reports_consumed() {
        let limits = Limits::default();
        let full =
            b"POST /search HTTP/1.1\r\ncontent-length: 4\r\n\r\nbodyGET /next HTTP/1.1\r\n\r\n";
        // every strict prefix up to the end of the body is Incomplete
        let body_end = full.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4 + 4;
        for cut in 0..body_end {
            match try_parse(&full[..cut], &limits) {
                Parse::Incomplete => {}
                other => panic!("prefix of {cut} bytes should be Incomplete, got {other:?}"),
            }
        }
        match try_parse(full, &limits) {
            Parse::Complete { request, consumed } => {
                assert_eq!(request.path, "/search");
                assert_eq!(request.body, b"body");
                assert_eq!(consumed, body_end, "pipelined follower is not consumed");
                assert!(full[consumed..].starts_with(b"GET /next"));
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn try_parse_enforces_head_and_body_caps() {
        let limits = Limits { max_header_bytes: 64, max_body_bytes: 16, ..Limits::default() };
        match try_parse(&vec![b'a'; 65], &limits) {
            Parse::Error { status: 413, message } => {
                assert!(message.contains("head exceeds 64"), "{message}");
            }
            other => panic!("expected 413 head cap, got {other:?}"),
        }
        // body cap fires from the header alone — no body bytes present
        match try_parse(b"POST /x HTTP/1.1\r\ncontent-length: 9999\r\n\r\n", &limits) {
            Parse::Error { status: 413, message } => {
                assert!(message.contains("9999"), "{message}");
            }
            other => panic!("expected 413 body cap, got {other:?}"),
        }
        match try_parse(b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n", &limits) {
            Parse::Error { status: 400, .. } => {}
            other => panic!("expected 400 bad length, got {other:?}"),
        }
        match try_parse(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n", &limits) {
            Parse::Error { status: 501, .. } => {}
            other => panic!("expected 501, got {other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close() {
        let req = parse_head(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
        let req = parse_head(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.wants_keep_alive());
        let req = parse_head(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.wants_keep_alive());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(
            percent_decode("/datasets/2014%2F07%2Fsaturn.csv", false),
            "/datasets/2014/07/saturn.csv"
        );
        assert_eq!(percent_decode("a+b%20c", true), "a b c");
        assert_eq!(percent_decode("broken%zz", false), "broken%zz");
        assert_eq!(percent_decode("trailing%2", false), "trailing%2");
    }

    #[test]
    fn response_writes_content_length_and_connection() {
        let mut out = Vec::new();
        Response::json(200, "{}".into()).write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"), "{text}");
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");

        let mut out = Vec::new();
        Response::text(503, "busy")
            .with_header("Retry-After", "1")
            .write_to(&mut out, false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
    }

    #[test]
    fn serialize_into_appends_and_shed_blob_is_well_formed() {
        let mut out = b"prefix".to_vec();
        Response::text(200, "ok").serialize_into(&mut out, true);
        assert!(out.starts_with(b"prefix"), "serialize_into must append");

        let shed = String::from_utf8(shed_response_bytes().to_vec()).unwrap();
        assert!(shed.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{shed}");
        assert!(shed.contains("retry-after: 1\r\n"), "{shed}");
        assert!(shed.contains("connection: close\r\n"), "{shed}");
        assert!(shed.ends_with("server at capacity, retry shortly\n"), "{shed}");
    }

    #[test]
    fn stamped_shed_blob_carries_the_trace_id() {
        let id: u128 = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210;
        let shed = String::from_utf8(shed_response_stamped(id)).unwrap();
        assert!(shed.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{shed}");
        assert!(shed.contains("retry-after: 1\r\n"), "{shed}");
        assert!(shed.contains("connection: close\r\n"), "{shed}");
        assert!(
            shed.contains("x-metamess-trace-id: 0123456789abcdeffedcba9876543210\r\n"),
            "{shed}"
        );
        assert!(shed.ends_with("server at capacity, retry shortly\n"), "{shed}");
        // The template itself must stay zeroed: stamping works on a copy.
        let again = String::from_utf8(shed_response_stamped(1)).unwrap();
        assert!(
            again.contains(&format!("x-metamess-trace-id: {}1\r\n", "0".repeat(31))),
            "{again}"
        );
        // Same length as the template regardless of id — the header is
        // patched in place, never re-serialized.
        assert_eq!(shed.len(), again.len());
    }
}
