//! Point-in-time catalog snapshots.
//!
//! Layout: `MMSNAP01` magic, u32 payload length, u32 CRC-32, JSON payload
//! (the framing shared with the run ledger — see `frame.rs`). Snapshots are
//! written to a temporary file, fsynced, then atomically renamed into place
//! so an interrupted checkpoint never damages the previous snapshot.

use super::frame::{read_framed, write_framed};
use super::vfs::{std_vfs, Vfs};
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use std::path::Path;

/// The eight magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MMSNAP01";

/// Writes `catalog` as a snapshot at `path`, atomically, via the standard
/// file system.
pub fn write_snapshot(path: impl AsRef<Path>, catalog: &Catalog) -> Result<()> {
    write_snapshot_with(std_vfs().as_ref(), path, catalog)
}

/// Writes `catalog` as a snapshot at `path`, atomically, through an
/// explicit [`Vfs`].
pub fn write_snapshot_with(vfs: &dyn Vfs, path: impl AsRef<Path>, catalog: &Catalog) -> Result<()> {
    let payload = serde_json::to_vec(catalog)
        .map_err(|e| Error::invalid(format!("unencodable catalog: {e}")))?;
    write_framed(vfs, path.as_ref(), SNAPSHOT_MAGIC, &payload, "snapshot")
}

/// Reads a snapshot via the standard file system. Returns `Ok(None)` when
/// the file does not exist, `Err(Corrupt)` when it exists but fails
/// verification.
pub fn read_snapshot(path: impl AsRef<Path>) -> Result<Option<Catalog>> {
    read_snapshot_with(std_vfs().as_ref(), path)
}

/// Reads a snapshot through an explicit [`Vfs`]. Returns `Ok(None)` when
/// the file does not exist, `Err(Corrupt)` when it exists but fails
/// verification.
pub fn read_snapshot_with(vfs: &dyn Vfs, path: impl AsRef<Path>) -> Result<Option<Catalog>> {
    let path = path.as_ref();
    let Some(payload) = read_framed(vfs, path, SNAPSHOT_MAGIC, "snapshot")? else {
        return Ok(None);
    };
    let catalog: Catalog = serde_json::from_slice(&payload)
        .map_err(|e| Error::corrupt(format!("snapshot {}: undecodable: {e}", path.display())))?;
    Ok(Some(catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::DatasetFeature;
    use std::fs;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("metamess-snap-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.put(DatasetFeature::new("a.csv"));
        c.put(DatasetFeature::new("b.cdl"));
        c.set_property("archive", "sim");
        c
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("rt");
        let p = dir.join("snapshot.bin");
        let c = sample_catalog();
        write_snapshot(&p, &c).unwrap();
        let back = read_snapshot(&p).unwrap().unwrap();
        // Generation is part of the snapshot too.
        assert_eq!(back, c);
    }

    #[test]
    fn missing_is_none() {
        let dir = tmpdir("miss");
        assert!(read_snapshot(dir.join("none.bin")).unwrap().is_none());
    }

    #[test]
    fn corrupt_payload_detected() {
        let dir = tmpdir("corrupt");
        let p = dir.join("snapshot.bin");
        write_snapshot(&p, &sample_catalog()).unwrap();
        let mut bytes = fs::read(&p).unwrap();
        let ix = bytes.len() - 3;
        bytes[ix] ^= 0x10;
        fs::write(&p, &bytes).unwrap();
        assert!(read_snapshot(&p).unwrap_err().is_corrupt());
    }

    #[test]
    fn truncated_detected() {
        let dir = tmpdir("trunc");
        let p = dir.join("snapshot.bin");
        write_snapshot(&p, &sample_catalog()).unwrap();
        let bytes = fs::read(&p).unwrap();
        fs::write(&p, &bytes[..bytes.len() - 8]).unwrap();
        assert!(read_snapshot(&p).unwrap_err().is_corrupt());
    }

    #[test]
    fn overwrite_replaces_atomically() {
        let dir = tmpdir("ow");
        let p = dir.join("snapshot.bin");
        write_snapshot(&p, &sample_catalog()).unwrap();
        let mut c2 = sample_catalog();
        c2.put(DatasetFeature::new("c.obslog"));
        write_snapshot(&p, &c2).unwrap();
        let back = read_snapshot(&p).unwrap().unwrap();
        assert_eq!(back.len(), 3);
        assert!(!dir.join("snapshot.tmp").exists());
    }

    #[test]
    fn failed_rename_preserves_previous_snapshot() {
        use crate::store::vfs::{FaultKind, FaultPlan, FaultVfs};
        let dir = tmpdir("renamefault");
        let p = dir.join("snapshot.bin");
        write_snapshot(&p, &sample_catalog()).unwrap();
        let vfs = FaultVfs::new(FaultPlan { crash_at: 1, kind: FaultKind::RenameFail, seed: 2 });
        let mut c2 = sample_catalog();
        c2.put(DatasetFeature::new("c.obslog"));
        assert!(write_snapshot_with(&vfs, &p, &c2).is_err());
        // The previous snapshot is intact; only the tmp file was touched.
        let back = read_snapshot(&p).unwrap().unwrap();
        assert_eq!(back.len(), 2);
    }
}
