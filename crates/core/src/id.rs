//! Stable identifiers for catalog entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable identifier of a dataset in the catalog.
///
/// Derived deterministically from the dataset's archive-relative path so that
/// re-running the wrangling process (curatorial activity 2) assigns the same
/// ids and the working catalog can be diffed against the published one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct DatasetId(pub u64);

impl DatasetId {
    /// Derives an id from an archive-relative path (FNV-1a 64).
    pub fn from_path(path: &str) -> DatasetId {
        DatasetId(fnv1a(path.as_bytes()))
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ds-{:016x}", self.0)
    }
}

/// Identifier of a variable *within* a dataset (its harvested column name is
/// the natural key; this pairs it with the dataset for global uniqueness).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VariableId {
    /// Owning dataset.
    pub dataset: DatasetId,
    /// Column name exactly as harvested from the file.
    pub name: String,
}

impl VariableId {
    /// Creates a variable id.
    pub fn new(dataset: DatasetId, name: impl Into<String>) -> VariableId {
        VariableId { dataset, name: name.into() }
    }
}

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.dataset, self.name)
    }
}

/// FNV-1a 64-bit hash. Used for path-derived ids and cheap content
/// fingerprints; *not* used where collision resistance matters.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_is_deterministic() {
        let a = DatasetId::from_path("stations/saturn01/2010/06.csv");
        let b = DatasetId::from_path("stations/saturn01/2010/06.csv");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_paths_distinct_ids() {
        let a = DatasetId::from_path("a.csv");
        let b = DatasetId::from_path("b.csv");
        assert_ne!(a, b);
    }

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn display_forms() {
        let d = DatasetId(0xabc);
        assert_eq!(d.to_string(), "ds-0000000000000abc");
        let v = VariableId::new(d, "water_temp");
        assert_eq!(v.to_string(), "ds-0000000000000abc/water_temp");
    }
}
