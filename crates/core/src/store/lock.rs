//! Advisory store locking: readers share, repairers exclude.
//!
//! Several metamess processes can legitimately touch one store at the same
//! time — `metamess serve` holds it open for its whole lifetime, a `wrangle`
//! republishes into it, `search`/`stats` read it, and `fsck` inspects it.
//! All of those coexist safely because the on-disk format is
//! append-plus-atomic-rename. The one operation that does **not** coexist
//! with anybody is `fsck --repair`, which truncates WAL tails and moves
//! files into quarantine out from under other processes.
//!
//! A [`StoreLock`] encodes that policy as an advisory `flock(2)` on a
//! `.lock` file inside the catalog directory:
//!
//! * every store *user* (open for read or append) takes a **shared** lock;
//! * `fsck --repair` takes an **exclusive** lock;
//! * acquisition is always non-blocking — a conflict returns a clear
//!   [`Error::Conflict`](crate::Error) naming the lock file instead of an
//!   undefined interleaving (or a silent hang).
//!
//! The lock is released when the [`StoreLock`] is dropped (closing the file
//! descriptor releases a `flock`), and — being advisory — it never blocks
//! non-metamess tools from reading the files. On non-Unix platforms the
//! lock degrades to a no-op marker file so the crate still builds; the
//! repair-vs-serve exclusion is only enforced where `flock` exists.

use crate::error::{Error, Result};
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

/// How a [`StoreLock`] is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Concurrent store users (serve, wrangle, search, fsck checks).
    Shared,
    /// Mutually-exclusive maintenance (`fsck --repair`).
    Exclusive,
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockMode::Shared => write!(f, "shared"),
            LockMode::Exclusive => write!(f, "exclusive"),
        }
    }
}

/// The conventional lock-file path for a catalog directory.
pub fn lock_path(catalog_dir: &Path) -> PathBuf {
    catalog_dir.join(".lock")
}

/// A held advisory lock on a store. Dropping it releases the lock.
#[derive(Debug)]
pub struct StoreLock {
    // Kept alive for the flock; never read on non-Unix targets.
    _file: File,
    path: PathBuf,
    mode: LockMode,
}

impl StoreLock {
    /// Takes a shared (reader/appender) lock, creating the lock file if
    /// needed. Fails fast with a [`Error::Conflict`](crate::Error) when an
    /// exclusive lock is held.
    pub fn shared(path: impl AsRef<Path>) -> Result<StoreLock> {
        StoreLock::acquire(path.as_ref(), LockMode::Shared)
    }

    /// Takes an exclusive (maintenance) lock. Fails fast with a
    /// [`Error::Conflict`](crate::Error) while any other lock is held.
    pub fn exclusive(path: impl AsRef<Path>) -> Result<StoreLock> {
        StoreLock::acquire(path.as_ref(), LockMode::Exclusive)
    }

    fn acquire(path: &Path, mode: LockMode) -> Result<StoreLock> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| Error::io(format!("create lock dir {}", dir.display()), e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
            .map_err(|e| Error::io(format!("open lock file {}", path.display()), e))?;
        sys::flock(&file, mode).map_err(|e| {
            if e.kind() == std::io::ErrorKind::WouldBlock {
                Error::conflict(format!(
                    "store is locked: could not take a {mode} lock on {} — another metamess \
                     process (serve, wrangle, or fsck --repair) holds it; retry after it exits",
                    path.display()
                ))
            } else {
                Error::io(format!("lock {}", path.display()), e)
            }
        })?;
        Ok(StoreLock { _file: file, path: path.to_path_buf(), mode })
    }

    /// The lock file this lock is held on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How the lock is held.
    pub fn mode(&self) -> LockMode {
        self.mode
    }
}

#[cfg(unix)]
mod sys {
    use super::LockMode;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const LOCK_SH: i32 = 1;
    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Non-blocking `flock(2)`; `WouldBlock` when the lock is contended.
    pub fn flock(file: &File, mode: LockMode) -> std::io::Result<()> {
        let op = match mode {
            LockMode::Shared => LOCK_SH | LOCK_NB,
            LockMode::Exclusive => LOCK_EX | LOCK_NB,
        };
        // SAFETY: `flock` is async-signal-safe, takes a valid open fd, and
        // only returns an integer status; no memory is shared with C.
        if unsafe { flock(file.as_raw_fd(), op) } == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::LockMode;
    use std::fs::File;

    /// Advisory locking is not enforced on this platform; acquiring always
    /// succeeds so the store remains usable.
    pub fn flock(_file: &File, _mode: LockMode) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    fn tmplock(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("metamess-lock-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        lock_path(&d)
    }

    #[test]
    fn shared_locks_coexist() {
        let path = tmplock("sh");
        let a = StoreLock::shared(&path).unwrap();
        let b = StoreLock::shared(&path).unwrap();
        assert_eq!(a.mode(), LockMode::Shared);
        assert_eq!(b.path(), path.as_path());
    }

    #[test]
    fn exclusive_excludes_shared_and_exclusive() {
        let path = tmplock("ex");
        let held = StoreLock::exclusive(&path).unwrap();
        let e = StoreLock::shared(&path).unwrap_err();
        assert!(e.to_string().contains("locked"), "{e}");
        assert!(StoreLock::exclusive(&path).is_err());
        drop(held);
        StoreLock::shared(&path).unwrap();
    }

    #[test]
    fn shared_blocks_exclusive_until_dropped() {
        let path = tmplock("sh-ex");
        let reader = StoreLock::shared(&path).unwrap();
        let e = StoreLock::exclusive(&path).unwrap_err();
        assert!(matches!(e, Error::Conflict { .. }), "{e:?}");
        drop(reader);
        let repair = StoreLock::exclusive(&path).unwrap();
        assert_eq!(repair.mode(), LockMode::Exclusive);
    }

    #[test]
    fn conflict_message_names_the_lock_file() {
        let path = tmplock("msg");
        let _held = StoreLock::exclusive(&path).unwrap();
        let e = StoreLock::shared(&path).unwrap_err();
        assert!(e.to_string().contains(".lock"), "{e}");
        assert!(e.to_string().contains("shared"), "{e}");
    }
}
