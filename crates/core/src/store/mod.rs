//! Durable storage for the metadata catalog: CRC-checked WAL + snapshots.

pub mod crc;
mod durable;
mod ledger;
mod metrics;
mod snapshot;
mod wal;

pub use crc::{crc32, Crc32};
pub use durable::{DurableCatalog, RecoveryReport, StoreOptions};
pub use ledger::{read_ledger, write_ledger, RunLedger, StageRecord};
pub use snapshot::{read_snapshot, write_snapshot};
pub use wal::{RecoveryMode, ReplaySummary, Wal};
