//! Stateless fan-out building blocks for scatter-gather over shard
//! engines that do **not** share an address space.
//!
//! The in-process [`ShardedEngine`](crate::ShardedEngine) probes, scores,
//! and merges against `&ShardEngine` references. The remote shard
//! protocol (crate `metamess-remote`) runs the same three phases, but the
//! probe and score halves execute inside `metamess shardd` processes and
//! only serializable summaries cross the wire. This module is the single
//! definition of those halves, written so that
//!
//! ```text
//! merge_hits(score_top(..) per shard, limit)
//!     == ShardedEngine::search_uncached(..)   // bit-identical
//! ```
//!
//! holds at any shard count and partitioner:
//!
//! * [`probe_summary`] is exactly `ShardEngine::probe` with the result
//!   flattened into fixed-width integers;
//! * [`plan_scatter`] replays the coordinator's decisions — the global
//!   nearest-neighbour admission under `(distance, global index)` and the
//!   cross-shard `candidates < limit*3` full-scan fallback — from
//!   summaries alone;
//! * [`score_top`] selects each shard's `limit`-best candidates under the
//!   global rank order `(score desc, path asc)`. Because that order is a
//!   *strict total* order (paths are unique per catalog), every global
//!   top-`limit` hit is necessarily in its own shard's top-`limit`, so
//!   [`merge_hits`] — flatten, sort under the same order, truncate —
//!   reconstructs the global answer exactly. Scores survive the JSON hop
//!   bit-exactly: the workspace builds `serde_json` with
//!   `float_roundtrip`.
//!
//! [`build_shard`] builds shard `k` of `n` standalone, through the same
//! partition assignment as `ShardedEngine::build_sharded`, so a fleet of
//! `shardd` processes covers the catalog without overlap or gaps.

use crate::engine::{partition_members, SearchHit};
use crate::plan::QueryPlan;
use crate::query::Query;
use crate::shard::{expanded_time, ShardEngine, ShardSpec};
use crate::topk::{LightHit, LightTopK};
use metamess_core::catalog::Catalog;
use metamess_core::time::TimeInterval;
use metamess_vocab::Vocabulary;
use std::cmp::Ordering;

/// What one shard's probe produced, in wire-friendly form. The local
/// candidate indices are `u32` (shards are bounded well below 4G members)
/// and the nearest list keeps `(distance, global index, local index)` —
/// everything [`plan_scatter`] needs to replay the coordinator's
/// admission globally.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProbeSummary {
    /// Local indices selected by the window/term indexes (ascending,
    /// unique).
    pub certain: Vec<u32>,
    /// Nearest-neighbour candidates as `(distance, global ix, local ix)`.
    pub near: Vec<(f64, u64, u32)>,
    /// Index walks skipped because the shard bound excluded the query.
    pub bound_skips: u32,
}

/// The candidate-generation over-fetch: how many nearest neighbours each
/// shard collects per probe. Must match on both ends of the wire — the
/// shardd probes with it, the coordinator admits with it — so it is a
/// pure function of the query limit (the same formula the in-process
/// engine uses).
pub fn generous(limit: usize) -> usize {
    limit.saturating_mul(5).max(50)
}

/// Probes one shard and flattens the outcome for the wire. `generous`
/// must be [`generous`]`(query.limit)`; it is a parameter only so the
/// call site that already computed it does not recompute.
pub fn probe_summary(
    shard: &ShardEngine,
    query: &Query,
    plan: &QueryPlan,
    generous: usize,
) -> ProbeSummary {
    let p = shard.probe(query, plan, generous);
    ProbeSummary {
        certain: p.certain.iter().map(|&ix| ix as u32).collect(),
        near: p.near.iter().map(|&(d, gix, lix)| (d, gix as u64, lix as u32)).collect(),
        bound_skips: p.bound_skips as u32,
    }
}

/// What one shard must score, as decided by the coordinator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ScoreWork {
    /// Nothing — the shard contributed no candidates (pruned).
    Skip,
    /// Every dataset in the shard (the full-scan fallback).
    Full,
    /// Exactly these local indices (ascending, unique).
    List(Vec<u32>),
}

/// Replays the coordinator's scatter decisions from per-shard probe
/// summaries: global nearest-neighbour admission (when the query is
/// spatial) and the cross-shard full-scan fallback. Returns the fallback
/// flag (for telemetry) and one [`ScoreWork`] per shard, in shard order.
///
/// Mirrors `ShardedEngine::execute_plan` + `admit_nearest_globally` +
/// `plan_units` exactly; the bit-identity tests in this module and the
/// `shard_props` suite keep the two in lockstep.
pub fn plan_scatter(query: &Query, summaries: &[ProbeSummary]) -> (bool, Vec<ScoreWork>) {
    let forced = query.is_empty();
    let mut certain: Vec<Vec<u32>> = summaries.iter().map(|s| s.certain.clone()).collect();
    if !forced && query.spatial.is_some() {
        // Admit nearest candidates under the global total order
        // `(distance, global index)`, truncated to `generous` — the exact
        // set the unsharded R-tree's single `nearest` call selects.
        let mut near: Vec<(f64, u64, usize, u32)> = Vec::new();
        for (s, summary) in summaries.iter().enumerate() {
            near.extend(summary.near.iter().map(|&(dist, gix, lix)| (dist, gix, s, lix)));
        }
        near.sort_by(|a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(Ordering::Equal).then_with(|| a.1.cmp(&b.1))
        });
        for &(_, _, s, lix) in near.iter().take(generous(query.limit)) {
            certain[s].push(lix);
        }
        for c in certain.iter_mut() {
            c.sort_unstable();
            c.dedup();
        }
    }
    let candidates_total: usize = if forced { 0 } else { certain.iter().map(Vec::len).sum() };
    let full_scan = forced || candidates_total < query.limit.saturating_mul(3);
    let works = certain
        .into_iter()
        .map(|c| {
            if full_scan {
                ScoreWork::Full
            } else if c.is_empty() {
                ScoreWork::Skip
            } else {
                ScoreWork::List(c)
            }
        })
        .collect();
    (full_scan, works)
}

/// Whether a probe round trip to a shard can be skipped outright for this
/// query, given the shard's advertised temporal pruning bound. Only a
/// pure time-window query qualifies: spatial queries always collect
/// nearest neighbours (distance has no bound) and variable terms consult
/// postings the coordinator cannot see. When it returns `true`, the
/// shard's probe is exactly the empty summary (one bound skip), so
/// synthesizing that locally changes nothing downstream.
pub fn probe_prunable(query: &Query, time_bound: Option<&TimeInterval>) -> bool {
    if query.is_empty() || query.spatial.is_some() || !query.variables.is_empty() {
        return false;
    }
    match &query.time {
        Some(window) => match time_bound {
            Some(bound) => !bound.overlaps(&expanded_time(window)),
            // No member carries a time interval — the interval index is
            // empty and a time-only probe cannot select anything.
            None => true,
        },
        None => false,
    }
}

/// Scores one shard's assigned work and returns its `query.limit`-best
/// hits under the global rank order `(score desc, path asc)`, best first.
/// Candidates run through the allocation-free fast scorer; only the
/// `≤ limit` survivors are materialized by the exact scorer (the same
/// split the in-process engine uses, with the same debug assertion that
/// the two scorers agree bit-for-bit).
pub fn score_top(
    shard: &ShardEngine,
    query: &Query,
    plan: &QueryPlan,
    vocab: &Vocabulary,
    work: &ScoreWork,
) -> Vec<SearchHit> {
    let rank_cmp = |a: &LightHit, b: &LightHit| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(Ordering::Equal)
            .then_with(|| shard.dataset(a.2 as usize).path.cmp(&shard.dataset(b.2 as usize).path))
    };
    let rank_lt = |a: &LightHit, b: &LightHit| rank_cmp(a, b) == Ordering::Less;
    let mut lights: Vec<LightHit> = Vec::new();
    {
        let mut topk = LightTopK::new(query.limit, &mut lights);
        match work {
            ScoreWork::Skip => return Vec::new(),
            ScoreWork::Full => {
                for ix in 0..shard.len() {
                    let s = shard.score_fast(query, &plan.prepared, ix);
                    topk.push((s, 0, ix as u32), &rank_lt);
                }
            }
            ScoreWork::List(ixs) => {
                for &ix in ixs {
                    let s = shard.score_fast(query, &plan.prepared, ix as usize);
                    topk.push((s, 0, ix), &rank_lt);
                }
            }
        }
    }
    lights.sort_by(rank_cmp);
    lights
        .iter()
        .map(|&(score, _, lix)| {
            let hit = shard.score_hit(query, &plan.prepared, vocab, lix as usize);
            debug_assert_eq!(
                hit.score.to_bits(),
                score.to_bits(),
                "fast scorer diverged from the exact scorer on {}",
                hit.path
            );
            hit
        })
        .collect()
}

/// Merges per-shard top-`limit` hit lists into the global top-`limit`,
/// best first. Correctness does not depend on the inputs being sorted —
/// only on each list containing its shard's `limit`-best, which
/// guarantees every global winner is present.
pub fn merge_hits(per_shard: Vec<Vec<SearchHit>>, limit: usize) -> Vec<SearchHit> {
    let mut all: Vec<SearchHit> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal).then_with(|| a.path.cmp(&b.path))
    });
    all.truncate(limit);
    all
}

/// Builds shard `shard_ix` of the layout `spec` over a catalog snapshot,
/// standalone — the engine a `metamess shardd` process hosts. Uses the
/// same partition assignment as `ShardedEngine::build_sharded`, so `n`
/// processes each building their own index cover the catalog exactly.
/// `shard_ix` must be `< spec.count()`.
pub fn build_shard(
    catalog: &Catalog,
    vocab: &Vocabulary,
    spec: ShardSpec,
    shard_ix: usize,
) -> ShardEngine {
    let spec = ShardSpec::new(spec.count(), spec.partitioner());
    assert!(shard_ix < spec.count(), "shard index {shard_ix} out of 0..{}", spec.count());
    let members = partition_members(catalog, spec).swap_remove(shard_ix);
    ShardEngine::build(members, vocab)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::Partitioner;
    use crate::ShardedEngine;
    use metamess_core::feature::{DatasetFeature, NameResolution, VariableFeature};
    use metamess_core::geo::{GeoBBox, GeoPoint};
    use metamess_core::time::Timestamp;

    fn make_dataset(
        path: &str,
        lat: f64,
        lon: f64,
        month: u32,
        var: (&str, &str),
    ) -> DatasetFeature {
        let mut d = DatasetFeature::new(path);
        d.title = path.to_string();
        d.bbox = Some(GeoBBox::point(GeoPoint::new(lat, lon).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2010, month, 1).unwrap(),
            Timestamp::from_ymd(2010, month, 28).unwrap(),
        ));
        let mut v = VariableFeature::new(var.0);
        v.resolve(var.1, NameResolution::KnownTranslation);
        v.summary.observe(5.0);
        v.summary.observe(10.0);
        d.variables.push(v);
        d
    }

    fn two_cluster_catalog() -> Catalog {
        let mut c = Catalog::new();
        for i in 0..60 {
            c.put(make_dataset(
                &format!("north/{i:02}.csv"),
                46.0 + (i % 10) as f64 * 0.01,
                -124.0,
                1 + (i % 6) as u32,
                ("temp", "water_temperature"),
            ));
        }
        for i in 0..60 {
            c.put(make_dataset(
                &format!("south/{i:02}.csv"),
                -44.0 - (i % 10) as f64 * 0.01,
                150.0,
                7 + (i % 6) as u32,
                ("sal", "salinity"),
            ));
        }
        c
    }

    /// Runs the full fan-out pipeline over standalone shards, exactly as
    /// the remote coordinator does (minus the wire).
    fn fan_out(shards: &[ShardEngine], vocab: &Vocabulary, q: &Query) -> Vec<SearchHit> {
        let plan = QueryPlan::prepare(q, vocab);
        let g = generous(q.limit);
        let summaries: Vec<ProbeSummary> = shards
            .iter()
            .map(|s| {
                if q.is_empty() {
                    ProbeSummary::default()
                } else if probe_prunable(q, s.time_bound()) {
                    ProbeSummary { bound_skips: 1, ..ProbeSummary::default() }
                } else {
                    probe_summary(s, q, &plan, g)
                }
            })
            .collect();
        let (_, works) = plan_scatter(q, &summaries);
        let per: Vec<Vec<SearchHit>> =
            shards.iter().zip(&works).map(|(s, w)| score_top(s, q, &plan, vocab, w)).collect();
        merge_hits(per, q.limit)
    }

    #[test]
    fn pipeline_bit_identical_to_sharded_engine() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let reference = ShardedEngine::build(&c, vocab.clone());
        let queries = [
            Query::parse("in 45.9,-124.1..46.2,-123.9 limit 5").unwrap(),
            Query::parse("near 46.0,-124.0 within 10km with water_temperature limit 4").unwrap(),
            Query::parse("from 2010-07-01 to 2010-09-30 with salinity limit 6").unwrap(),
            Query::parse("from 2010-01-01 to 2010-02-15 limit 5").unwrap(),
            Query::parse("with water_temperature limit 100").unwrap(),
            Query::new(),
        ];
        for partitioner in [Partitioner::Hash, Partitioner::Spatial, Partitioner::Temporal] {
            for count in [1usize, 2, 4, 7] {
                let spec = ShardSpec::new(count, partitioner);
                let shards: Vec<ShardEngine> =
                    (0..count).map(|k| build_shard(&c, &vocab, spec, k)).collect();
                for q in &queries {
                    let expected = reference.search_uncached(q);
                    let got = fan_out(&shards, &vocab, q);
                    assert_eq!(got.len(), expected.len(), "{partitioner:?}/{count}");
                    for (a, b) in got.iter().zip(expected.iter()) {
                        assert_eq!(a, b, "{partitioner:?}/{count}");
                        assert_eq!(a.score.to_bits(), b.score.to_bits(), "{partitioner:?}/{count}");
                    }
                }
            }
        }
    }

    #[test]
    fn build_shard_partitions_cover_the_catalog_exactly() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let spec = ShardSpec::new(4, Partitioner::Spatial);
        let local = ShardedEngine::build_sharded(&c, vocab.clone(), spec);
        let mut total = 0usize;
        for (k, member) in local.shards().iter().enumerate() {
            let standalone = build_shard(&c, &vocab, spec, k);
            assert_eq!(standalone.len(), member.len(), "shard {k}");
            for l in 0..member.len() {
                assert_eq!(standalone.dataset(l).path, member.dataset(l).path, "shard {k}/{l}");
            }
            total += standalone.len();
        }
        assert_eq!(total, local.len());
    }

    #[test]
    fn probe_prunable_only_for_excluded_time_windows() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let spec = ShardSpec::new(2, Partitioner::Temporal);
        let south = build_shard(&c, &vocab, spec, 1); // months 7..=12
        let early = Query::parse("from 2010-01-01 to 2010-02-15 limit 5").unwrap();
        assert!(probe_prunable(&early, south.time_bound()));
        // the synthesized empty summary matches the real probe
        let plan = QueryPlan::prepare(&early, &vocab);
        let real = probe_summary(&south, &early, &plan, generous(early.limit));
        assert!(real.certain.is_empty() && real.near.is_empty());
        // overlapping window, spatial, and variable queries must dial
        let late = Query::parse("from 2010-08-01 to 2010-09-30").unwrap();
        assert!(!probe_prunable(&late, south.time_bound()));
        let spatial = Query::parse("near 46.0,-124.0 from 2010-01-01 to 2010-02-15").unwrap();
        assert!(!probe_prunable(&spatial, south.time_bound()));
        let var = Query::parse("from 2010-01-01 to 2010-02-15 with salinity").unwrap();
        assert!(!probe_prunable(&var, south.time_bound()));
        assert!(!probe_prunable(&Query::new(), south.time_bound()));
    }

    #[test]
    fn search_hit_roundtrips_bit_exactly_through_json() {
        let c = two_cluster_catalog();
        let vocab = Vocabulary::observatory_default();
        let e = ShardedEngine::build(&c, vocab);
        let q = Query::parse("near 46.0,-124.0 with water_temperature limit 5").unwrap();
        for hit in e.search_uncached(&q) {
            let json = serde_json::to_string(&hit).unwrap();
            let back: SearchHit = serde_json::from_str(&json).unwrap();
            assert_eq!(back, hit);
            assert_eq!(back.score.to_bits(), hit.score.to_bits());
        }
    }
}
