//! Criterion bench: the durable catalog substrate — WAL append (buffered
//! and fsynced), snapshot write, and recovery replay.

use criterion::{criterion_group, criterion_main, Criterion};
use metamess_archive::{generate, ArchiveSpec};
use metamess_core::store::{write_snapshot, DurableCatalog, StoreOptions};
use metamess_core::Catalog;
use metamess_harvest::{harvest, observatory_rules, HarvestConfig, MemorySource, ScanConfig};
use std::hint::black_box;
use std::path::PathBuf;

fn sample_catalog() -> Catalog {
    let archive = generate(&ArchiveSpec::default());
    let source = MemorySource { files: &archive.files };
    let config = HarvestConfig {
        scan: ScanConfig::default(),
        naming: observatory_rules(),
        pipeline_run: 1,
        parallelism: 1,
    };
    let report = harvest(&source, &config, None).unwrap();
    let mut c = Catalog::new();
    for f in report.features {
        c.put(f);
    }
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("metamess-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn bench_wal_append(c: &mut Criterion) {
    let catalog = sample_catalog();
    let features: Vec<_> = catalog.iter().cloned().collect();

    c.bench_function("store/wal-append-buffered-53", |b| {
        b.iter_with_setup(
            || {
                let dir = fresh_dir("buffered");
                DurableCatalog::open(&dir, StoreOptions::default()).unwrap()
            },
            |mut store| {
                for f in &features {
                    store.put(f.clone()).unwrap();
                }
                store.flush().unwrap();
                black_box(store)
            },
        )
    });

    c.bench_function("store/wal-append-fsync-each-53", |b| {
        b.iter_with_setup(
            || {
                let dir = fresh_dir("fsync");
                DurableCatalog::open(
                    &dir,
                    StoreOptions { sync_on_append: true, ..StoreOptions::default() },
                )
                .unwrap()
            },
            |mut store| {
                for f in &features {
                    store.put(f.clone()).unwrap();
                }
                black_box(store)
            },
        )
    });
}

fn bench_snapshot_and_recovery(c: &mut Criterion) {
    let catalog = sample_catalog();
    let dir = fresh_dir("snap");
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("snapshot.bin");
    c.bench_function("store/snapshot-write", |b| {
        b.iter(|| write_snapshot(black_box(&snap), black_box(&catalog)).unwrap())
    });

    // Build a store with a snapshot plus a WAL tail, then time recovery.
    let dir2 = fresh_dir("recover");
    {
        let mut store = DurableCatalog::open(&dir2, StoreOptions::default()).unwrap();
        store.replace_with(&catalog).unwrap();
        store.checkpoint().unwrap();
        for f in catalog.iter().take(10) {
            let mut f = f.clone();
            f.record_count += 1;
            store.put(f).unwrap();
        }
        store.flush().unwrap();
    }
    c.bench_function("store/open-recover-snapshot+wal", |b| {
        b.iter(|| black_box(DurableCatalog::open(&dir2, StoreOptions::default()).unwrap()))
    });
}

criterion_group!(benches, bench_wal_append, bench_snapshot_and_recovery);
criterion_main!(benches);
