//! Continuous ingestion: poll an archive, re-wrangle what changed, and
//! publish catalog deltas through a group-commit queue.
//!
//! A [`Watcher`] owns everything one `metamess watch` process needs: the
//! pipeline context (with its fingerprint ledger, so unchanged stages are
//! skipped), the standard pipeline, the curation loop, and a
//! [`GroupCommit`] queue over the durable store. Each **cycle**:
//!
//! 1. scans the archive and compares its content fingerprint against the
//!    previous cycle — an unchanged archive skips the pipeline entirely;
//! 2. runs the curation loop to fixpoint (stage skipping makes this
//!    incremental: only stages whose inputs changed re-execute), which is
//!    recorded as a wrangle trace like any other run;
//! 3. diffs the store's catalog against the freshly published catalog and
//!    submits the resulting mutations as **one batch** to the group-commit
//!    queue, acking only after the shared fsync lands;
//! 4. saves the vocabulary *only when its version moved* (a rewritten
//!    vocabulary file forces live readers into a full reload — see the
//!    delta-publication signature check in `metamess-server`) and persists
//!    the pipeline state for resume.
//!
//! Because publishes append to the WAL without checkpointing, a live
//! `metamess serve` follows them via its WAL-tail delta path without
//! reopening the store; the queue's background compaction folds the WAL
//! into a fresh snapshot when it outgrows the configured ratio.
//!
//! Cycle telemetry lands in the `metamess_ingest_*` families (see
//! `README.md § Running metamess as a live service`).

use crate::context::{ArchiveInput, PipelineContext};
use crate::curator::{CurationLoop, CuratorPolicy};
use crate::engine::{load_state, save_state};
use crate::pipeline::Pipeline;
use metamess_core::store::{CompactionPolicy, GroupCommit, GroupCommitOptions};
use metamess_core::{DurableCatalog, Result, StoreOptions};
use metamess_harvest::scan::{archive_fingerprint, scan_directory};
use metamess_telemetry::{global, Stopwatch};
use metamess_vocab::Vocabulary;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning for a [`Watcher`].
#[derive(Debug, Clone)]
pub struct WatchOptions {
    /// Pause between polling cycles.
    pub interval: Duration,
    /// Group-commit window: how long the store's flusher lets batches
    /// coalesce before the shared fsync (zero = fsync per publish).
    pub commit_interval: Duration,
    /// Stop after this many cycles (`None` = run until stopped).
    pub max_cycles: Option<u64>,
    /// Background compaction policy for the store's WAL.
    pub compaction: CompactionPolicy,
}

impl Default for WatchOptions {
    fn default() -> WatchOptions {
        WatchOptions {
            interval: Duration::from_millis(1000),
            commit_interval: Duration::from_millis(25),
            max_cycles: None,
            compaction: CompactionPolicy::default(),
        }
    }
}

/// What one polling cycle did.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// 1-based cycle number.
    pub cycle: u64,
    /// Whether the archive fingerprint moved since the previous cycle
    /// (`false` means the pipeline was skipped entirely).
    pub changed: bool,
    /// Mutations published to the store this cycle.
    pub mutations: usize,
    /// Datasets in the published catalog after the cycle.
    pub datasets: usize,
    /// End-to-end cycle latency in µs (scan through durable publish).
    pub micros: u64,
}

/// Aggregate of a whole [`Watcher::run`].
#[derive(Debug, Clone, Default)]
pub struct WatchReport {
    /// Cycles executed.
    pub cycles: u64,
    /// Cycles that skipped the pipeline (unchanged archive).
    pub skipped: u64,
    /// Total mutations published across all cycles.
    pub mutations: usize,
    /// Datasets in the published catalog at exit.
    pub datasets: usize,
}

/// The continuous-ingestion loop: archive in, catalog deltas out.
pub struct Watcher {
    archive_dir: PathBuf,
    vocab_path: PathBuf,
    state_dir: PathBuf,
    options: WatchOptions,
    ctx: PipelineContext,
    pipeline: Pipeline,
    curator: CurationLoop,
    commits: GroupCommit,
    stop: Arc<AtomicBool>,
    last_fingerprint: Option<u64>,
    last_vocab_version: Option<u64>,
    cycle: u64,
    resumed: bool,
}

impl Watcher {
    /// Opens the store under `store_dir` (creating it if needed), restores
    /// pipeline state from a previous wrangle or watch, and prepares the
    /// group-commit queue. Nothing runs until [`Watcher::run`] or
    /// [`Watcher::run_cycle`].
    pub fn new(
        archive_dir: impl Into<PathBuf>,
        store_dir: impl Into<PathBuf>,
        options: WatchOptions,
    ) -> Result<Watcher> {
        let archive_dir = archive_dir.into();
        let store_dir = store_dir.into();
        let mut ctx = PipelineContext::new(
            ArchiveInput::Dir(archive_dir.clone()),
            Vocabulary::observatory_default(),
        );
        // keep the store out of the scan when it nests inside the archive
        ctx.harvest.scan.exclude.push(".metamess".into());
        let state_dir = store_dir.join("state");
        let resumed = load_state(&mut ctx, &state_dir)?;
        let vocab_path = store_dir.join("vocabulary.json");
        let last_vocab_version = vocab_path.exists().then_some(ctx.vocab.version);
        let store = DurableCatalog::open(store_dir.join("catalog"), StoreOptions::default())?;
        let commits = GroupCommit::new(
            store,
            GroupCommitOptions {
                commit_interval: options.commit_interval,
                compaction: Some(options.compaction.clone()),
            },
        );
        Ok(Watcher {
            archive_dir,
            vocab_path,
            state_dir,
            options,
            ctx,
            pipeline: Pipeline::standard(),
            curator: CurationLoop::new(CuratorPolicy::default()),
            commits,
            stop: Arc::new(AtomicBool::new(false)),
            last_fingerprint: None,
            last_vocab_version,
            cycle: 0,
            resumed,
        })
    }

    /// Whether [`Watcher::new`] restored state from a previous run.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// A flag that stops [`Watcher::run`] after the current cycle — hand
    /// it to a signal handler.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Runs one polling cycle: scan, (maybe) wrangle, publish, persist.
    pub fn run_cycle(&mut self) -> Result<CycleReport> {
        let started = Instant::now();
        self.cycle += 1;
        let entries = scan_directory(&self.archive_dir, &self.ctx.harvest.scan)?;
        let fingerprint = archive_fingerprint(&entries);
        if self.last_fingerprint == Some(fingerprint) {
            let report = CycleReport {
                cycle: self.cycle,
                changed: false,
                mutations: 0,
                datasets: self.ctx.catalogs.published.len(),
                micros: started.elapsed().as_micros() as u64,
            };
            record_cycle(&report, 0);
            return Ok(report);
        }
        self.curator.run_to_fixpoint(&mut self.pipeline, &mut self.ctx)?;
        // The store holds the previously published catalog; the diff is
        // exactly the delta this cycle discovered. One submission per
        // cycle — the group-commit window coalesces bursty cycles (and
        // concurrent property writes) into a shared fsync.
        let delta = self.commits.with_store(|s| s.catalog().diff(&self.ctx.catalogs.published))?;
        let mutations = delta.len();
        let wait = Stopwatch::start_if(metamess_telemetry::enabled());
        if mutations > 0 {
            self.commits.submit(delta)?.wait()?;
        }
        let wait_micros = wait.micros();
        // Rewriting the vocabulary forces live readers into a full reload,
        // so only save it when the curator actually moved the version.
        if self.last_vocab_version != Some(self.ctx.vocab.version) {
            self.ctx.vocab.save(&self.vocab_path)?;
            self.last_vocab_version = Some(self.ctx.vocab.version);
        }
        save_state(&self.ctx, &self.state_dir)?;
        self.last_fingerprint = Some(fingerprint);
        let report = CycleReport {
            cycle: self.cycle,
            changed: true,
            mutations,
            datasets: self.ctx.catalogs.published.len(),
            micros: started.elapsed().as_micros() as u64,
        };
        record_cycle(&report, wait_micros);
        Ok(report)
    }

    /// Runs cycles until the stop flag is raised or `max_cycles` is
    /// reached, sleeping `interval` between cycles (interruptibly), then
    /// drains and closes the store. `on_cycle` observes every cycle —
    /// print progress, persist telemetry, or ignore it.
    pub fn run(mut self, mut on_cycle: impl FnMut(&CycleReport)) -> Result<WatchReport> {
        let mut report = WatchReport::default();
        while !self.stop.load(Ordering::Relaxed) {
            let cycle = self.run_cycle()?;
            report.cycles += 1;
            report.mutations += cycle.mutations;
            report.datasets = cycle.datasets;
            if !cycle.changed {
                report.skipped += 1;
            }
            on_cycle(&cycle);
            if self.options.max_cycles.is_some_and(|max| report.cycles >= max) {
                break;
            }
            let deadline = Instant::now() + self.options.interval;
            while !self.stop.load(Ordering::Relaxed) {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                std::thread::sleep((deadline - now).min(Duration::from_millis(50)));
            }
        }
        // Drains pending batches and fsyncs before returning.
        self.commits.close().map(|_| report)
    }

    /// Read access to the published catalog as the watcher sees it.
    pub fn published_len(&self) -> usize {
        self.ctx.catalogs.published.len()
    }
}

/// Records one cycle into the `metamess_ingest_*` telemetry families.
fn record_cycle(report: &CycleReport, publish_wait_micros: u64) {
    if !metamess_telemetry::enabled() {
        return;
    }
    let g = global();
    g.counter("metamess_ingest_cycles_total").add(1);
    if !report.changed {
        g.counter("metamess_ingest_cycles_skipped_total").add(1);
    }
    g.counter("metamess_ingest_published_mutations_total").add(report.mutations as u64);
    g.histogram("metamess_ingest_cycle_micros").record(report.micros);
    if report.changed {
        g.histogram("metamess_ingest_publish_wait_micros").record(publish_wait_micros);
    }
    g.gauge("metamess_ingest_datasets").set(report.datasets as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use metamess_archive::{generate, ArchiveSpec};
    use std::path::Path;

    fn fixture(name: &str) -> (PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!("mm-watch-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let archive = root.join("archive");
        generate(&ArchiveSpec::tiny()).write_to(&archive).unwrap();
        (archive, root.join("store"))
    }

    /// Copies the first data file in the archive to a new name, the way a
    /// station upload lands a fresh observation file.
    fn add_one_file(archive: &Path) -> PathBuf {
        let mut stack = vec![archive.to_path_buf()];
        while let Some(dir) = stack.pop() {
            for e in std::fs::read_dir(&dir).unwrap() {
                let p = e.unwrap().path();
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|x| x == "csv") {
                    let dest = p.with_file_name("fresh_upload.csv");
                    std::fs::copy(&p, &dest).unwrap();
                    return dest;
                }
            }
        }
        panic!("archive has no csv files");
    }

    fn quick_options(cycles: Option<u64>) -> WatchOptions {
        WatchOptions {
            interval: Duration::from_millis(1),
            commit_interval: Duration::ZERO,
            max_cycles: cycles,
            compaction: CompactionPolicy::default(),
        }
    }

    #[test]
    fn first_cycle_publishes_then_unchanged_cycles_skip() {
        let (archive, store) = fixture("skip");
        let mut w = Watcher::new(&archive, &store, quick_options(None)).unwrap();
        assert!(!w.resumed());
        let r1 = w.run_cycle().unwrap();
        assert!(r1.changed);
        assert!(r1.datasets > 0, "tiny archive must publish datasets");
        assert!(r1.mutations > 0, "first cycle publishes everything");
        let r2 = w.run_cycle().unwrap();
        assert!(!r2.changed, "unchanged archive must skip the pipeline");
        assert_eq!(r2.mutations, 0);
        assert_eq!(r2.datasets, r1.datasets);
    }

    #[test]
    fn a_new_file_flows_to_the_durable_store() {
        let (archive, store) = fixture("delta");
        let mut w = Watcher::new(&archive, &store, quick_options(None)).unwrap();
        let r1 = w.run_cycle().unwrap();
        add_one_file(&archive);
        let r2 = w.run_cycle().unwrap();
        assert!(r2.changed, "new file must change the archive fingerprint");
        assert!(r2.mutations > 0, "the new dataset must be published as a delta");
        assert_eq!(r2.datasets, r1.datasets + 1);
        drop(w);
        // The store on disk agrees with what the watcher reported.
        let s = DurableCatalog::open(store.join("catalog"), StoreOptions::default()).unwrap();
        assert_eq!(s.catalog().len(), r2.datasets);
        assert!(
            s.catalog().iter().any(|d| d.path.contains("fresh_upload")),
            "the uploaded file must be durably cataloged"
        );
    }

    #[test]
    fn run_honors_max_cycles_and_reports_totals() {
        let (archive, store) = fixture("run");
        let w = Watcher::new(&archive, &store, quick_options(Some(3))).unwrap();
        let mut seen = 0;
        let report = w.run(|_| seen += 1).unwrap();
        assert_eq!(report.cycles, 3);
        assert_eq!(seen, 3);
        assert_eq!(report.skipped, 2, "cycles 2 and 3 see an unchanged archive");
        assert!(report.datasets > 0);
    }

    #[test]
    fn stop_handle_ends_the_run() {
        let (archive, store) = fixture("stop");
        let w = Watcher::new(&archive, &store, quick_options(None)).unwrap();
        let stop = w.stop_handle();
        let report = w.run(move |_| stop.store(true, Ordering::Relaxed)).unwrap();
        assert_eq!(report.cycles, 1, "raising the flag stops after the current cycle");
    }

    #[test]
    fn a_second_watcher_resumes_from_saved_state() {
        let (archive, store) = fixture("resume");
        let mut w = Watcher::new(&archive, &store, quick_options(None)).unwrap();
        let r1 = w.run_cycle().unwrap();
        drop(w);
        let mut w2 = Watcher::new(&archive, &store, quick_options(None)).unwrap();
        assert!(w2.resumed(), "state saved by the first watcher must be restored");
        assert_eq!(w2.published_len(), r1.datasets);
        // Nothing changed on disk, but the fingerprint memory is per
        // process — the cycle runs and publishes an empty delta.
        let r2 = w2.run_cycle().unwrap();
        assert_eq!(r2.mutations, 0, "an unchanged archive re-wrangle publishes nothing");
        assert_eq!(r2.datasets, r1.datasets);
    }
}
