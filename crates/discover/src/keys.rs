//! Keying functions for key-collision clustering.
//!
//! Two values that normalize to the same *key* are candidate variants of one
//! another — Refine's "key collision" methods. Each keyer targets a band of
//! the poster's semantic-diversity table: fingerprints catch separator and
//! ordering variation, n-gram fingerprints catch small misspellings, and
//! phonetic keys catch sound-alike misspellings.

use crate::phonetic::{metaphone_lite, soundex};
use metamess_core::text::split_identifier;
use serde::{Deserialize, Serialize};

pub use metamess_transform::grel::fingerprint_key;

/// Available keying methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyMethod {
    /// Refine's fingerprint: lowercase, strip punctuation, sort tokens.
    Fingerprint,
    /// Identifier fingerprint: split `camelCase`/`snake_case` words first,
    /// then sort — groups `airTemp`, `air_temp`, `AIR TEMP`.
    IdentifierFingerprint,
    /// Character n-gram fingerprint (sorted distinct n-grams of the
    /// punctuation-stripped lowercase string).
    NgramFingerprint {
        /// n-gram size (Refine defaults to 2; 1 is aggressive).
        n: usize,
    },
    /// Token-wise metaphone code.
    Metaphone,
    /// Token-wise Soundex code.
    Soundex,
}

impl KeyMethod {
    /// Short stable name for reports and rule provenance.
    pub fn name(&self) -> String {
        match self {
            KeyMethod::Fingerprint => "fingerprint".to_string(),
            KeyMethod::IdentifierFingerprint => "identifier-fingerprint".to_string(),
            KeyMethod::NgramFingerprint { n } => format!("ngram-fingerprint-{n}"),
            KeyMethod::Metaphone => "metaphone".to_string(),
            KeyMethod::Soundex => "soundex".to_string(),
        }
    }

    /// Computes the key of `value` under this method.
    pub fn key(&self, value: &str) -> String {
        match self {
            KeyMethod::Fingerprint => fingerprint_key(value),
            KeyMethod::IdentifierFingerprint => {
                let mut toks = split_identifier(value);
                toks.sort_unstable();
                toks.dedup();
                toks.join(" ")
            }
            KeyMethod::NgramFingerprint { n } => ngram_fingerprint(value, *n),
            KeyMethod::Metaphone => phonetic_fingerprint(value, metaphone_lite),
            KeyMethod::Soundex => phonetic_fingerprint(value, soundex),
        }
    }
}

/// Sorted distinct character n-grams of the cleaned string.
pub fn ngram_fingerprint(value: &str, n: usize) -> String {
    let n = n.max(1);
    let cleaned: String =
        value.trim().to_lowercase().chars().filter(|c| c.is_alphanumeric()).collect();
    let chars: Vec<char> = cleaned.chars().collect();
    if chars.len() < n {
        return cleaned;
    }
    let mut grams: Vec<String> = chars.windows(n).map(|w| w.iter().collect::<String>()).collect();
    grams.sort_unstable();
    grams.dedup();
    grams.concat()
}

/// Applies a per-token phonetic coder after identifier splitting; numeric
/// tokens are kept verbatim (fluores375 vs fluores400 must not collide).
fn phonetic_fingerprint(value: &str, coder: fn(&str) -> String) -> String {
    let mut toks: Vec<String> = split_identifier(value)
        .iter()
        .map(|t| if t.chars().all(|c| c.is_ascii_digit()) { t.clone() } else { coder(t) })
        .filter(|t| !t.is_empty())
        .collect();
    toks.sort_unstable();
    toks.dedup();
    toks.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_groups_separator_variants() {
        let m = KeyMethod::Fingerprint;
        assert_eq!(m.key("Air Temperature"), m.key("air-temperature"));
        assert_eq!(m.key("temperature, air"), m.key("air temperature"));
        // but underscore-joined identifiers do NOT match (no splitting)
        assert_ne!(m.key("airtemp"), m.key("air temp"));
    }

    #[test]
    fn identifier_fingerprint_groups_case_styles() {
        let m = KeyMethod::IdentifierFingerprint;
        assert_eq!(m.key("airTemp"), m.key("air_temp"));
        assert_eq!(m.key("AIR TEMP"), m.key("air_temp"));
        assert_eq!(m.key("temp_air"), m.key("air_temp")); // sorted tokens
        assert_ne!(m.key("air_temp"), m.key("water_temp"));
    }

    #[test]
    fn ngram_catches_separator_variants_inside_identifiers() {
        // The classic use: whitespace/punctuation vanish during cleaning, so
        // "airtemp" / "air_temp" / "air temp" all share one key — which the
        // word-based fingerprint cannot do.
        let m = KeyMethod::NgramFingerprint { n: 2 };
        assert_eq!(m.key("airtemp"), m.key("air_temp"));
        assert_eq!(m.key("airtemp"), m.key("Air Temp"));
        assert_ne!(m.key("salinity"), m.key("velocity"));
        // repeated substrings collapse (distinct grams)
        assert_eq!(m.key("temptemp"), m.key("temptemptemp"));
    }

    #[test]
    fn ngram_size_one_is_character_set() {
        assert_eq!(ngram_fingerprint("aabbc", 1), "abc");
        assert_eq!(ngram_fingerprint("cab", 1), "abc");
        // anagrams collide at n=1
        assert_eq!(ngram_fingerprint("form", 1), ngram_fingerprint("from", 1));
    }

    #[test]
    fn ngram_short_string() {
        assert_eq!(ngram_fingerprint("a", 2), "a");
        assert_eq!(ngram_fingerprint("", 2), "");
    }

    #[test]
    fn metaphone_key_groups_soundalikes() {
        let m = KeyMethod::Metaphone;
        assert_eq!(m.key("air_temperature"), m.key("air_temperture"));
        assert_eq!(m.key("phosphate"), m.key("fosfate"));
        assert_ne!(m.key("nitrate"), m.key("phosphate"));
    }

    #[test]
    fn phonetic_preserves_numeric_tokens() {
        let m = KeyMethod::Metaphone;
        assert_ne!(m.key("fluores375"), m.key("fluores400"));
        let s = KeyMethod::Soundex;
        assert_ne!(s.key("fluores375"), s.key("fluores400"));
    }

    #[test]
    fn soundex_key_variant() {
        let m = KeyMethod::Soundex;
        assert_eq!(m.key("robert_temp"), m.key("rupert_temp"));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(KeyMethod::Fingerprint.name(), "fingerprint");
        assert_eq!(KeyMethod::NgramFingerprint { n: 2 }.name(), "ngram-fingerprint-2");
    }

    #[test]
    fn keys_are_idempotent() {
        for m in [
            KeyMethod::Fingerprint,
            KeyMethod::IdentifierFingerprint,
            KeyMethod::NgramFingerprint { n: 2 },
            KeyMethod::Metaphone,
            KeyMethod::Soundex,
        ] {
            for v in ["Air_Temperature", "chl a", "QA level 2"] {
                let k1 = m.key(v);
                // keying an already-keyed value must not change it further
                // (keys are normal forms for fingerprints; phonetic keys are
                // uppercase so re-keying lowercases— check fingerprints only)
                if matches!(m, KeyMethod::Fingerprint | KeyMethod::IdentifierFingerprint) {
                    assert_eq!(m.key(&k1), k1, "{} {v}", m.name());
                }
            }
        }
    }
}
