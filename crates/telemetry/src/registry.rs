//! The metrics registry: named counters, gauges, and histograms with
//! snapshot-on-read exposition.
//!
//! Registration (the first lookup of a name) takes a write lock; every
//! later lookup takes a read lock and clones an `Arc` handle. Hot paths
//! are expected to cache their handles (see the `OnceLock` pattern in the
//! instrumented crates), after which updates are single atomic operations.
//!
//! # Naming
//!
//! Metric names follow `metamess_<crate>_<name>` with an optional
//! Prometheus-style label set appended verbatim, e.g.
//! `metamess_pipeline_stage_micros{stage="scan-archive"}`. The
//! [`labeled`] helper builds such names; the Prometheus renderer folds the
//! embedded labels into bucket/sum/count series correctly.

use crate::metric::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builds a labeled metric name: `labeled("m", "stage", "scan")` →
/// `m{stage="scan"}`.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}=\"{value}\"}}")
}

#[derive(Default)]
struct Families {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named metrics.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    families: RwLock<Families>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(true)
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new(enabled: bool) -> MetricsRegistry {
        MetricsRegistry { enabled: AtomicBool::new(enabled), families: RwLock::default() }
    }

    /// Whether instrumentation should record. The disabled fast path in
    /// every instrumented crate is this single relaxed load plus a branch.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (existing values are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.families.read().counters.get(name) {
            return c.clone();
        }
        self.families.write().counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.families.read().gauges.get(name) {
            return g.clone();
        }
        self.families.write().gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.families.read().histograms.get(name) {
            return h.clone();
        }
        self.families.write().histograms.entry(name.to_string()).or_default().clone()
    }

    /// Zeroes every registered metric (handles stay valid; names stay
    /// registered).
    pub fn reset(&self) {
        let fam = self.families.read();
        for c in fam.counters.values() {
            c.reset();
        }
        for g in fam.gauges.values() {
            g.reset();
        }
        for h in fam.histograms.values() {
            h.reset();
        }
    }

    /// Copies the current value of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let fam = self.families.read();
        MetricsSnapshot {
            counters: fam.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: fam.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: fam.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Renders the registry as a JSON object (see
    /// [`MetricsSnapshot::render_json`] for the schema).
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

/// A point-in-time copy of a [`MetricsRegistry`], mergeable across
/// processes and renderable in three formats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Splits `name{labels}` into `(name, Some(labels))`.
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// `# HELP` text for a family, derived from the workspace naming scheme
/// (`_total` counters, `_micros` duration histograms).
fn help_text(base: &str, kind: &str) -> &'static str {
    if base.ends_with("_micros") {
        "Duration distribution in microseconds (log-bucketed, <=12.5% error)."
    } else if base.ends_with("_bytes") {
        "Size in bytes."
    } else {
        match kind {
            "counter" => "Monotonic count of events.",
            "gauge" => "Instantaneous value.",
            _ => "Distribution of recorded values.",
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `other` into `self`: counters and histograms accumulate,
    /// gauges take `other`'s (newer) value.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Prometheus text exposition (text format 0.0.4): `# HELP` and
    /// `# TYPE` lines per family, histogram bucket series with cumulative
    /// `le` labels (embedded labels from the metric name are preserved),
    /// and — when a histogram carries an exemplar — a comment line linking
    /// its worst observation to a trace id (comments are ignored by 0.0.4
    /// parsers, so the output stays conformant).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        let mut type_line = |out: &mut String, base: &str, kind: &str| {
            if last_family != base {
                let _ = writeln!(out, "# HELP {base} {}", help_text(base, kind));
                let _ = writeln!(out, "# TYPE {base} {kind}");
                last_family = base.to_string();
            }
        };
        for (name, v) in &self.counters {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let (base, _) = split_labels(name);
            type_line(&mut out, base, "gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            type_line(&mut out, base, "histogram");
            let series = |extra: &str| match labels {
                Some(l) if extra.is_empty() => format!("{{{l}}}"),
                Some(l) => format!("{{{l},{extra}}}"),
                None if extra.is_empty() => String::new(),
                None => format!("{{{extra}}}"),
            };
            let mut cumulative = 0u64;
            for &(bound, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "{base}_bucket{} {cumulative}",
                    series(&format!("le=\"{bound}\""))
                );
            }
            let _ = writeln!(out, "{base}_bucket{} {}", series("le=\"+Inf\""), h.count);
            let _ = writeln!(out, "{base}_sum{} {}", series(""), h.sum);
            let _ = writeln!(out, "{base}_count{} {}", series(""), h.count);
            if let Some((val, id)) = h.exemplar {
                let _ =
                    writeln!(out, "# exemplar {base}{} value={val} trace_id={id:032x}", series(""));
            }
        }
        out
    }

    /// JSON exposition:
    ///
    /// ```json
    /// {"counters":{"name":1},
    ///  "gauges":{"name":-2},
    ///  "histograms":{"name":{"count":2,"sum":9,"min":4,"max":5,
    ///                        "buckets":[[4,1],[5,1]]}}}
    /// ```
    ///
    /// A histogram with an exemplar additionally carries
    /// `"exemplar":{"value":N,"trace_id":"<32 hex>"}` after `buckets`;
    /// the key is omitted entirely when no exemplar was recorded.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (ix, (k, v)) in self.counters.iter().enumerate() {
            if ix > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (ix, (k, v)) in self.gauges.iter().enumerate() {
            if ix > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(k));
        }
        out.push_str("},\"histograms\":{");
        for (ix, (k, h)) in self.histograms.iter().enumerate() {
            if ix > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_escape(k),
                h.count,
                h.sum,
                h.min,
                h.max
            );
            for (bx, &(bound, n)) in h.buckets.iter().enumerate() {
                if bx > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{bound},{n}]");
            }
            out.push(']');
            if let Some((val, id)) = h.exemplar {
                let _ = write!(out, ",\"exemplar\":{{\"value\":{val},\"trace_id\":\"{id:032x}\"}}");
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// A compact human-readable table (the `metamess stats` default view).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k:<58} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(out, "  {k:<58} {v:>12}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs):\n");
            let _ = writeln!(
                out,
                "  {:<58} {:>8} {:>9} {:>9} {:>9} {:>9}",
                "name", "count", "mean", "p50", "p95", "p99"
            );
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {k:<58} {:>8} {:>9.1} {:>9} {:>9} {:>9}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99)
                );
            }
        }
        if out.is_empty() {
            out.push_str("no metrics recorded\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_once_then_shared() {
        let r = MetricsRegistry::new(true);
        let a = r.counter("metamess_test_total");
        let b = r.counter("metamess_test_total");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("metamess_test_total").get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_and_reset() {
        let r = MetricsRegistry::new(true);
        r.counter("c").add(5);
        r.gauge("g").set(-2);
        r.histogram("h").record(10);
        let s = r.snapshot();
        assert_eq!(s.counters["c"], 5);
        assert_eq!(s.gauges["g"], -2);
        assert_eq!(s.histograms["h"].count, 1);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counters["c"], 0);
        assert_eq!(s.gauges["g"], 0);
        assert_eq!(s.histograms["h"].count, 0);
    }

    #[test]
    fn enabled_flag_toggles() {
        let r = MetricsRegistry::new(true);
        assert!(r.enabled());
        r.set_enabled(false);
        assert!(!r.enabled());
    }

    #[test]
    fn prometheus_render_shapes() {
        let r = MetricsRegistry::new(true);
        r.counter("metamess_x_total").add(3);
        r.counter(&labeled("metamess_y_total", "kind", "a")).add(1);
        r.counter(&labeled("metamess_y_total", "kind", "b")).add(2);
        r.gauge("metamess_g").set(7);
        let h = r.histogram(&labeled("metamess_h_micros", "span", "s"));
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE metamess_x_total counter"), "{text}");
        assert!(text.contains("# HELP metamess_x_total Monotonic count of events."), "{text}");
        assert!(text.contains("metamess_x_total 3"));
        // one HELP/TYPE pair for the whole labeled family
        assert_eq!(text.matches("# TYPE metamess_y_total counter").count(), 1, "{text}");
        assert_eq!(text.matches("# HELP metamess_y_total").count(), 1, "{text}");
        assert!(text.contains("metamess_y_total{kind=\"a\"} 1"));
        assert!(text.contains("# TYPE metamess_g gauge"));
        // histogram series fold the name's labels in with le
        assert!(text.contains("metamess_h_micros_bucket{span=\"s\",le=\"3\"} 1"), "{text}");
        assert!(text.contains("metamess_h_micros_bucket{span=\"s\",le=\"+Inf\"} 2"));
        assert!(text.contains("# HELP metamess_h_micros Duration distribution"), "{text}");
        assert!(text.contains("metamess_h_micros_sum{span=\"s\"} 103"));
        assert!(text.contains("metamess_h_micros_count{span=\"s\"} 2"));
        // every HELP line directly precedes its TYPE line
        let lines: Vec<&str> = text.lines().collect();
        for (ix, line) in lines.iter().enumerate() {
            if line.starts_with("# HELP ") {
                assert!(lines[ix + 1].starts_with("# TYPE "), "{text}");
            }
        }
    }

    #[test]
    fn prometheus_exemplar_is_a_comment_line() {
        let r = MetricsRegistry::new(true);
        let h = r.histogram(&labeled("metamess_h_micros", "span", "s"));
        h.record_with_exemplar(500, 0xBEEF);
        let text = r.render_prometheus();
        let exemplar =
            text.lines().find(|l| l.contains("exemplar")).expect("exemplar line rendered");
        assert!(exemplar.starts_with('#'), "must be a comment for 0.0.4 parsers: {exemplar}");
        assert!(exemplar.contains("value=500"), "{exemplar}");
        assert!(exemplar.contains(&format!("trace_id={:032x}", 0xBEEFu128)), "{exemplar}");
    }

    #[test]
    fn json_render_includes_exemplar_only_when_present() {
        let r = MetricsRegistry::new(true);
        r.histogram("plain").record(4);
        let json = r.render_json();
        assert!(!json.contains("exemplar"), "{json}");
        r.histogram("plain").record_with_exemplar(9, 0xAB);
        let json = r.render_json();
        assert!(
            json.contains(&format!(
                "\"exemplar\":{{\"value\":9,\"trace_id\":\"{:032x}\"}}",
                0xABu128
            )),
            "{json}"
        );
    }

    #[test]
    fn json_render_escapes_label_quotes() {
        let r = MetricsRegistry::new(true);
        r.counter(&labeled("m", "k", "v")).inc();
        let json = r.render_json();
        assert!(json.contains("\"m{k=\\\"v\\\"}\":1"), "{json}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 1);
        a.gauges.insert("g".into(), 1);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 2);
        b.counters.insert("d".into(), 5);
        b.gauges.insert("g".into(), 9);
        a.merge(&b);
        assert_eq!(a.counters["c"], 3);
        assert_eq!(a.counters["d"], 5);
        assert_eq!(a.gauges["g"], 9, "gauges take the newer value");
    }

    #[test]
    fn table_render_lists_everything() {
        let r = MetricsRegistry::new(true);
        r.counter("c").add(1);
        r.histogram("h").record(5);
        let t = r.snapshot().render_table();
        assert!(t.contains("counters:"));
        assert!(t.contains("histograms"));
        assert!(t.contains("p99"));
        assert_eq!(MetricsSnapshot::default().render_table(), "no metrics recorded\n");
    }
}
