//! Criterion bench: archive harvesting — full scan vs incremental rescan
//! (curatorial activity 2's cost profile) and per-format parse throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use metamess_archive::{generate, ArchiveSpec};
use metamess_core::catalog::Catalog;
use metamess_formats::{parse_cdl, parse_csv, parse_obslog, CsvOptions};
use metamess_harvest::{harvest, observatory_rules, HarvestConfig, MemorySource, ScanConfig};
use std::hint::black_box;

fn config() -> HarvestConfig {
    HarvestConfig {
        scan: ScanConfig::default(),
        naming: observatory_rules(),
        pipeline_run: 1,
        parallelism: 1,
    }
}

fn bench_harvest(c: &mut Criterion) {
    let archive = generate(&ArchiveSpec::default());
    let source = MemorySource { files: &archive.files };

    c.bench_function("harvest/full-scan", |b| {
        b.iter(|| black_box(harvest(black_box(&source), &config(), None).unwrap()))
    });

    let parallel = HarvestConfig { parallelism: 4, ..config() };
    c.bench_function("harvest/full-scan-4-workers", |b| {
        b.iter(|| black_box(harvest(black_box(&source), &parallel, None).unwrap()))
    });

    // Previous catalog in place: everything unchanged → fingerprint-only.
    let first = harvest(&source, &config(), None).unwrap();
    let mut prev = Catalog::new();
    for f in first.features {
        prev.put(f);
    }
    c.bench_function("harvest/incremental-unchanged", |b| {
        b.iter(|| black_box(harvest(black_box(&source), &config(), Some(&prev)).unwrap()))
    });
    c.bench_function("harvest/incremental-unchanged-4-workers", |b| {
        b.iter(|| black_box(harvest(black_box(&source), &parallel, Some(&prev)).unwrap()))
    });
}

fn bench_parsers(c: &mut Criterion) {
    let archive = generate(&ArchiveSpec::default());
    let pick = |suffix: &str| {
        archive
            .files
            .iter()
            .find(|(p, _)| p.ends_with(suffix))
            .map(|(_, c)| c.clone())
            .expect("format present")
    };
    let csv = pick(".csv");
    let cdl = pick(".cdl");
    let obslog = pick(".obslog");

    c.bench_function("formats/parse-csv", |b| {
        b.iter(|| black_box(parse_csv(black_box(&csv), &CsvOptions::default()).unwrap()))
    });
    c.bench_function("formats/parse-cdl", |b| {
        b.iter(|| black_box(parse_cdl(black_box(&cdl)).unwrap()))
    });
    c.bench_function("formats/parse-obslog", |b| {
        b.iter(|| black_box(parse_obslog(black_box(&obslog)).unwrap()))
    });
}

criterion_group!(benches, bench_harvest, bench_parsers);
criterion_main!(benches);
