//! # metamess-core
//!
//! Core types for *Taming the Metadata Mess* (Megler, 2013): the dynamic
//! value model harvested from archive files, geospatial and temporal
//! primitives, one-pass summaries, the per-dataset **feature** record, the
//! metadata **catalog** (working and published), and a durable snapshot+WAL
//! store with crash recovery.
//!
//! Everything downstream — harvesting, transformation, discovery, ranked
//! search, the wrangling pipeline — builds on these types.

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod feature;
pub mod geo;
pub mod id;
pub mod stats;
pub mod store;
pub mod text;
pub mod time;
pub mod value;

pub use catalog::{Catalog, CatalogPair, Mutation};
pub use error::{Error, Result};
pub use feature::{DatasetFeature, NameResolution, Provenance, VariableFeature, VariableFlags};
pub use geo::{GeoBBox, GeoPoint};
pub use id::{DatasetId, VariableId};
pub use stats::{ColumnSummary, NumericSummary};
pub use store::{
    DurableCatalog, FaultKind, FaultPlan, FaultVfs, RecoveryMode, RecoveryReport, RunLedger,
    StageRecord, StdVfs, StoreOptions, Vfs,
};
pub use time::{TimeInterval, Timestamp};
pub use value::{Record, Value};
