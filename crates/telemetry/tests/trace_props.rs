//! Property tests for request-scoped tracing: parent/child span durations
//! nest (the sum of direct children never exceeds their parent), and the
//! flight-recorder ring never exceeds its bound under concurrent writers.

use metamess_telemetry::trace::{
    self, FlightRecorder, SpanRecord, TraceRecord, MAX_SPANS, NO_PARENT, NO_SHARD,
};
use metamess_telemetry::TraceContext;
use proptest::prelude::*;

/// Static span names by nesting depth (trace spans require `&'static str`).
const NAMES: [&str; 6] = ["depth.0", "depth.1", "depth.2", "depth.3", "depth.4", "depth.5"];

/// A little opaque work so spans accumulate nonzero time now and then.
fn spin() {
    for i in 0..64u64 {
        std::hint::black_box(i.wrapping_mul(0x9E37_79B9));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Drives a random open/close/work sequence of nested spans through
    /// the real clock path, then checks the recorded tree: parents precede
    /// children, children start no earlier than their parent, and the sum
    /// of direct children's micros never exceeds the parent's micros.
    #[test]
    fn child_micros_nest_within_parent(ops in proptest::collection::vec(0u8..3, 0..48)) {
        let ctx = TraceContext::start(1.0);
        prop_assert!(ctx.sampled, "rate 1.0 always samples");
        prop_assert!(trace::begin(&ctx, "root"));
        let mut stack = Vec::new();
        for op in ops {
            match op {
                0 if stack.len() < NAMES.len() => stack.push(trace::enter(NAMES[stack.len()])),
                1 => {
                    // Vec::pop drops the most recently opened guard — the
                    // LIFO order the parent stack requires.
                    let _ = stack.pop();
                }
                _ => spin(),
            }
        }
        while let Some(guard) = stack.pop() {
            drop(guard);
        }
        let fin = trace::end(u64::MAX).expect("a trace was active");
        let rec = trace::flight().find(fin.trace_id).expect("sampled trace reaches the ring");
        let spans = rec.spans();
        prop_assert!(!spans.is_empty());
        prop_assert_eq!(spans[0].parent, NO_PARENT);
        prop_assert_eq!(rec.root_micros(), fin.micros);
        let mut child_sum = vec![0u64; spans.len()];
        for (ix, s) in spans.iter().enumerate().skip(1) {
            let p = s.parent as usize;
            prop_assert!(p < ix, "parent index precedes the child");
            prop_assert!(
                s.start_micros >= spans[p].start_micros,
                "child {} starts before parent {}", s.name, spans[p].name
            );
            child_sum[p] += s.micros;
        }
        for (ix, s) in spans.iter().enumerate() {
            prop_assert!(
                child_sum[ix] <= s.micros,
                "children of {} sum to {}µs > parent's {}µs",
                s.name, child_sum[ix], s.micros
            );
        }
    }
}

fn record_with_id(id: u128) -> TraceRecord {
    let empty =
        SpanRecord { name: "", parent: NO_PARENT, start_micros: 0, micros: 0, shard: NO_SHARD };
    let mut spans = [empty; MAX_SPANS];
    spans[0] =
        SpanRecord { name: "t", parent: NO_PARENT, start_micros: 0, micros: 1, shard: NO_SHARD };
    TraceRecord {
        trace_id: id,
        sampled: true,
        slow: false,
        shards_visited: 0,
        shards_pruned: 0,
        dropped_spans: 0,
        span_count: 1,
        spans,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Hammers a ring from several threads at once; the snapshot must
    /// never exceed the configured bound, every push must be accounted
    /// for, and (absent lapping skips) the ring must end exactly full.
    #[test]
    fn ring_never_exceeds_bound_under_concurrent_writers(
        cap in 1usize..24,
        threads in 1usize..5,
        per_thread in 1usize..40,
    ) {
        let ring = FlightRecorder::new(cap);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let ring = &ring;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        ring.push(&record_with_id((t * 10_000 + i + 1) as u128));
                        assert!(ring.snapshot().len() <= cap, "ring exceeded its bound");
                    }
                });
            }
        });
        prop_assert_eq!(ring.completed(), (threads * per_thread) as u64);
        let snap = ring.snapshot();
        prop_assert!(snap.len() <= cap);
        if ring.skipped() == 0 {
            prop_assert_eq!(snap.len(), cap.min(threads * per_thread));
        }
    }
}
