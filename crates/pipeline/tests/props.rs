//! Property tests for the wrangling pipeline over randomized mess
//! intensities and archive shapes.

use metamess_archive::{generate, ArchiveSpec, MessIntensity};
use metamess_pipeline::{ArchiveInput, Pipeline, PipelineContext};
use metamess_vocab::Vocabulary;
use proptest::prelude::*;

/// One random archive edit between incremental pipeline runs.
#[derive(Debug, Clone)]
enum Edit {
    /// Append junk to the file at (index % len) — may also make it
    /// unparseable, which must drop it from the catalog on both paths.
    Modify(usize),
    /// Remove the file at (index % len), keeping at least one file.
    Remove(usize),
    /// Add a fresh small CSV under `extra/`.
    Add(u32),
}

fn arb_edits() -> impl Strategy<Value = Vec<Edit>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..64).prop_map(Edit::Modify),
            (0usize..64).prop_map(Edit::Remove),
            (0u32..1000).prop_map(Edit::Add),
        ],
        1..5,
    )
}

fn apply_edit(files: &mut Vec<(String, String)>, edit: &Edit) {
    match edit {
        Edit::Modify(ix) => {
            let ix = ix % files.len();
            files[ix].1.push_str("\njunk-appended-line");
        }
        Edit::Remove(ix) => {
            if files.len() > 1 {
                let ix = ix % files.len();
                files.remove(ix);
            }
        }
        Edit::Add(n) => files.push((
            format!("extra/added_{n}.csv"),
            "time,temp,sal\n2010-01-01T00:00:00Z,9.5,28.1\n2010-01-01T01:00:00Z,9.7,28.3\n"
                .to_string(),
        )),
    }
}

/// Published entries with the run-dependent provenance stamp normalized
/// away (`pipeline_run` is the only wall-clock-like field; content
/// fingerprints, lengths and formats must match exactly).
fn normalized_entries(
    c: &metamess_core::catalog::Catalog,
) -> Vec<metamess_core::feature::DatasetFeature> {
    let mut out: Vec<_> = c.iter().cloned().collect();
    for f in &mut out {
        f.provenance.pipeline_run = 0;
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out
}

fn arb_spec() -> impl Strategy<Value = ArchiveSpec> {
    (
        0u64..10_000,
        1usize..4,
        0usize..3,
        1usize..4,
        (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.3, 0.0f64..1.0, 0.0f64..0.4),
    )
        .prop_map(|(seed, stations, cruises, months, (mis, syn, abbr, exc, amb))| {
            ArchiveSpec {
                seed,
                stations,
                cruises,
                glider_missions: 1,
                months,
                rows_per_file: 8,
                mess: MessIntensity {
                    misspelling: mis,
                    synonym: syn,
                    abbreviation: abbr,
                    excessive: exc,
                    ambiguous: amb,
                },
                include_malformed: true,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_never_fails_and_resolution_is_monotone(spec in arb_spec()) {
        let archive = generate(&spec);
        let n_datasets = archive.truth.datasets.len();
        let mut ctx = PipelineContext::new(
            ArchiveInput::Memory(archive.files),
            Vocabulary::observatory_default(),
        );
        let mut pipeline = Pipeline::standard();
        let report = pipeline.run(&mut ctx).unwrap();

        // every well-formed dataset published, malformed reported not fatal
        prop_assert_eq!(ctx.catalogs.published.len(), n_datasets);
        prop_assert_eq!(
            report.stage("scan-archive").unwrap().errors.len(),
            archive.truth.malformed.len()
        );
        // resolution monotone across the chain
        let traj = report.resolution_trajectory();
        for w in traj.windows(2) {
            prop_assert!(w[1].1 >= w[0].1 - 1e-9, "{traj:?}");
        }
        // QA flags only on QA-truth columns (marking never misfires)
        for td in &archive.truth.datasets {
            let d = ctx.catalogs.published.get_by_path(&td.path).unwrap();
            for tv in &td.variables {
                if let Some(v) = d.variable(&tv.harvested) {
                    if v.flags.qa {
                        prop_assert!(
                            tv.qa || tv.harvested.ends_with("_flag"),
                            "false QA mark on {} in {}",
                            tv.harvested,
                            td.path
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rerun_is_idempotent(spec in arb_spec()) {
        let archive = generate(&spec);
        let mut ctx = PipelineContext::new(
            ArchiveInput::Memory(archive.files),
            Vocabulary::observatory_default(),
        );
        let mut pipeline = Pipeline::standard();
        pipeline.run(&mut ctx).unwrap();
        let first = ctx.catalogs.published.clone();
        let r2 = pipeline.run(&mut ctx).unwrap();
        // nothing rescanned, published catalog entries unchanged
        prop_assert_eq!(r2.stage("scan-archive").unwrap().changed, 0);
        let ids1: Vec<_> = first.iter().map(|d| d.id).collect();
        let ids2: Vec<_> = ctx.catalogs.published.iter().map(|d| d.id).collect();
        prop_assert_eq!(ids1, ids2);
        for d in first.iter() {
            let d2 = ctx.catalogs.published.get(d.id).unwrap();
            prop_assert_eq!(d, d2);
        }
    }

    #[test]
    fn incremental_run_matches_scratch_run(spec in arb_spec(), edits in arb_edits()) {
        let archive = generate(&spec);
        let mut files = archive.files;
        let mut inc = PipelineContext::new(
            ArchiveInput::Memory(files.clone()),
            Vocabulary::observatory_default(),
        );
        let mut pipeline = Pipeline::standard();
        pipeline.run(&mut inc).unwrap();
        // evolve the archive one edit at a time, re-running incrementally
        for e in &edits {
            apply_edit(&mut files, e);
            inc.archive = ArchiveInput::Memory(files.clone());
            pipeline.run(&mut inc).unwrap();
        }
        // a from-scratch run over the final archive must publish the same
        // catalog (modulo the pipeline_run provenance stamp)
        let mut scratch = PipelineContext::new(
            ArchiveInput::Memory(files),
            Vocabulary::observatory_default(),
        );
        Pipeline::standard().run(&mut scratch).unwrap();
        prop_assert_eq!(
            normalized_entries(&inc.catalogs.published),
            normalized_entries(&scratch.catalogs.published)
        );
    }

    #[test]
    fn zero_mess_resolves_completely(seed in 0u64..5_000) {
        let spec = ArchiveSpec {
            seed,
            stations: 2,
            cruises: 1,
            glider_missions: 1,
            months: 2,
            rows_per_file: 6,
            mess: MessIntensity {
                misspelling: 0.0,
                synonym: 0.0,
                abbreviation: 0.0,
                excessive: 0.0,
                ambiguous: 0.0,
            },
            include_malformed: false,
        };
        let archive = generate(&spec);
        let mut ctx = PipelineContext::new(
            ArchiveInput::Memory(archive.files),
            Vocabulary::observatory_default(),
        );
        Pipeline::standard().run(&mut ctx).unwrap();
        // all names are canonical; resolution is total
        prop_assert!(
            (ctx.catalogs.published.resolution_fraction() - 1.0).abs() < 1e-12,
            "{}",
            ctx.catalogs.published.resolution_fraction()
        );
    }
}
