//! **E4 — Figure: Example Dataset Summary Page.**
//!
//! Renders dataset summary pages for the top search hits and verifies that
//! every field the poster's page displays — dataset info, per-variable
//! name/canonical/unit/range, QA marking, hierarchy — is populated from the
//! catalog.
//!
//! ```text
//! cargo run --release -p metamess-bench --bin exp4_dataset_summary
//! ```

use metamess_archive::ArchiveSpec;
use metamess_bench::wrangle_archive;
use metamess_search::{render_summary, Query, SearchEngine};

fn main() {
    println!("E4: dataset summary pages\n");
    let (ctx, _) = wrangle_archive(&ArchiveSpec::default());
    let engine = SearchEngine::build(&ctx.catalogs.published, ctx.vocab.clone());
    let q = Query::parse(
        "near 45.5,-124.4 within 50km from 2010-04-01 to 2010-09-30 \
         with temperature between 5 and 10 limit 3",
    )
    .unwrap();
    let hits = engine.search(&q);
    for h in &hits {
        let d = engine.dataset(h.id).expect("hit resolves");
        println!("{}", render_summary(d));
    }

    // Field-coverage audit over the whole catalog: the poster's page shows
    // dataset & variable information from the metadata catalog — check the
    // catalog can actually populate it everywhere.
    let mut datasets = 0usize;
    let mut with_bbox = 0usize;
    let mut with_time = 0usize;
    let mut with_source = 0usize;
    let mut vars = 0usize;
    let mut vars_with_range = 0usize;
    let mut vars_with_unit = 0usize;
    let mut vars_with_canonical_unit = 0usize;
    let mut vars_with_hierarchy = 0usize;
    for d in ctx.catalogs.published.iter() {
        datasets += 1;
        with_bbox += d.bbox.is_some() as usize;
        with_time += d.time.is_some() as usize;
        with_source += d.source.is_some() as usize;
        for v in &d.variables {
            vars += 1;
            vars_with_range += v.value_range().is_some() as usize;
            vars_with_unit += v.unit.is_some() as usize;
            vars_with_canonical_unit += v.canonical_unit.is_some() as usize;
            vars_with_hierarchy += (!v.hierarchy.is_empty()) as usize;
        }
    }
    println!("summary-page field coverage across the catalog:");
    println!("  datasets: {datasets}; with location {with_bbox}, with time {with_time}, with source {with_source}");
    println!(
        "  variables: {vars}; with value range {vars_with_range}, with unit {vars_with_unit}, \
         with canonical unit {vars_with_canonical_unit}, with hierarchy {vars_with_hierarchy}"
    );
    assert_eq!(datasets, with_bbox, "every dataset must render a location");
    assert_eq!(datasets, with_time, "every dataset must render a time range");
}
