//! **E8 — serving under load: throughput, tail latency, shedding, drain.**
//!
//! Runs the embedded HTTP search service (`metamess serve`) in-process
//! over a wrangled store and measures the serving properties it promises:
//! closed-loop throughput with latency percentiles, a hot reload under
//! load with zero failed requests, a graceful drain with **zero dropped
//! in-flight requests**, and deterministic shedding (an immediate `503
//! Retry-After`, never a hang) when the accept queue is full.
//!
//! ```text
//! cargo run --release -p metamess-bench --bin exp8_serve \
//!     [-- --quick] [--json [path]] [--baseline <path>]
//! ```
//!
//! `--json` additionally writes a schema-stable `BENCH_serve.json` with
//! throughput, p50/p95/p99 latency, shed rate, the drain outcome, and the
//! `trace_overhead.*` scenario: the same load served untraced
//! (`--trace-sample-rate 0.0`) and fully head-sampled (rate 1.0), with a
//! hard in-process gate that full sampling stays within 10% of the
//! untraced p99 (+2ms noise floor).
//! The `event_loop.*` scenario stresses the readiness loop directly:
//! closed-loop load at 10x the worker count while eight slow-loris
//! connections trickle one byte per 100ms — under the old
//! thread-per-connection design those eight alone would own every worker.
//!
//! `--baseline <path>` compares this run's `*.p99_micros` metrics against
//! a committed report and exits nonzero on a >25% regression (small
//! absolute values are ignored as scheduler noise); when the file does not
//! exist yet it is bootstrapped from this run instead.

use metamess_archive::ArchiveSpec;
use metamess_bench::{json_flag, wrangle_archive, BenchReport};
use metamess_core::{DatasetFeature, DurableCatalog, StoreOptions};
use metamess_server::{ServeState, ServeSummary, Server, ServerConfig, ShutdownHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct Running {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    thread: JoinHandle<metamess_core::Result<ServeSummary>>,
}

fn start(store: &Path, workers: usize, queue_depth: usize) -> Running {
    let config =
        ServerConfig { workers, queue_depth, poll_interval: None, ..ServerConfig::default() };
    let state = Arc::new(ServeState::open(store).expect("open store"));
    let server = Server::bind(state, config).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    Running { addr, shutdown, thread }
}

impl Running {
    fn stop(self) -> ServeSummary {
        self.shutdown.trigger();
        self.thread.join().expect("server thread").expect("serve summary")
    }
}

/// One closed-loop exchange (`connection: close`): status, body, and the
/// full connect-to-EOF round trip in µs. `None` means the transport failed
/// mid-exchange — the experiment treats that as a dropped request.
fn exchange(addr: SocketAddr, request: &[u8]) -> Option<(u16, String, u64)> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    stream.write_all(request).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8_lossy(&raw).to_string();
    let status: u16 = text.split(' ').nth(1)?.parse().ok()?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Some((status, body, start.elapsed().as_micros() as u64))
}

fn get_bytes(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n").into_bytes()
}

fn post_bytes(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let ix = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[ix - 1]
}

/// Fails the run (exit 1) when any `*.p99_micros` metric regressed more
/// than 25% against the committed baseline report. Values at or below
/// `NOISE_FLOOR_MICROS` are skipped: a 2ms p99 doubling to 4ms on a busy
/// CI box is scheduler jitter, not a lost event loop.
fn check_baseline(report: &BenchReport, path: &Path) {
    const NOISE_FLOOR_MICROS: u64 = 2_000;
    if !path.exists() {
        report.write(path).expect("bootstrap baseline report");
        println!("\nbaseline {} missing -- bootstrapped it from this run", path.display());
        return;
    }
    let text = std::fs::read_to_string(path).expect("read baseline report");
    let committed: serde_json::Value = serde_json::from_str(&text).expect("parse baseline report");
    let metrics = committed["metrics"].as_object().expect("baseline metrics map");
    let current: serde_json::Value =
        serde_json::from_str(&report.render()).expect("current report renders valid json");
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (key, base) in metrics {
        if !key.ends_with(".p99_micros") {
            continue;
        }
        let (Some(base), Some(now)) = (base.as_u64(), current["metrics"][key].as_u64()) else {
            continue;
        };
        compared += 1;
        if now <= NOISE_FLOOR_MICROS || base == 0 {
            continue;
        }
        if now as f64 > base as f64 * 1.25 {
            let pct = (now as f64 / base as f64 - 1.0) * 100.0;
            regressions.push(format!("{key}: {base}us -> {now}us (+{pct:.0}%)"));
        }
    }
    if regressions.is_empty() {
        println!("\nbaseline {}: {compared} p99 metric(s) within 25%", path.display());
    } else {
        eprintln!("\np99 regression vs baseline {}:", path.display());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = json_flag(&args, "BENCH_serve.json");
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|ix| args.get(ix + 1))
        .filter(|p| !p.starts_with("--"))
        .map(std::path::PathBuf::from);
    let mut report = BenchReport::new("serve");

    println!(
        "E8: embedded HTTP search service under load{}\n",
        if quick { " (--quick)" } else { "" }
    );

    // A wrangled store on disk, exactly as `metamess wrangle` leaves it.
    let store = std::env::temp_dir().join(format!("metamess-exp8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    std::fs::create_dir_all(&store).unwrap();
    let spec = if quick { ArchiveSpec::tiny() } else { ArchiveSpec::default() };
    let (ctx, _) = wrangle_archive(&spec);
    {
        let mut s = DurableCatalog::open(store.join("catalog"), StoreOptions::default()).unwrap();
        s.replace_with(&ctx.catalogs.published).unwrap();
        s.checkpoint().unwrap();
    }
    ctx.vocab.save(store.join("vocabulary.json")).unwrap();
    println!("store: {} datasets published", ctx.catalogs.published.len());

    // --- Closed-loop load: C clients, one connection per request. -------
    let clients = if quick { 4usize } else { 8 };
    let per_client = if quick { 25usize } else { 150 };
    let server = start(&store, 4, 64);
    let addr = server.addr;
    let mix: Arc<Vec<Vec<u8>>> = Arc::new(vec![
        post_bytes("/search", r#"{"q":"with salinity limit 5"}"#),
        post_bytes("/search", r#"{"q":"with water_temperature limit 5"}"#),
        get_bytes("/browse"),
        get_bytes("/healthz"),
    ]);
    let t0 = Instant::now();
    let load: Vec<JoinHandle<(Vec<u64>, u64, u64, u64)>> = (0..clients)
        .map(|c| {
            let mix = mix.clone();
            std::thread::spawn(move || {
                let (mut samples, mut ok, mut shed, mut failed) = (Vec::new(), 0u64, 0u64, 0u64);
                for i in 0..per_client {
                    match exchange(addr, &mix[(c + i) % mix.len()]) {
                        Some((200, _, us)) => {
                            ok += 1;
                            samples.push(us);
                        }
                        Some((503, _, _)) => shed += 1,
                        Some((status, body, _)) => panic!("unexpected {status}: {body}"),
                        None => failed += 1,
                    }
                }
                (samples, ok, shed, failed)
            })
        })
        .collect();
    let mut samples = Vec::new();
    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
    for h in load {
        let (s, o, sh, f) = h.join().expect("client thread");
        samples.extend(s);
        ok += o;
        shed += sh;
        failed += f;
    }
    let elapsed = t0.elapsed();
    assert_eq!(failed, 0, "transport failures under plain load");
    let throughput = (ok + shed) as f64 / elapsed.as_secs_f64();
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    println!(
        "\nclosed-loop load: {clients} clients x {per_client} requests -> {throughput:.0} req/s \
         ({ok} ok, {shed} shed)"
    );
    println!(
        "  latency p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
        percentile(&sorted, 0.50),
        percentile(&sorted, 0.95),
        percentile(&sorted, 0.99),
        sorted.last().copied().unwrap_or(0)
    );
    report.set("load.clients", clients as u64);
    report.set("load.requests", (clients * per_client) as u64);
    report.set("load.ok", ok);
    report.set("load.shed", shed);
    report.set_f64("load.throughput_rps", throughput);
    report.record_samples("load.latency", &samples);

    // --- Hot reload under load: a republish swaps the epoch with zero ---
    // failed requests.
    let stop_flag = Arc::new(AtomicBool::new(false));
    let background = {
        let stop = stop_flag.clone();
        let probe = get_bytes("/healthz");
        std::thread::spawn(move || {
            let (mut done, mut failed) = (0u64, 0u64);
            while !stop.load(Ordering::Relaxed) {
                match exchange(addr, &probe) {
                    Some((200, _, _)) | Some((503, _, _)) => done += 1,
                    _ => failed += 1,
                }
            }
            (done, failed)
        })
    };
    {
        let mut s = DurableCatalog::open(store.join("catalog"), StoreOptions::default()).unwrap();
        s.put(DatasetFeature::new("2015/01/reload_probe.csv")).unwrap();
        s.checkpoint().unwrap();
    }
    let (status, body, _) = exchange(addr, &post_bytes("/admin/reload", "")).expect("reload");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"outcome\":\"reloaded\""), "{body}");
    std::thread::sleep(Duration::from_millis(100));
    stop_flag.store(true, Ordering::Relaxed);
    let (during, reload_failed) = background.join().expect("background client");
    assert_eq!(reload_failed, 0, "requests failed during the hot reload");
    println!("hot reload under load: epoch swapped, {during} requests during, 0 failed");
    report.set("reload.requests_during", during);
    report.set("reload.failed", reload_failed);

    // --- Graceful drain: shutdown lands while a wave is in flight; every
    // accepted request must still be answered.
    let wave_size = 8usize;
    let mut wave: Vec<TcpStream> = (0..wave_size)
        .map(|_| {
            let mut s = TcpStream::connect(addr).expect("connect wave");
            s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
            s.write_all(&post_bytes("/search", r#"{"q":"with salinity limit 5"}"#)).unwrap();
            s
        })
        .collect();
    // Let the accept loop take all of them into the queue, then pull the
    // plug with their responses still pending.
    std::thread::sleep(Duration::from_millis(300));
    let summary = server.stop();
    let mut answered = 0u64;
    for s in &mut wave {
        let mut raw = Vec::new();
        s.read_to_end(&mut raw).expect("read response across shutdown");
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 200"), "in-flight request unanswered: {text:?}");
        answered += 1;
    }
    assert_eq!(summary.dropped, 0, "graceful drain dropped queued work");
    assert_eq!(summary.reloads, 1);
    println!(
        "graceful drain: {answered}/{wave_size} in-flight answered, dropped={}, lifetime \
         served={}",
        summary.dropped, summary.served
    );
    report.set("drain.in_flight", wave_size as u64);
    report.set("drain.answered", answered);
    report.set("drain.dropped", summary.dropped);
    report.set("summary.served", summary.served);
    report.set("summary.shed", summary.shed);
    report.set("summary.reloads", summary.reloads);

    // --- Deterministic shedding: a zero-depth queue refuses everything ---
    // with a bounded-latency 503, never a hang.
    let shed_server = start(&store, 1, 0);
    let offered = 20u64;
    let mut refusal_latency = Vec::new();
    for _ in 0..offered {
        let (status, _, us) =
            exchange(shed_server.addr, &get_bytes("/healthz")).expect("shed response");
        assert_eq!(status, 503);
        refusal_latency.push(us);
    }
    let shed_summary = shed_server.stop();
    assert_eq!(shed_summary.shed, offered);
    assert_eq!(shed_summary.served, 0);
    println!(
        "shedding: {}/{} refused with 503 Retry-After, max refusal latency {:?}",
        shed_summary.shed,
        offered,
        Duration::from_micros(refusal_latency.iter().copied().max().unwrap_or(0))
    );
    report.set("shed.offered", offered);
    report.set("shed.refused", shed_summary.shed);
    report.set_f64("shed.rate", shed_summary.shed as f64 / offered as f64);
    report.record_samples("shed.refusal_latency", &refusal_latency);

    // --- Event-loop scenario: closed-loop load at 10x the worker count ---
    // while eight slow-loris connections trickle one byte per 100ms. The
    // stalled sockets cost the readiness loop nothing until their bytes
    // complete a request; under the old thread-per-connection design they
    // alone would have pinned every worker and the healthy p99 would be
    // the loris trickle time.
    let el_workers = 4usize;
    let el_server = start(&store, el_workers, 256);
    let el_addr = el_server.addr;
    let loris_count = 8usize;
    let stop_loris = Arc::new(AtomicBool::new(false));
    let loris: Vec<JoinHandle<()>> = (0..loris_count)
        .map(|_| {
            let stop = stop_loris.clone();
            std::thread::spawn(move || {
                let Ok(mut stream) = TcpStream::connect(el_addr) else { return };
                for byte in b"POST /search HTTP/1.1\r\nhost: bench\r\n".chunks(1) {
                    if stop.load(Ordering::Relaxed) || stream.write_all(byte).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
                // Hold the half-request open until the scenario ends;
                // dropping the stream then lets the server reap it.
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(50));
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(200));
    let el_clients = el_workers * 10;
    let el_per_client = if quick { 10usize } else { 40 };
    let t0 = Instant::now();
    let el_load: Vec<JoinHandle<(Vec<u64>, u64, u64, u64)>> = (0..el_clients)
        .map(|c| {
            let mix = mix.clone();
            std::thread::spawn(move || {
                let (mut samples, mut ok, mut shed, mut failed) = (Vec::new(), 0u64, 0u64, 0u64);
                for i in 0..el_per_client {
                    match exchange(el_addr, &mix[(c + i) % mix.len()]) {
                        Some((200, _, us)) => {
                            ok += 1;
                            samples.push(us);
                        }
                        Some((503, _, _)) => shed += 1,
                        Some((status, body, _)) => panic!("unexpected {status}: {body}"),
                        None => failed += 1,
                    }
                }
                (samples, ok, shed, failed)
            })
        })
        .collect();
    let mut el_samples = Vec::new();
    let (mut el_ok, mut el_shed, mut el_failed) = (0u64, 0u64, 0u64);
    for h in el_load {
        let (s, o, sh, f) = h.join().expect("event-loop client thread");
        el_samples.extend(s);
        el_ok += o;
        el_shed += sh;
        el_failed += f;
    }
    let el_elapsed = t0.elapsed();
    assert_eq!(el_failed, 0, "transport failures under 10x load with stalled clients");
    assert!(el_ok > 0, "no successful requests under 10x load");
    stop_loris.store(true, Ordering::Relaxed);
    for t in loris {
        t.join().expect("loris thread");
    }
    std::thread::sleep(Duration::from_millis(150));
    let el_summary = el_server.stop();
    let el_throughput = (el_ok + el_shed) as f64 / el_elapsed.as_secs_f64();
    let mut el_sorted = el_samples.clone();
    el_sorted.sort_unstable();
    println!(
        "\nevent loop: {el_clients} clients (10x {el_workers} workers) + {loris_count} slow-loris \
         -> {el_throughput:.0} req/s ({el_ok} ok, {el_shed} shed)"
    );
    println!(
        "  latency p50 {}µs  p95 {}µs  p99 {}µs  max {}µs",
        percentile(&el_sorted, 0.50),
        percentile(&el_sorted, 0.95),
        percentile(&el_sorted, 0.99),
        el_sorted.last().copied().unwrap_or(0)
    );
    report.set("event_loop.clients", el_clients as u64);
    report.set("event_loop.loris_connections", loris_count as u64);
    report.set("event_loop.requests", (el_clients * el_per_client) as u64);
    report.set("event_loop.ok", el_ok);
    report.set("event_loop.shed", el_shed);
    report.set("event_loop.dropped", el_summary.dropped);
    report.set_f64("event_loop.throughput_rps", el_throughput);
    report.record_samples("event_loop.latency", &el_samples);

    // --- Trace overhead: the same closed-loop load served untraced ------
    // (sample rate 0.0) and fully head-sampled (rate 1.0). Request-scoped
    // tracing is arena-backed and allocation-free on the happy path, so
    // full sampling must stay within 10% of the untraced p99 (plus a 2ms
    // noise floor for busy CI boxes) — the gate verify.sh enforces.
    let to_clients = if quick { 4usize } else { 8 };
    let to_per_client = if quick { 25usize } else { 100 };
    let mut overhead_p99 = [0u64; 2];
    for (ix, rate) in [0.0f64, 1.0].into_iter().enumerate() {
        let config = ServerConfig {
            workers: 4,
            queue_depth: 64,
            poll_interval: None,
            trace_sample_rate: rate,
            ..ServerConfig::default()
        };
        let state = Arc::new(ServeState::open(&store).expect("open store"));
        let tr_server = Server::bind(state, config).expect("bind");
        let tr_addr = tr_server.local_addr().expect("local addr");
        let tr_shutdown = tr_server.shutdown_handle();
        let tr_thread = std::thread::spawn(move || tr_server.run());
        // Warm the result cache and scoring scratch so both runs measure
        // the steady state.
        for req in mix.iter() {
            let (status, body, _) = exchange(tr_addr, req).expect("warmup");
            assert_eq!(status, 200, "{body}");
        }
        let handles: Vec<JoinHandle<Vec<u64>>> = (0..to_clients)
            .map(|c| {
                let mix = mix.clone();
                std::thread::spawn(move || {
                    let mut samples = Vec::new();
                    for i in 0..to_per_client {
                        match exchange(tr_addr, &mix[(c + i) % mix.len()]) {
                            Some((200, _, us)) => samples.push(us),
                            Some((503, _, _)) => {}
                            Some((status, body, _)) => panic!("unexpected {status}: {body}"),
                            None => panic!("transport failure in trace-overhead run"),
                        }
                    }
                    samples
                })
            })
            .collect();
        let mut tr_samples = Vec::new();
        for h in handles {
            tr_samples.extend(h.join().expect("trace-overhead client"));
        }
        tr_shutdown.trigger();
        tr_thread.join().expect("server thread").expect("serve summary");
        let mut tr_sorted = tr_samples.clone();
        tr_sorted.sort_unstable();
        overhead_p99[ix] = percentile(&tr_sorted, 0.99);
        let label = if ix == 0 { "untraced" } else { "traced" };
        report.record_samples(&format!("trace_overhead.{label}.latency"), &tr_samples);
    }
    let [untraced_p99, traced_p99] = overhead_p99;
    let gate = (untraced_p99 as f64 * 1.10) as u64 + 2_000;
    println!(
        "\ntrace overhead: p99 untraced {untraced_p99}µs vs traced {traced_p99}µs \
         (gate {gate}µs)"
    );
    assert!(
        traced_p99 <= gate,
        "full head-sampling costs more than 10% p99: {untraced_p99}µs -> {traced_p99}µs"
    );
    report.set("trace_overhead.gate_micros", gate);
    report.set_f64(
        "trace_overhead.p99_ratio",
        if untraced_p99 == 0 { 1.0 } else { traced_p99 as f64 / untraced_p99 as f64 },
    );

    if let Some(path) = json_path {
        report.write(&path).expect("write bench report");
        println!("\nwrote {} metrics to {}", report.len(), path.display());
    }
    if let Some(path) = baseline_path {
        check_baseline(&report, &path);
    }
}
