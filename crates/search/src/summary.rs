//! Text rendering of the two poster UI figures: the ranked-results list
//! ("Data Near Here" search interface) and the dataset summary page.

use crate::engine::SearchHit;
use metamess_core::feature::{DatasetFeature, NameResolution};
use std::fmt::Write as _;

/// Renders a ranked result list the way the search interface presents it.
pub fn render_results(hits: &[SearchHit]) -> String {
    let mut out = String::new();
    if hits.is_empty() {
        out.push_str("no results\n");
        return out;
    }
    for (rank, h) in hits.iter().enumerate() {
        let _ = writeln!(out, "{:>2}. [{:.3}] {}", rank + 1, h.score, h.title);
        let b = &h.breakdown;
        let mut facets: Vec<String> = Vec::new();
        if let Some(s) = b.space {
            facets.push(format!("space {s:.2}"));
        }
        if let Some(s) = b.time {
            facets.push(format!("time {s:.2}"));
        }
        if let Some(s) = b.variables {
            facets.push(format!("variables {s:.2}"));
        }
        if !facets.is_empty() {
            let _ = writeln!(out, "      {}  ({})", facets.join(" · "), h.path);
        }
        for (term, matched, s) in &b.variable_matches {
            match matched {
                Some(var) => {
                    let _ = writeln!(out, "      '{term}' matched column '{var}' ({s:.2})");
                }
                None => {
                    let _ = writeln!(out, "      '{term}' matched nothing");
                }
            }
        }
    }
    out
}

/// Renders the dataset summary page: "displays dataset & variable
/// information from metadata catalog".
pub fn render_summary(d: &DatasetFeature) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== {} ===", d.title);
    let _ = writeln!(out, "path:      {}", d.path);
    if let Some(s) = &d.source {
        let _ = writeln!(out, "source:    {s}");
    }
    let _ = writeln!(out, "records:   {}", d.record_count);
    if let Some(b) = &d.bbox {
        let _ = writeln!(out, "location:  {b}");
    }
    if let Some(t) = &d.time {
        let _ = writeln!(out, "time:      {t}");
    }
    let _ = writeln!(out, "format:    {}", d.provenance.format);
    if !d.external.is_empty() {
        let _ = writeln!(out, "metadata:");
        for (k, v) in &d.external {
            let _ = writeln!(out, "  {k}: {v}");
        }
    }
    let _ = writeln!(out, "variables:");
    let _ = writeln!(
        out,
        "  {:<24} {:<28} {:<8} {:>9} {:>9} {:>9}  flags",
        "column", "canonical", "unit", "min", "max", "mean"
    );
    for v in &d.variables {
        let canonical = match (&v.canonical_name, &v.resolution) {
            (Some(c), NameResolution::DiscoveredTranslation { method }) => {
                format!("{c} (discovered: {method})")
            }
            (Some(c), _) => c.clone(),
            (None, _) => "—".to_string(),
        };
        let (min, max, mean) = match v.value_range() {
            Some((lo, hi)) => {
                (format!("{lo:.2}"), format!("{hi:.2}"), format!("{:.2}", v.summary.mean))
            }
            None => ("—".into(), "—".into(), "—".into()),
        };
        let mut flags: Vec<&str> = Vec::new();
        if v.flags.qa {
            flags.push("qa");
        }
        if v.flags.ambiguous {
            flags.push("ambiguous");
        }
        if v.flags.hidden {
            flags.push("hidden");
        }
        let _ = writeln!(
            out,
            "  {:<24} {:<28} {:<8} {:>9} {:>9} {:>9}  {}",
            v.name,
            canonical,
            v.unit.as_deref().unwrap_or("—"),
            min,
            max,
            mean,
            flags.join(",")
        );
        if !v.hierarchy.is_empty() {
            let _ = writeln!(out, "  {:<24} hierarchy: {}", "", v.hierarchy.join(" > "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchEngine;
    use crate::query::Query;
    use metamess_core::catalog::Catalog;
    use metamess_core::feature::VariableFeature;
    use metamess_core::geo::{GeoBBox, GeoPoint};
    use metamess_core::time::{TimeInterval, Timestamp};
    use metamess_vocab::Vocabulary;

    fn dataset() -> DatasetFeature {
        let mut d = DatasetFeature::new("stations/saturn01/2010/06.csv");
        d.title = "Station saturn01, 2010-06".into();
        d.source = Some("saturn01".into());
        d.record_count = 96;
        d.bbox = Some(GeoBBox::point(GeoPoint::new(46.2, -123.9).unwrap()));
        d.time = Some(TimeInterval::new(
            Timestamp::from_ymd(2010, 6, 1).unwrap(),
            Timestamp::from_ymd(2010, 6, 28).unwrap(),
        ));
        d.external.insert("platform".into(), "buoy".into());
        let mut v = VariableFeature::new("wtemp");
        v.unit = Some("degC".into());
        v.resolve(
            "water_temperature",
            NameResolution::DiscoveredTranslation { method: "fingerprint".into() },
        );
        v.summary.observe(9.5);
        v.summary.observe(14.5);
        v.hierarchy = vec!["physical".into(), "temperature".into(), "water_temperature".into()];
        d.variables.push(v);
        let mut qa = VariableFeature::new("qa_level");
        qa.flags.qa = true;
        d.variables.push(qa);
        d
    }

    #[test]
    fn summary_contains_all_sections() {
        let s = render_summary(&dataset());
        assert!(s.contains("Station saturn01, 2010-06"));
        assert!(s.contains("source:    saturn01"));
        assert!(s.contains("records:   96"));
        assert!(s.contains("location:"));
        assert!(s.contains("2010-06-01T00:00:00Z"));
        assert!(s.contains("platform: buoy"));
        assert!(s.contains("wtemp"));
        assert!(s.contains("water_temperature (discovered: fingerprint)"));
        assert!(s.contains("degC"));
        assert!(s.contains("9.50"));
        assert!(s.contains("14.50"));
        assert!(s.contains("qa_level"));
        // QA flag shown in the detailed view (poster: "show in detailed
        // dataset views")
        assert!(s.lines().any(|l| l.contains("qa_level") && l.trim_end().ends_with("qa")));
        assert!(s.contains("physical > temperature > water_temperature"));
    }

    #[test]
    fn unresolved_variable_shows_dash() {
        let mut d = dataset();
        d.variables.push(VariableFeature::new("mystery"));
        let s = render_summary(&d);
        let line = s.lines().find(|l| l.contains("mystery")).unwrap();
        assert!(line.contains('—'));
    }

    #[test]
    fn results_rendering() {
        let mut c = Catalog::new();
        c.put(dataset());
        let e = SearchEngine::build(&c, Vocabulary::observatory_default());
        let q = Query::parse("near 46.2,-123.9 with water_temperature").unwrap();
        let hits = e.search(&q);
        let s = render_results(&hits);
        assert!(s.starts_with(" 1. ["));
        assert!(s.contains("Station saturn01"));
        assert!(s.contains("space 1.00"));
        assert!(s.contains("'water_temperature' matched column 'wtemp'"));
    }

    #[test]
    fn empty_results() {
        assert_eq!(render_results(&[]), "no results\n");
    }
}
