#!/usr/bin/env bash
# Tier-1 verification gate: build, test, lint, format.
#
# Usage: scripts/verify.sh
# Run from anywhere; it cd's to the repository root.

set -euo pipefail
cd "$(dirname "$0")/.."

# How many crash-consistency torture cases to run (fixed deterministic
# seeds 0..N in crates/core/tests/torture.rs). CI should raise this.
METAMESS_TORTURE_CASES="${METAMESS_TORTURE_CASES:-1000}"
export METAMESS_TORTURE_CASES

echo "==> crate registry preflight"
# Every later step needs the workspace's external deps (serde, proptest…).
# When the registry is unreachable this would otherwise die mid-build with
# a confusing resolver error — fail loudly and early instead.
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
  echo "verify: FAIL — cargo cannot resolve workspace dependencies." >&2
  echo "  The crate registry appears unreachable from this environment and" >&2
  echo "  no populated cargo cache/vendor dir exists. Restore network access" >&2
  echo "  to the registry (or vendor the dependencies) and re-run." >&2
  echo "  Per-file fallback checks: see .claude/skills/verify/SKILL.md" >&2
  exit 1
fi

echo "==> no stray println!/eprintln! in library crates"
# Library crates report through the telemetry registry (and its event!
# macro), never by printing. CLI binaries, the exp*/bench harnesses and
# tests are exempt. Comment lines (incl. doc examples) are ignored.
if grep -rnE '(println|eprintln)!' crates/*/src --include='*.rs' \
    | grep -v '^crates/bench/src/' \
    | grep -vE ':[0-9]+: *//' \
    | grep -vE ':[0-9]+: *#\[' \
    | grep -v 'tests/'; then
  echo "verify: FAIL — library crates must use metamess-telemetry, not print" >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q -p metamess-telemetry"
cargo test -q -p metamess-telemetry

echo "==> cargo test -q -p metamess-server (HTTP layer + socket integration)"
cargo test -q -p metamess-server

echo "==> trace zero-allocation gate (METAMESS_TELEMETRY=0 alloc guard)"
# With telemetry disabled, the tracing instrumentation threaded through
# the request hot path must not allocate at all — the counting-allocator
# test asserts exactly zero heap allocations for begin/span/end.
METAMESS_TELEMETRY=0 cargo test -q -p metamess-server --test alloc_guard

echo "==> serve smoke: exp8 --quick (load, shed, hot reload, drain, event loop)"
# The experiment asserts zero dropped in-flight requests across shutdown
# and reload, runs the 10x-load + slow-loris event-loop scenario, gates
# trace overhead (full head-sampling within 10% of the untraced p99 +2ms
# noise floor — asserted in-process by the trace_overhead scenario), and
# fails on a >25% p99 regression against the committed BENCH_serve.json
# (bootstrapped from this very run when the file does not exist yet);
# timeout guards against a hung event loop ever blocking CI.
timeout 300 cargo run --release -q -p metamess-bench --bin exp8_serve -- --quick \
  --baseline BENCH_serve.json

echo "==> sharding: bit-identity property tests"
cargo test -q -p metamess-search --test shard_props

echo "==> shard smoke: exp9 --quick (scatter-gather identity + pruning)"
# Hard-asserts sharded == unsharded for every layout and that the spatial/
# temporal partitioners actually prune shards on selective queries.
timeout 300 cargo run --release -q -p metamess-bench --bin exp9_shard_scaling -- --quick

echo "==> watch + serve: continuous-ingestion CLI integration test"
# `metamess watch` wrangles into the store, a live serve picks the next
# publish up through the in-place delta path, and the upload is searchable.
cargo test -q --test watch_cli

echo "==> ingest smoke: exp10 --quick (group-commit amortization, watch cycles, delta apply)"
# Hard-asserts ≥4x fewer fsyncs at a 50-harvest burst under the commit
# window, that unchanged cycles skip the pipeline, and that every watch
# publish reaches serve via the in-place delta path.
timeout 300 cargo run --release -q -p metamess-bench --bin exp10_ingest -- --quick

echo "==> remote shard protocol: codec properties + fault-injection + e2e fleet"
# Frame codec round-trip/truncation/CRC/version proptests, the
# FaultTransport coordinator suite (fail vs degrade semantics, retry
# budgets, circuit breaker), and real-TCP shardd fleets asserted
# bit-identical to local sharding — including a mid-run kill.
cargo test -q -p metamess-remote

echo "==> remote smoke: exp11 --quick (shardd fleet identity + partial results)"
# Hard-asserts remote scatter-gather is bit-identical to the in-process
# sharded engine at every fleet size, and that killing one shardd under
# the degrade policy marks every response partial with zero errors.
timeout 300 cargo run --release -q -p metamess-bench --bin exp11_remote -- --quick

echo "==> crash-consistency torture suite (${METAMESS_TORTURE_CASES} seeded cases)"
cargo test -q -p metamess-core --test torture --release

echo "==> group-commit torture suite (${METAMESS_TORTURE_CASES} seeded cases)"
# Crash inside the commit window ⇒ the recovered catalog is the acked
# prefix; compaction mid-fault never loses acked data.
cargo test -q -p metamess-core --test torture_group_commit --release

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo fmt --check"
cargo fmt --check

echo "verify: OK"
