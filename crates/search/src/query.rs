//! The query model and the "Data Near Here" text query language.
//!
//! The poster's example information need — *"observations collected near
//! [lat = 45.5, lon = -124.4] in mid-2010, with temperature between 5-10C"*
//! — is written:
//!
//! ```text
//! near 45.5,-124.4 within 50km from 2010-05-01 to 2010-08-31 with temperature between 5 and 10
//! ```
//!
//! Clauses, all optional, in any order:
//! * `near <lat>,<lon> [within <km>km]` — spatial point + radius
//! * `in <minlat>,<minlon>..<maxlat>,<maxlon>` — spatial region
//! * `from <date> to <date>` / `during <YYYY>[-MM]` — time window
//! * `with <variable> [between <a> and <b>]` — variable term (repeatable)

use metamess_core::error::{Error, Result};
use metamess_core::geo::{GeoBBox, GeoPoint};
use metamess_core::time::{TimeInterval, Timestamp};
use serde::{Deserialize, Serialize};

/// Spatial constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpatialTerm {
    /// Near a point, with a characteristic radius in km.
    Near {
        /// Query point.
        point: GeoPoint,
        /// Characteristic radius (km); distance decays against this scale.
        radius_km: f64,
    },
    /// Within / near a region.
    Region(GeoBBox),
}

/// One variable term of a query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariableTerm {
    /// Variable name as the scientist typed it.
    pub name: String,
    /// Desired value range, when given.
    pub range: Option<(f64, f64)>,
}

/// Relative weights of the three facet families (normalized at use).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Spatial facet weight.
    pub space: f64,
    /// Temporal facet weight.
    pub time: f64,
    /// Variable facet weight.
    pub variables: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights { space: 1.0, time: 1.0, variables: 1.0 }
    }
}

/// Hard ceiling on [`Query::limit`]. Limits arrive from untrusted callers
/// (the HTTP API deserializes structured queries straight into [`Query`]),
/// and an unbounded `k` turns into an unbounded upfront allocation in the
/// top-k selector — so every way a limit enters a query (builder, parser,
/// deserialization) clamps to `1..=MAX_LIMIT`.
pub const MAX_LIMIT: usize = 1000;

fn default_limit() -> usize {
    10
}

fn de_limit<'de, D: serde::Deserializer<'de>>(d: D) -> std::result::Result<usize, D::Error> {
    let raw = u64::deserialize(d)?;
    Ok(raw.clamp(1, MAX_LIMIT as u64) as usize)
}

/// A ranked-search query over location, time, and variables.
///
/// ```
/// use metamess_search::Query;
///
/// let q = Query::parse(
///     "near 45.5,-124.4 within 50km during 2010-06 with temperature between 5 and 10",
/// )
/// .unwrap();
/// assert_eq!(q.variables[0].range, Some((5.0, 10.0)));
/// assert!(q.spatial.is_some() && q.time.is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct Query {
    /// Spatial constraint, when any.
    pub spatial: Option<SpatialTerm>,
    /// Time window, when any.
    pub time: Option<TimeInterval>,
    /// Variable terms (any number).
    pub variables: Vec<VariableTerm>,
    /// Facet weights.
    pub weights: Weights,
    /// Maximum results to return (clamped to `1..=`[`MAX_LIMIT`] on every
    /// entry path, including deserialization).
    #[serde(default = "default_limit", deserialize_with = "de_limit")]
    pub limit: usize,
}

impl Query {
    /// An empty query (matches everything weakly).
    pub fn new() -> Query {
        Query { limit: 10, ..Query::default() }
    }

    /// Builder: spatial point + radius.
    pub fn near(mut self, lat: f64, lon: f64, radius_km: f64) -> Result<Query> {
        self.spatial = Some(SpatialTerm::Near {
            point: GeoPoint::new(lat, lon)?,
            radius_km: radius_km.max(0.1),
        });
        Ok(self)
    }

    /// Builder: spatial region.
    pub fn in_region(mut self, bbox: GeoBBox) -> Query {
        self.spatial = Some(SpatialTerm::Region(bbox));
        self
    }

    /// Builder: time window.
    pub fn between(mut self, start: Timestamp, end: Timestamp) -> Query {
        self.time = Some(TimeInterval::new(start, end));
        self
    }

    /// Builder: adds a variable term.
    pub fn with_variable(mut self, name: impl Into<String>, range: Option<(f64, f64)>) -> Query {
        let range = range.map(|(a, b)| if a <= b { (a, b) } else { (b, a) });
        self.variables.push(VariableTerm { name: name.into(), range });
        self
    }

    /// Builder: result limit, clamped to `1..=`[`MAX_LIMIT`].
    pub fn limit(mut self, k: usize) -> Query {
        self.limit = k.clamp(1, MAX_LIMIT);
        self
    }

    /// True when the query has no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.spatial.is_none() && self.time.is_none() && self.variables.is_empty()
    }

    /// Parses the text query language; see the module docs for the grammar.
    pub fn parse(text: &str) -> Result<Query> {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let mut q = Query::new();
        let mut i = 0;
        let err = |msg: &str| Error::parse("query", msg.to_string());
        let take = |tokens: &[&str], i: &mut usize, what: &str| -> Result<String> {
            let t = tokens
                .get(*i)
                .ok_or_else(|| Error::parse("query", format!("expected {what} at end of query")))?;
            *i += 1;
            Ok((*t).to_string())
        };
        while i < tokens.len() {
            match tokens[i].to_ascii_lowercase().as_str() {
                "near" => {
                    i += 1;
                    let coords = take(&tokens, &mut i, "lat,lon")?;
                    let (lat, lon) =
                        coords.split_once(',').ok_or_else(|| err("'near' needs lat,lon"))?;
                    let lat: f64 = lat.trim().parse().map_err(|_| err("bad latitude"))?;
                    let lon: f64 = lon.trim().parse().map_err(|_| err("bad longitude"))?;
                    let mut radius = 25.0;
                    if tokens.get(i).is_some_and(|t| t.eq_ignore_ascii_case("within")) {
                        i += 1;
                        let r = take(&tokens, &mut i, "radius")?;
                        let r = r.trim_end_matches("km").trim_end_matches("KM");
                        radius = r.parse().map_err(|_| err("bad radius"))?;
                    }
                    q = q.near(lat, lon, radius)?;
                }
                "in" => {
                    i += 1;
                    let spec = take(&tokens, &mut i, "region")?;
                    let (a, b) = spec.split_once("..").ok_or_else(|| err("'in' needs a..b"))?;
                    let parse_pt = |s: &str| -> Result<GeoPoint> {
                        let (lat, lon) =
                            s.split_once(',').ok_or_else(|| err("region corner needs lat,lon"))?;
                        GeoPoint::new(
                            lat.trim().parse().map_err(|_| err("bad latitude"))?,
                            lon.trim().parse().map_err(|_| err("bad longitude"))?,
                        )
                    };
                    let p1 = parse_pt(a)?;
                    let p2 = parse_pt(b)?;
                    let bbox = GeoBBox {
                        min_lat: p1.lat.min(p2.lat),
                        max_lat: p1.lat.max(p2.lat),
                        min_lon: p1.lon.min(p2.lon),
                        max_lon: p1.lon.max(p2.lon),
                    };
                    q = q.in_region(bbox);
                }
                "from" => {
                    i += 1;
                    let a = take(&tokens, &mut i, "start date")?;
                    if !tokens.get(i).is_some_and(|t| t.eq_ignore_ascii_case("to")) {
                        return Err(err("'from <date>' needs 'to <date>'"));
                    }
                    i += 1;
                    let b = take(&tokens, &mut i, "end date")?;
                    let start = Timestamp::parse(&a)?;
                    let end_base = Timestamp::parse(&b)?;
                    // a bare end *date* is inclusive: extend to end of day
                    let end = if b.len() == 10 { end_base.plus_seconds(86_399) } else { end_base };
                    q = q.between(start, end);
                }
                "during" => {
                    i += 1;
                    let spec = take(&tokens, &mut i, "year or year-month")?;
                    let (start, end) = parse_during(&spec)?;
                    q = q.between(start, end);
                }
                "with" => {
                    i += 1;
                    let name = take(&tokens, &mut i, "variable name")?;
                    let mut range = None;
                    if tokens.get(i).is_some_and(|t| t.eq_ignore_ascii_case("between")) {
                        i += 1;
                        let a = take(&tokens, &mut i, "range start")?;
                        if !tokens.get(i).is_some_and(|t| t.eq_ignore_ascii_case("and")) {
                            return Err(err("'between <a>' needs 'and <b>'"));
                        }
                        i += 1;
                        let b = take(&tokens, &mut i, "range end")?;
                        let a: f64 = a.parse().map_err(|_| err("bad range start"))?;
                        let b: f64 = b.parse().map_err(|_| err("bad range end"))?;
                        range = Some((a, b));
                    }
                    q = q.with_variable(name, range);
                }
                "limit" => {
                    i += 1;
                    let k = take(&tokens, &mut i, "limit")?;
                    q = q.limit(k.parse().map_err(|_| err("bad limit"))?);
                }
                other => {
                    return Err(Error::parse("query", format!("unknown clause '{other}'")));
                }
            }
        }
        Ok(q)
    }
}

/// `during 2010` → the whole year; `during 2010-06` → the whole month.
fn parse_during(spec: &str) -> Result<(Timestamp, Timestamp)> {
    let parts: Vec<&str> = spec.split('-').collect();
    let bad = || Error::parse("query", format!("bad 'during' spec '{spec}'"));
    match parts.as_slice() {
        [y] => {
            let y: i64 = y.parse().map_err(|_| bad())?;
            Ok((Timestamp::from_ymd(y, 1, 1)?, Timestamp::from_ymd(y + 1, 1, 1)?.plus_seconds(-1)))
        }
        [y, m] => {
            let y: i64 = y.parse().map_err(|_| bad())?;
            let m: u32 = m.parse().map_err(|_| bad())?;
            let start = Timestamp::from_ymd(y, m, 1)?;
            let (ny, nm) = if m == 12 { (y + 1, 1) } else { (y, m + 1) };
            Ok((start, Timestamp::from_ymd(ny, nm, 1)?.plus_seconds(-1)))
        }
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_poster_query() {
        let q = Query::parse(
            "near 45.5,-124.4 within 50km from 2010-05-01 to 2010-08-31 \
             with temperature between 5 and 10",
        )
        .unwrap();
        match q.spatial.unwrap() {
            SpatialTerm::Near { point, radius_km } => {
                assert_eq!(point.lat, 45.5);
                assert_eq!(point.lon, -124.4);
                assert_eq!(radius_km, 50.0);
            }
            other => panic!("{other:?}"),
        }
        let t = q.time.unwrap();
        assert_eq!(t.start.to_date_string(), "2010-05-01");
        assert_eq!(t.end.to_date_string(), "2010-08-31");
        assert_eq!(q.variables.len(), 1);
        assert_eq!(q.variables[0].name, "temperature");
        assert_eq!(q.variables[0].range, Some((5.0, 10.0)));
    }

    #[test]
    fn parse_default_radius() {
        let q = Query::parse("near 46.0,-123.5").unwrap();
        match q.spatial.unwrap() {
            SpatialTerm::Near { radius_km, .. } => assert_eq!(radius_km, 25.0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_region() {
        let q = Query::parse("in 46.3,-124.0..45.9,-123.0").unwrap();
        match q.spatial.unwrap() {
            SpatialTerm::Region(b) => {
                assert_eq!(b.min_lat, 45.9);
                assert_eq!(b.max_lat, 46.3);
                assert_eq!(b.min_lon, -124.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_during_forms() {
        let q = Query::parse("during 2010").unwrap();
        let t = q.time.unwrap();
        assert_eq!(t.start.to_date_string(), "2010-01-01");
        assert_eq!(t.end.to_date_string(), "2010-12-31");
        let q2 = Query::parse("during 2010-06").unwrap();
        let t2 = q2.time.unwrap();
        assert_eq!(t2.start.to_date_string(), "2010-06-01");
        assert_eq!(t2.end.to_date_string(), "2010-06-30");
        let q3 = Query::parse("during 2010-12").unwrap();
        assert_eq!(q3.time.unwrap().end.to_date_string(), "2010-12-31");
    }

    #[test]
    fn parse_multiple_variables() {
        let q = Query::parse("with salinity with temperature between 5 and 10 limit 3").unwrap();
        assert_eq!(q.variables.len(), 2);
        assert_eq!(q.variables[0].range, None);
        assert_eq!(q.limit, 3);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "near",
            "near 45.5",
            "near notanumber,-124",
            "from 2010-01-01",
            "from 2010-01-01 until 2010-02-01",
            "with temperature between 5",
            "with temperature between 5 and x",
            "frobnicate everything",
            "in 45,-124",
            "during 2010-06-01-02",
            "limit x",
        ] {
            assert!(Query::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn builder_normalizes_range() {
        let q = Query::new().with_variable("t", Some((10.0, 5.0)));
        assert_eq!(q.variables[0].range, Some((5.0, 10.0)));
    }

    #[test]
    fn limit_is_clamped_on_every_entry_path() {
        // Builder and parser.
        assert_eq!(Query::new().limit(0).limit, 1);
        assert_eq!(Query::new().limit(usize::MAX).limit, MAX_LIMIT);
        assert_eq!(Query::parse("limit 18446744073709551615").unwrap().limit, MAX_LIMIT);
        // Deserialization (the HTTP API's structured-query path).
        let q: Query = serde_json::from_str(r#"{"limit": 18446744073709551615}"#).unwrap();
        assert_eq!(q.limit, MAX_LIMIT);
        let q: Query = serde_json::from_str(r#"{"limit": 0}"#).unwrap();
        assert_eq!(q.limit, 1);
        // A structured query may omit the limit entirely.
        let q: Query = serde_json::from_str("{}").unwrap();
        assert_eq!(q.limit, 10);
    }

    #[test]
    fn empty_query() {
        let q = Query::parse("").unwrap();
        assert!(q.is_empty());
        assert_eq!(q.limit, 10);
    }

    #[test]
    fn inclusive_end_date() {
        let q = Query::parse("from 2010-05-01 to 2010-05-02").unwrap();
        let t = q.time.unwrap();
        assert_eq!(t.end.to_iso8601(), "2010-05-02T23:59:59Z");
        // explicit timestamp end is taken verbatim
        let q2 = Query::parse("from 2010-05-01 to 2010-05-02T06:00:00Z").unwrap();
        assert_eq!(q2.time.unwrap().end.to_iso8601(), "2010-05-02T06:00:00Z");
    }
}
